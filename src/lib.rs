//! Facade crate for the IB-RAR reproduction.
//!
//! Re-exports every subsystem so examples and integration tests can depend on
//! a single crate. See the workspace `README.md` for the architecture
//! overview and `DESIGN.md` for the per-experiment index.

pub use ibrar;
pub use ibrar_analysis as analysis;
pub use ibrar_attacks as attacks;
pub use ibrar_autograd as autograd;
pub use ibrar_data as data;
pub use ibrar_infotheory as infotheory;
pub use ibrar_nn as nn;
pub use ibrar_telemetry as telemetry;
pub use ibrar_tensor as tensor;
