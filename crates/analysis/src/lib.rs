//! Analysis tooling for the IB-RAR reproduction.
//!
//! * [`tsne`] — exact-gradient t-SNE (van der Maaten & Hinton 2008) for the
//!   paper's Fig. 3 cluster visualizations, plus [`cluster_separation`] to
//!   quantify what the paper shows visually.
//! * [`tendency_table`] — the adversarial misclassification-tendency counts
//!   of paper Table 5 (which class each attacked image is predicted as).
//! * [`shared_feature_ranking`] — the §3.3 future-work direction: recover
//!   shared-feature class pairs from a trained network's feature geometry.
//! * [`ConfusionMatrix`] — generic prediction bookkeeping.
//! * [`TextTable`] / [`render_series`] — fixed-width text rendering used by
//!   every experiment binary to print paper-style tables and figure series.

mod confusion;
mod error;
mod render;
mod shared;
mod tendency;
mod tsne;

pub use confusion::ConfusionMatrix;
pub use error::AnalysisError;
pub use render::{render_series, Series, TextTable};
pub use shared::{pair_recovery_rate, shared_feature_ranking, ClassPairScore};
pub use tendency::{tendency_table, TendencyRow, TendencyTable};
pub use tsne::{cluster_separation, tsne, TsneConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AnalysisError>;
