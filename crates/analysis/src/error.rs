use std::fmt;

/// Error type for analysis routines.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// A tensor operation failed.
    Tensor(ibrar_tensor::TensorError),
    /// An attack/evaluation failed.
    Attack(ibrar_attacks::AttackError),
    /// A model forward failed.
    Nn(ibrar_nn::NnError),
    /// Inputs are inconsistent.
    Invalid(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Tensor(e) => write!(f, "tensor error: {e}"),
            AnalysisError::Attack(e) => write!(f, "attack error: {e}"),
            AnalysisError::Nn(e) => write!(f, "model error: {e}"),
            AnalysisError::Invalid(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Tensor(e) => Some(e),
            AnalysisError::Attack(e) => Some(e),
            AnalysisError::Nn(e) => Some(e),
            AnalysisError::Invalid(_) => None,
        }
    }
}

impl From<ibrar_tensor::TensorError> for AnalysisError {
    fn from(e: ibrar_tensor::TensorError) -> Self {
        AnalysisError::Tensor(e)
    }
}

impl From<ibrar_attacks::AttackError> for AnalysisError {
    fn from(e: ibrar_attacks::AttackError) -> Self {
        AnalysisError::Attack(e)
    }
}

impl From<ibrar_nn::NnError> for AnalysisError {
    fn from(e: ibrar_nn::NnError) -> Self {
        AnalysisError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!AnalysisError::Invalid("x".into()).to_string().is_empty());
    }
}
