//! Exact-gradient t-SNE (van der Maaten & Hinton 2008).
//!
//! Used for the paper's Fig. 3: embed penultimate-layer features in 2-D and
//! compare cluster geometry across training methods. `O(n²)` per iteration,
//! which is fine at the few hundred points the experiments use.

use crate::{AnalysisError, Result};
use ibrar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// t-SNE hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f32,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f32,
    /// RNG seed for the initial embedding.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 15.0,
            iterations: 250,
            learning_rate: 100.0,
            exaggeration: 4.0,
            seed: 0,
        }
    }
}

/// Embeds `[n, d]` features into `[n, 2]`.
///
/// # Errors
///
/// Returns an error for fewer than 4 points or a perplexity too large for
/// the sample count.
pub fn tsne(features: &Tensor, config: &TsneConfig) -> Result<Tensor> {
    let n = *features
        .shape()
        .first()
        .ok_or_else(|| AnalysisError::Invalid("rank-0 features".into()))?;
    if n < 4 {
        return Err(AnalysisError::Invalid(format!(
            "t-SNE needs at least 4 points, got {n}"
        )));
    }
    if config.perplexity >= n as f32 {
        return Err(AnalysisError::Invalid(format!(
            "perplexity {} too large for {n} points",
            config.perplexity
        )));
    }
    let d = features.len() / n;
    let x = features.reshape(&[n, d])?;

    // Pairwise squared distances in feature space.
    let mut dist = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut acc = 0.0f32;
            for t in 0..d {
                let diff = x.data()[i * d + t] - x.data()[j * d + t];
                acc += diff * diff;
            }
            dist[i * n + j] = acc;
            dist[j * n + i] = acc;
        }
    }

    // Per-point binary search for beta = 1/(2σ²) matching the perplexity.
    let target_entropy = config.perplexity.ln();
    let mut p = vec![0.0f32; n * n];
    for i in 0..n {
        let mut beta = 1.0f32;
        let (mut lo, mut hi) = (0.0f32, f32::INFINITY);
        for _ in 0..50 {
            let mut sum = 0.0f32;
            let mut sum_dp = 0.0f32;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let pij = (-beta * dist[i * n + j]).exp();
                sum += pij;
                sum_dp += pij * dist[i * n + j];
            }
            if sum <= 0.0 {
                break;
            }
            // Shannon entropy of the conditional distribution.
            let entropy = sum.ln() + beta * sum_dp / sum;
            if (entropy - target_entropy).abs() < 1e-4 {
                break;
            }
            if entropy > target_entropy {
                lo = beta;
                beta = if hi.is_finite() {
                    (beta + hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                hi = beta;
                beta = (beta + lo) / 2.0;
            }
        }
        let mut sum = 0.0f32;
        for j in 0..n {
            if j != i {
                p[i * n + j] = (-beta * dist[i * n + j]).exp();
                sum += p[i * n + j];
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrize: P = (P + Pᵀ) / 2n, floored away from zero.
    let mut psym = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            psym[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f32)).max(1e-12);
        }
    }

    // Gradient descent on KL(P || Q) with momentum and early exaggeration.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut y = ibrar_tensor::normal(&[n, 2], 0.0, 1e-2, &mut rng).into_vec();
    let mut vel = vec![0.0f32; n * 2];
    let exaggerate_until = config.iterations / 4;
    for iter in 0..config.iterations {
        let exaggeration = if iter < exaggerate_until {
            config.exaggeration
        } else {
            1.0
        };
        // Student-t affinities Q.
        let mut num = vec![0.0f32; n * n];
        let mut qsum = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                let dy0 = y[i * 2] - y[j * 2];
                let dy1 = y[i * 2 + 1] - y[j * 2 + 1];
                let v = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
                num[i * n + j] = v;
                num[j * n + i] = v;
                qsum += 2.0 * v;
            }
        }
        let qsum = qsum.max(1e-12);
        // Gradient: 4 Σ_j (eP_ij − Q_ij) (y_i − y_j) num_ij.
        let momentum = if iter < 20 { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut g0 = 0.0f32;
            let mut g1 = 0.0f32;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let q = num[i * n + j] / qsum;
                let coeff = (exaggeration * psym[i * n + j] - q) * num[i * n + j];
                g0 += coeff * (y[i * 2] - y[j * 2]);
                g1 += coeff * (y[i * 2 + 1] - y[j * 2 + 1]);
            }
            vel[i * 2] = momentum * vel[i * 2] - config.learning_rate * 4.0 * g0;
            vel[i * 2 + 1] = momentum * vel[i * 2 + 1] - config.learning_rate * 4.0 * g1;
        }
        for (yi, vi) in y.iter_mut().zip(&vel) {
            *yi += vi;
        }
    }
    Ok(Tensor::from_vec(y, &[n, 2])?)
}

/// Ratio of mean inter-class centroid distance to mean intra-class spread.
///
/// Quantifies the cluster geometry the paper's Fig. 3 shows qualitatively:
/// larger = better separated clusters.
///
/// # Errors
///
/// Returns an error on inconsistent inputs.
pub fn cluster_separation(embedding: &Tensor, labels: &[usize]) -> Result<f32> {
    let n = *embedding
        .shape()
        .first()
        .ok_or_else(|| AnalysisError::Invalid("rank-0 embedding".into()))?;
    if n != labels.len() {
        return Err(AnalysisError::Invalid(format!(
            "{n} points vs {} labels",
            labels.len()
        )));
    }
    if n == 0 {
        return Err(AnalysisError::Invalid("empty embedding".into()));
    }
    let d = embedding.len() / n;
    let k = labels.iter().copied().max().unwrap_or(0) + 1;
    // Centroids.
    let mut centroids = vec![0.0f32; k * d];
    let mut counts = vec![0usize; k];
    for (i, &y) in labels.iter().enumerate() {
        counts[y] += 1;
        for t in 0..d {
            centroids[y * d + t] += embedding.data()[i * d + t];
        }
    }
    for y in 0..k {
        if counts[y] > 0 {
            for t in 0..d {
                centroids[y * d + t] /= counts[y] as f32;
            }
        }
    }
    // Intra-class spread.
    let mut intra = 0.0f32;
    for (i, &y) in labels.iter().enumerate() {
        let mut acc = 0.0f32;
        for t in 0..d {
            let diff = embedding.data()[i * d + t] - centroids[y * d + t];
            acc += diff * diff;
        }
        intra += acc.sqrt();
    }
    intra /= n as f32;
    // Inter-class centroid distance.
    let mut inter = 0.0f32;
    let mut pairs = 0usize;
    for a in 0..k {
        if counts[a] == 0 {
            continue;
        }
        for b in (a + 1)..k {
            if counts[b] == 0 {
                continue;
            }
            let mut acc = 0.0f32;
            for t in 0..d {
                let diff = centroids[a * d + t] - centroids[b * d + t];
                acc += diff * diff;
            }
            inter += acc.sqrt();
            pairs += 1;
        }
    }
    if pairs == 0 {
        return Ok(0.0);
    }
    inter /= pairs as f32;
    Ok(inter / intra.max(1e-6))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs in 10-D.
    fn two_blobs(n_per: usize) -> (Tensor, Vec<usize>) {
        let n = n_per * 2;
        let features = Tensor::from_fn(&[n, 10], |idx| {
            let cls = idx[0] / n_per;
            let jitter = (((idx[0] * 13 + idx[1] * 7) % 10) as f32 - 5.0) * 0.02;
            if cls == 0 {
                jitter
            } else {
                5.0 + jitter
            }
        });
        let labels = (0..n).map(|i| i / n_per).collect();
        (features, labels)
    }

    #[test]
    fn separates_two_blobs() {
        let (features, labels) = two_blobs(15);
        let config = TsneConfig {
            iterations: 150,
            ..TsneConfig::default()
        };
        let emb = tsne(&features, &config).unwrap();
        assert_eq!(emb.shape(), &[30, 2]);
        assert!(emb.all_finite());
        let sep = cluster_separation(&emb, &labels).unwrap();
        assert!(sep > 1.5, "blobs not separated: {sep}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (features, _) = two_blobs(8);
        let config = TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        };
        let a = tsne(&features, &config).unwrap();
        let b = tsne(&features, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_tiny_inputs() {
        let f = Tensor::zeros(&[3, 2]);
        assert!(tsne(&f, &TsneConfig::default()).is_err());
        let f = Tensor::zeros(&[10, 2]);
        let bad = TsneConfig {
            perplexity: 20.0,
            ..TsneConfig::default()
        };
        assert!(tsne(&f, &bad).is_err());
    }

    #[test]
    fn separation_higher_for_separated_data() {
        // Mixed labels on the same points → low separation.
        let (features, labels) = two_blobs(10);
        let sep_good = cluster_separation(&features, &labels).unwrap();
        let mixed: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let sep_bad = cluster_separation(&features, &mixed).unwrap();
        assert!(sep_good > sep_bad);
    }

    #[test]
    fn separation_validates() {
        let emb = Tensor::zeros(&[4, 2]);
        assert!(cluster_separation(&emb, &[0, 1]).is_err());
    }
}
