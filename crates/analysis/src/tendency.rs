//! Adversarial misclassification tendency (paper Table 5).
//!
//! Attack every test image, record what the network predicts instead of the
//! true class, and report the top-k predicted classes per true class. On
//! SynthVision the planted shared-feature partners (car↔truck, cat↔dog, …)
//! should dominate these lists, reproducing the paper's observation that
//! shared features drive adversarial confusions.

use crate::confusion::ConfusionMatrix;
use crate::Result;
use ibrar_attacks::Attack;
use ibrar_data::Dataset;
use ibrar_nn::{ImageModel, Mode, Session};

/// One row of the tendency table.
#[derive(Debug, Clone)]
pub struct TendencyRow {
    /// True class index.
    pub class: usize,
    /// True class name.
    pub name: String,
    /// Top predicted wrong classes as `(name, count)`, descending.
    pub top: Vec<(String, usize)>,
}

/// The full table plus the underlying confusion matrix.
#[derive(Debug, Clone)]
pub struct TendencyTable {
    /// One row per class.
    pub rows: Vec<TendencyRow>,
    /// Raw confusion counts over adversarial predictions.
    pub confusion: ConfusionMatrix,
}

impl TendencyTable {
    /// Whether `partner` is among the top-`k` confusions of `class`.
    pub fn partner_in_top(&self, class: usize, partner_name: &str, k: usize) -> bool {
        self.rows
            .get(class)
            .map(|row| row.top.iter().take(k).any(|(name, _)| name == partner_name))
            .unwrap_or(false)
    }
}

/// Builds the Table 5 tendency table by attacking `dataset`.
///
/// `class_names[i]` names class `i`; `top` bounds the per-class list (the
/// paper uses 4).
///
/// # Errors
///
/// Returns an error on attack/evaluation failures or name-count mismatches.
pub fn tendency_table(
    model: &dyn ImageModel,
    attack: &dyn Attack,
    dataset: &Dataset,
    class_names: &[String],
    top: usize,
    batch_size: usize,
) -> Result<TendencyTable> {
    let k = model.num_classes();
    if class_names.len() != k {
        return Err(crate::AnalysisError::Invalid(format!(
            "{} class names for {k} classes",
            class_names.len()
        )));
    }
    let mut confusion = ConfusionMatrix::new(k);
    for batch in dataset.batches_sequential(batch_size) {
        let adv = attack.perturb(model, &batch.images, &batch.labels)?;
        let tape = ibrar_autograd::Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(adv);
        let out = model.forward(&sess, x, Mode::Eval)?;
        let preds = out.logits.value().argmax_rows()?;
        confusion.record_batch(&batch.labels, &preds)?;
    }
    let rows = (0..k)
        .map(|class| TendencyRow {
            class,
            name: class_names[class].clone(),
            top: confusion
                .top_confusions(class, top)
                .into_iter()
                .filter(|&(_, count)| count > 0)
                .map(|(pred, count)| (class_names[pred].clone(), count))
                .collect(),
        })
        .collect();
    Ok(TendencyTable { rows, confusion })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibrar_attacks::Fgsm;
    use ibrar_data::{SynthVision, SynthVisionConfig};
    use ibrar_nn::{VggConfig, VggMini};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_rows_for_every_class() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
        let data = SynthVision::generate(&SynthVisionConfig::cifar10_like().with_sizes(40, 30), 2)
            .unwrap();
        let names: Vec<String> = (0..10).map(|i| data.class_name(i)).collect();
        let table =
            tendency_table(&model, &Fgsm::new(8.0 / 255.0), &data.test, &names, 4, 16).unwrap();
        assert_eq!(table.rows.len(), 10);
        for row in &table.rows {
            assert!(row.top.len() <= 4);
            // Top lists never contain the class itself.
            assert!(row.top.iter().all(|(n, _)| n != &row.name));
        }
    }

    #[test]
    fn name_count_validated() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
        let data = SynthVision::generate(&SynthVisionConfig::cifar10_like().with_sizes(20, 10), 2)
            .unwrap();
        let too_few = vec!["a".to_string()];
        assert!(tendency_table(&model, &Fgsm::new(0.03), &data.test, &too_few, 4, 16).is_err());
    }

    #[test]
    fn partner_lookup() {
        let table = TendencyTable {
            rows: vec![TendencyRow {
                class: 0,
                name: "plane".into(),
                top: vec![("ship".into(), 5), ("bird".into(), 2)],
            }],
            confusion: ConfusionMatrix::new(2),
        };
        assert!(table.partner_in_top(0, "ship", 1));
        assert!(!table.partner_in_top(0, "bird", 1));
        assert!(table.partner_in_top(0, "bird", 2));
        assert!(!table.partner_in_top(1, "ship", 2));
    }
}
