//! Shared-feature analysis (the paper's §3.3 future-work direction).
//!
//! The paper conjectures that adversarial confusions follow *shared
//! features* between similar classes and proposes distilling them as future
//! work. This module implements the measurement half: estimate class-pair
//! similarity from a trained network's penultimate features and rank the
//! pairs. On SynthVision the ground-truth shared pairs are planted, so the
//! recovery can be validated directly (see the tests and the `fig3`/
//! `table5` experiments).

use crate::{AnalysisError, Result};
use ibrar_tensor::Tensor;

/// A scored class pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassPairScore {
    /// Smaller class index.
    pub a: usize,
    /// Larger class index.
    pub b: usize,
    /// Similarity score (higher = more shared structure).
    pub score: f32,
}

/// Ranks class pairs by feature-space similarity.
///
/// For every class the centroid of its feature vectors is computed; the
/// similarity of a pair is the negative centroid distance normalized by the
/// mean intra-class spread, mapped through `exp(−d)` so scores live in
/// `(0, 1]`. Pairs are returned sorted descending.
///
/// # Errors
///
/// Returns an error for inconsistent inputs or fewer than two classes with
/// samples.
pub fn shared_feature_ranking(
    features: &Tensor,
    labels: &[usize],
    num_classes: usize,
) -> Result<Vec<ClassPairScore>> {
    let n = *features
        .shape()
        .first()
        .ok_or_else(|| AnalysisError::Invalid("rank-0 features".into()))?;
    if n != labels.len() {
        return Err(AnalysisError::Invalid(format!(
            "{n} feature rows vs {} labels",
            labels.len()
        )));
    }
    if num_classes < 2 {
        return Err(AnalysisError::Invalid("need at least two classes".into()));
    }
    let d = features.len() / n.max(1);
    // Centroids and intra-class spread.
    let mut centroids = vec![0.0f32; num_classes * d];
    let mut counts = vec![0usize; num_classes];
    for (i, &y) in labels.iter().enumerate() {
        if y >= num_classes {
            return Err(AnalysisError::Invalid(format!(
                "label {y} out of range for {num_classes} classes"
            )));
        }
        counts[y] += 1;
        for t in 0..d {
            centroids[y * d + t] += features.data()[i * d + t];
        }
    }
    let populated = counts.iter().filter(|&&c| c > 0).count();
    if populated < 2 {
        return Err(AnalysisError::Invalid(
            "need samples from at least two classes".into(),
        ));
    }
    for y in 0..num_classes {
        if counts[y] > 0 {
            for t in 0..d {
                centroids[y * d + t] /= counts[y] as f32;
            }
        }
    }
    let mut spread = 0.0f32;
    for (i, &y) in labels.iter().enumerate() {
        let mut acc = 0.0f32;
        for t in 0..d {
            let diff = features.data()[i * d + t] - centroids[y * d + t];
            acc += diff * diff;
        }
        spread += acc.sqrt();
    }
    spread = (spread / n as f32).max(1e-6);

    let mut pairs = Vec::new();
    for a in 0..num_classes {
        if counts[a] == 0 {
            continue;
        }
        for b in (a + 1)..num_classes {
            if counts[b] == 0 {
                continue;
            }
            let mut acc = 0.0f32;
            for t in 0..d {
                let diff = centroids[a * d + t] - centroids[b * d + t];
                acc += diff * diff;
            }
            let normalized = acc.sqrt() / spread;
            pairs.push(ClassPairScore {
                a,
                b,
                score: (-normalized).exp(),
            });
        }
    }
    pairs.sort_by(|x, y| y.score.total_cmp(&x.score));
    Ok(pairs)
}

/// Fraction of `expected` pairs found within the top `k` of `ranking`
/// (order within a pair ignored).
pub fn pair_recovery_rate(
    ranking: &[ClassPairScore],
    expected: &[(usize, usize)],
    k: usize,
) -> f32 {
    if expected.is_empty() {
        return 0.0;
    }
    let top: Vec<(usize, usize)> = ranking.iter().take(k).map(|p| (p.a, p.b)).collect();
    let hits = expected
        .iter()
        .filter(|&&(a, b)| {
            let key = (a.min(b), a.max(b));
            top.contains(&key)
        })
        .count();
    hits as f32 / expected.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three classes: 0 and 1 nearly overlap, 2 is far away.
    fn toy_features() -> (Tensor, Vec<usize>) {
        let n = 30;
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let features = Tensor::from_fn(&[n, 4], |idx| {
            let base = match idx[0] % 3 {
                0 => 0.0,
                1 => 0.5,
                _ => 10.0,
            };
            base + ((idx[0] * 7 + idx[1] * 3) % 5) as f32 * 0.1
        });
        (features, labels)
    }

    #[test]
    fn closest_pair_ranks_first() {
        let (features, labels) = toy_features();
        let ranking = shared_feature_ranking(&features, &labels, 3).unwrap();
        assert_eq!((ranking[0].a, ranking[0].b), (0, 1));
        assert!(ranking[0].score > ranking.last().unwrap().score);
    }

    #[test]
    fn recovery_rate_counts_hits() {
        let (features, labels) = toy_features();
        let ranking = shared_feature_ranking(&features, &labels, 3).unwrap();
        assert_eq!(pair_recovery_rate(&ranking, &[(1, 0)], 1), 1.0);
        assert_eq!(pair_recovery_rate(&ranking, &[(0, 2)], 1), 0.0);
    }

    #[test]
    fn validates_inputs() {
        let f = Tensor::zeros(&[4, 2]);
        assert!(shared_feature_ranking(&f, &[0, 1], 2).is_err()); // length
        assert!(shared_feature_ranking(&f, &[0, 1, 0, 1], 1).is_err()); // classes
        assert!(shared_feature_ranking(&f, &[0, 0, 0, 5], 3).is_err()); // range
    }

    #[test]
    fn scores_bounded() {
        let (features, labels) = toy_features();
        let ranking = shared_feature_ranking(&features, &labels, 3).unwrap();
        for p in &ranking {
            assert!(p.score > 0.0 && p.score <= 1.0, "{p:?}");
        }
    }

    #[test]
    fn empty_expected_gives_zero() {
        assert_eq!(pair_recovery_rate(&[], &[], 3), 0.0);
    }
}
