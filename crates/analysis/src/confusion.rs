//! Prediction bookkeeping.

use crate::{AnalysisError, Result};

/// A `k × k` confusion matrix: `counts[true][pred]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `k` classes.
    pub fn new(k: usize) -> Self {
        ConfusionMatrix {
            k,
            counts: vec![0; k * k],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Records one (truth, prediction) pair.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range classes.
    pub fn record(&mut self, truth: usize, pred: usize) -> Result<()> {
        if truth >= self.k || pred >= self.k {
            return Err(AnalysisError::Invalid(format!(
                "class ({truth}, {pred}) out of range for {} classes",
                self.k
            )));
        }
        self.counts[truth * self.k + pred] += 1;
        Ok(())
    }

    /// Records a batch of pairs.
    ///
    /// # Errors
    ///
    /// Returns an error on length mismatch or out-of-range classes.
    pub fn record_batch(&mut self, truths: &[usize], preds: &[usize]) -> Result<()> {
        if truths.len() != preds.len() {
            return Err(AnalysisError::Invalid(format!(
                "{} truths vs {} predictions",
                truths.len(),
                preds.len()
            )));
        }
        for (&t, &p) in truths.iter().zip(preds) {
            self.record(t, p)?;
        }
        Ok(())
    }

    /// Count at `(truth, pred)`.
    pub fn count(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth * self.k + pred]
    }

    /// Row of counts for one true class.
    pub fn row(&self, truth: usize) -> &[usize] {
        &self.counts[truth * self.k..(truth + 1) * self.k]
    }

    /// Overall accuracy (diagonal mass / total), 0.0 when empty.
    pub fn accuracy(&self) -> f32 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.k).map(|i| self.count(i, i)).sum();
        diag as f32 / total as f32
    }

    /// The `top` most-predicted classes for `truth`, **excluding** the
    /// diagonal, as `(class, count)` sorted descending.
    pub fn top_confusions(&self, truth: usize, top: usize) -> Vec<(usize, usize)> {
        let mut entries: Vec<(usize, usize)> = self
            .row(truth)
            .iter()
            .enumerate()
            .filter(|(pred, _)| *pred != truth)
            .map(|(pred, &c)| (pred, c))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(top);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_accuracy() {
        let mut m = ConfusionMatrix::new(3);
        m.record_batch(&[0, 1, 2, 0], &[0, 1, 0, 0]).unwrap();
        assert_eq!(m.count(2, 0), 1);
        assert!((m.accuracy() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn top_confusions_excludes_diagonal() {
        let mut m = ConfusionMatrix::new(3);
        m.record_batch(&[0, 0, 0, 0], &[0, 1, 1, 2]).unwrap();
        let top = m.top_confusions(0, 2);
        assert_eq!(top, vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = ConfusionMatrix::new(2);
        assert!(m.record(2, 0).is_err());
        assert!(m.record_batch(&[0], &[0, 1]).is_err());
    }

    #[test]
    fn empty_accuracy_zero() {
        assert_eq!(ConfusionMatrix::new(4).accuracy(), 0.0);
    }
}
