//! Fixed-width text rendering for experiment output.
//!
//! Every experiment binary prints its results through [`TextTable`] (paper
//! tables) or [`render_series`] (paper figures rendered as aligned numeric
//! series).

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// One named numeric series of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label (e.g. "IB-RAR(rob)").
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f32, f32)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f32, f32)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }
}

/// Renders figure series as an aligned numeric block: one row per x value,
/// one column per series.
pub fn render_series(x_label: &str, series: &[Series]) -> String {
    let mut header = vec![x_label.to_string()];
    header.extend(series.iter().map(|s| s.name.clone()));
    let mut table = TextTable::new(header);
    // Collect the union of x values, sorted.
    let mut xs: Vec<f32> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(f32::total_cmp);
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    for x in xs {
        let mut cells = vec![format!("{x}")];
        for s in series {
            let cell = s
                .points
                .iter()
                .find(|(px, _)| (px - x).abs() < 1e-9)
                .map(|(_, y)| format!("{y:.2}"))
                .unwrap_or_default();
            cells.push(cell);
        }
        table.row(cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["Method", "Natural", "PGD"]);
        t.row(vec!["PGD", "75.02", "42.45"]);
        t.row(vec!["PGD (IB-RAR)", "76.22", "45.09"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        // Columns align: both data rows place "Natural" column at the same
        // offset.
        let off2 = lines[2].find("75.02").unwrap();
        let off3 = lines[3].find("76.22").unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.render().is_empty());
    }

    #[test]
    fn series_rendering_merges_x() {
        let s1 = Series::new("A", vec![(1.0, 0.5), (2.0, 0.6)]);
        let s2 = Series::new("B", vec![(2.0, 0.7), (3.0, 0.8)]);
        let out = render_series("steps", &[s1, s2]);
        assert!(out.contains("steps"));
        assert!(out.contains("0.60"));
        assert!(out.contains("0.70"));
        // 3 distinct x values + header + separator
        assert_eq!(out.lines().count(), 5);
    }

    #[test]
    fn display_matches_render() {
        let mut t = TextTable::new(vec!["x"]);
        t.row(vec!["1"]);
        assert_eq!(format!("{t}"), t.render());
    }
}
