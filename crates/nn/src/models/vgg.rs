//! `VggMini`: a five-conv-block VGG-style network.
//!
//! VGG16 groups its 13 conv layers into five blocks followed by two hidden
//! fully-connected layers; IB-RAR's robust-layer analysis (paper Table 3) is
//! phrased in terms of those seven units. `VggMini` keeps exactly that
//! seven-unit structure — five conv blocks (one 3×3 conv each at laptop
//! scale) and two hidden FC layers — so every per-layer experiment of the
//! paper maps one-to-one onto this model.

use crate::model::{validate_mask, Hidden, ImageModel, LayerKind, Mode, ModelOutput};
use crate::{Conv2d, Linear, NnError, Parameter, Result, Session};
use ibrar_autograd::Var;
use ibrar_tensor::{Conv2dSpec, Pool2dSpec, Tensor};
use parking_lot::Mutex;
use rand::Rng;

/// Configuration for [`VggMini`].
#[derive(Debug, Clone)]
pub struct VggConfig {
    /// Number of output classes.
    pub num_classes: usize,
    /// Input shape `[c, h, w]`.
    pub input: [usize; 3],
    /// Output channels of the five conv blocks.
    pub widths: [usize; 5],
    /// Width of the two hidden fully-connected layers.
    pub fc_width: usize,
}

impl VggConfig {
    /// 3×16×16 inputs (the `synth_cifar10` / `synth_svhn` scale).
    pub fn tiny(num_classes: usize) -> Self {
        VggConfig {
            num_classes,
            input: [3, 16, 16],
            widths: [16, 24, 32, 48, 64],
            fc_width: 64,
        }
    }

    /// 3×32×32 inputs (the `synth_tiny_imagenet` scale).
    pub fn small32(num_classes: usize) -> Self {
        VggConfig {
            num_classes,
            input: [3, 32, 32],
            widths: [16, 24, 32, 48, 64],
            fc_width: 96,
        }
    }
}

/// Scaled-down VGG16: five conv blocks + two hidden FC layers.
///
/// The module-level docs explain the correspondence with the paper's
/// seven-unit VGG16 structure.
pub struct VggMini {
    config: VggConfig,
    convs: Vec<Conv2d>,
    /// `true` for blocks followed by a 2×2 max pool.
    pooled: [bool; 5],
    fc1: Linear,
    fc2: Linear,
    classifier: Linear,
    mask: Mutex<Option<Tensor>>,
}

impl VggMini {
    /// Builds a randomly initialized model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] when the input geometry cannot pass
    /// through the five blocks.
    pub fn new(config: VggConfig, rng: &mut impl Rng) -> Result<Self> {
        let [c, h, w] = config.input;
        if h < 16 || w < 16 {
            return Err(NnError::Config(format!(
                "VggMini needs inputs of at least 16x16, got {h}x{w}"
            )));
        }
        let pooled = [true, true, true, false, true];
        let mut convs = Vec::with_capacity(5);
        let mut in_ch = c;
        for (i, &out_ch) in config.widths.iter().enumerate() {
            convs.push(Conv2d::new(
                &format!("block{}", i + 1),
                Conv2dSpec::new(in_ch, out_ch, 3, 1, 1),
                true,
                rng,
            ));
            in_ch = out_ch;
        }
        // Spatial size after the pooling pattern (halved on pooled blocks).
        let mut hh = h;
        let mut ww = w;
        for &p in &pooled {
            if p {
                hh /= 2;
                ww /= 2;
            }
        }
        if hh == 0 || ww == 0 {
            return Err(NnError::Config("input too small for pooling stack".into()));
        }
        let flat = config.widths[4] * hh * ww;
        let fc1 = Linear::new("fc1", flat, config.fc_width, rng);
        let fc2 = Linear::new("fc2", config.fc_width, config.fc_width, rng);
        let classifier = Linear::new("classifier", config.fc_width, config.num_classes, rng);
        Ok(VggMini {
            config,
            convs,
            pooled,
            fc1,
            fc2,
            classifier,
            mask: Mutex::new(None),
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &VggConfig {
        &self.config
    }
}

impl ImageModel for VggMini {
    fn forward<'t>(&self, sess: &Session<'t>, x: Var<'t>, _mode: Mode) -> Result<ModelOutput<'t>> {
        let pool = Pool2dSpec::new(2, 2);
        let mut hidden = Vec::with_capacity(7);
        let mut h = x;
        for (i, conv) in self.convs.iter().enumerate() {
            h = conv.forward(sess, h)?.relu()?;
            if i == 4 {
                // IB-RAR Eq. 3: T_last = T_last * mask on the last conv block.
                if let Some(mask) = self.mask.lock().clone() {
                    let m = sess.tape().leaf(mask);
                    h = h.mul(m)?;
                }
            }
            if self.pooled[i] {
                h = h.max_pool2d(pool)?;
            }
            hidden.push(Hidden {
                var: h,
                kind: LayerKind::Conv,
                index: i,
            });
        }
        let flat = h.flatten_batch()?;
        let f1 = self.fc1.forward(sess, flat)?.relu()?;
        hidden.push(Hidden {
            var: f1,
            kind: LayerKind::Fc,
            index: 5,
        });
        let f2 = self.fc2.forward(sess, f1)?.relu()?;
        hidden.push(Hidden {
            var: f2,
            kind: LayerKind::Fc,
            index: 6,
        });
        let logits = self.classifier.forward(sess, f2)?;
        Ok(ModelOutput {
            logits,
            hidden,
            aux_loss: None,
        })
    }

    fn params(&self) -> Vec<Parameter> {
        let mut out = Vec::new();
        for conv in &self.convs {
            out.extend(conv.params());
        }
        out.extend(self.fc1.params());
        out.extend(self.fc2.params());
        out.extend(self.classifier.params());
        out
    }

    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn input_shape(&self) -> [usize; 3] {
        self.config.input
    }

    fn last_conv_channels(&self) -> usize {
        self.config.widths[4]
    }

    fn set_channel_mask(&self, mask: Option<Tensor>) -> Result<()> {
        if let Some(m) = &mask {
            validate_mask(m, self.last_conv_channels())?;
        }
        *self.mask.lock() = mask;
        Ok(())
    }

    fn channel_mask(&self) -> Option<Tensor> {
        self.mask.lock().clone()
    }

    fn name(&self) -> &str {
        "VggMini"
    }

    fn hidden_names(&self) -> Vec<String> {
        vec![
            "conv_block1".into(),
            "conv_block2".into(),
            "conv_block3".into(),
            "conv_block4".into(),
            "conv_block5".into(),
            "fully_c1".into(),
            "fully_c2".into(),
        ]
    }
}

impl std::fmt::Debug for VggMini {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VggMini")
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibrar_autograd::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> VggMini {
        let mut rng = StdRng::seed_from_u64(0);
        VggMini::new(VggConfig::tiny(10), &mut rng).unwrap()
    }

    #[test]
    fn forward_shapes() {
        let m = model();
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::zeros(&[2, 3, 16, 16]));
        let out = m.forward(&sess, x, Mode::Eval).unwrap();
        assert_eq!(out.logits.shape(), vec![2, 10]);
        assert_eq!(out.hidden.len(), 7);
        assert_eq!(out.hidden[4].var.shape(), vec![2, 64, 1, 1]);
        assert_eq!(out.hidden[5].var.shape(), vec![2, 64]);
    }

    #[test]
    fn forward_shapes_32px() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = VggMini::new(VggConfig::small32(20), &mut rng).unwrap();
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::zeros(&[1, 3, 32, 32]));
        let out = m.forward(&sess, x, Mode::Eval).unwrap();
        assert_eq!(out.logits.shape(), vec![1, 20]);
        assert_eq!(out.hidden[4].var.shape(), vec![1, 64, 2, 2]);
    }

    #[test]
    fn gradients_reach_all_params() {
        let m = model();
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::full(&[2, 3, 16, 16], 0.3));
        let out = m.forward(&sess, x, Mode::Train).unwrap();
        let loss = out.logits.cross_entropy(&[1, 2]).unwrap();
        sess.backward(loss).unwrap();
        for p in m.params() {
            assert!(p.grad().is_some(), "{} missing grad", p.name());
        }
    }

    #[test]
    fn channel_mask_zeroes_features() {
        let m = model();
        // Mask that kills every channel: block-5 tap must be all zeros.
        m.set_channel_mask(Some(Tensor::zeros(&[64]))).unwrap();
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::full(&[1, 3, 16, 16], 0.5));
        let out = m.forward(&sess, x, Mode::Eval).unwrap();
        assert_eq!(out.hidden[4].var.value().abs().max(), 0.0);
        m.set_channel_mask(None).unwrap();
        let tape2 = Tape::new();
        let sess2 = Session::new(&tape2);
        let x2 = tape2.leaf(Tensor::full(&[1, 3, 16, 16], 0.5));
        let out2 = m.forward(&sess2, x2, Mode::Eval).unwrap();
        assert!(out2.hidden[4].var.value().abs().max() > 0.0);
    }

    #[test]
    fn mask_validation() {
        let m = model();
        assert!(m.set_channel_mask(Some(Tensor::ones(&[63]))).is_err());
        assert!(m.set_channel_mask(Some(Tensor::ones(&[64]))).is_ok());
        assert!(m.channel_mask().is_some());
    }

    #[test]
    fn checkpoint_roundtrip() {
        use crate::model::{load_params, save_params};
        let m1 = model();
        let bytes = save_params(&m1);
        let mut rng = StdRng::seed_from_u64(99);
        let m2 = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
        load_params(&m2, bytes).unwrap();
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::full(&[1, 3, 16, 16], 0.2));
        let o1 = m1.forward(&sess, x, Mode::Eval).unwrap().logits.value();
        let tape2 = Tape::new();
        let sess2 = Session::new(&tape2);
        let x2 = tape2.leaf(Tensor::full(&[1, 3, 16, 16], 0.2));
        let o2 = m2.forward(&sess2, x2, Mode::Eval).unwrap().logits.value();
        assert!(o1.max_abs_diff(&o2).unwrap() < 1e-6);
    }

    #[test]
    fn hidden_names_match_tap_count() {
        let m = model();
        assert_eq!(m.hidden_names().len(), 7);
    }

    #[test]
    fn too_small_input_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cfg = VggConfig::tiny(10);
        cfg.input = [3, 8, 8];
        assert!(VggMini::new(cfg, &mut rng).is_err());
    }
}
