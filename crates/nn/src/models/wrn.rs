//! `WideResNetMini`: the workspace's WRN-28-10 stand-in.
//!
//! Wide residual networks trade depth for width; the widen factor multiplies
//! every stage's channel count. The paper evaluates WRN-28-10 on CIFAR-100 —
//! here the widen factor defaults to 2 and the depth to one block per stage
//! so the `synth_cifar100` experiments run in seconds.

use crate::model::{ImageModel, Mode, ModelOutput};
use crate::models::residual::{ResidualConfig, ResidualNet};
use crate::{Parameter, Result, Session};
use ibrar_autograd::Var;
use ibrar_tensor::Tensor;
use rand::Rng;

/// Configuration for [`WideResNetMini`].
#[derive(Debug, Clone)]
pub struct WideResNetConfig {
    /// Number of output classes.
    pub num_classes: usize,
    /// Input shape `[c, h, w]`.
    pub input: [usize; 3],
    /// Channel multiplier applied to the base widths `[16, 32, 64]`.
    pub widen_factor: usize,
    /// Residual blocks per stage.
    pub blocks_per_stage: usize,
}

impl WideResNetConfig {
    /// 3×16×16 inputs, widen factor 2, one block per stage.
    pub fn tiny(num_classes: usize) -> Self {
        WideResNetConfig {
            num_classes,
            input: [3, 16, 16],
            widen_factor: 2,
            blocks_per_stage: 1,
        }
    }
}

/// Scaled-down WRN-28-10. See [`ResidualNet`] for the architecture.
#[derive(Debug)]
pub struct WideResNetMini {
    net: ResidualNet,
}

impl WideResNetMini {
    /// Builds a randomly initialized model.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for a zero widen factor or depth.
    pub fn new(config: WideResNetConfig, rng: &mut impl Rng) -> Result<Self> {
        if config.widen_factor == 0 {
            return Err(crate::NnError::Config(
                "widen_factor must be at least 1".into(),
            ));
        }
        let widths: Vec<usize> = [16usize, 32, 64]
            .iter()
            .map(|w| w * config.widen_factor)
            .collect();
        Ok(WideResNetMini {
            net: ResidualNet::new(
                ResidualConfig {
                    arch_name: "WideResNetMini".into(),
                    num_classes: config.num_classes,
                    input: config.input,
                    stage_widths: widths,
                    blocks_per_stage: config.blocks_per_stage,
                },
                rng,
            )?,
        })
    }
}

impl ImageModel for WideResNetMini {
    fn forward<'t>(&self, sess: &Session<'t>, x: Var<'t>, mode: Mode) -> Result<ModelOutput<'t>> {
        self.net.forward(sess, x, mode)
    }

    fn params(&self) -> Vec<Parameter> {
        self.net.params()
    }

    fn num_classes(&self) -> usize {
        self.net.num_classes()
    }

    fn input_shape(&self) -> [usize; 3] {
        self.net.input_shape()
    }

    fn last_conv_channels(&self) -> usize {
        self.net.last_conv_channels()
    }

    fn set_channel_mask(&self, mask: Option<Tensor>) -> Result<()> {
        self.net.set_channel_mask(mask)
    }

    fn channel_mask(&self) -> Option<Tensor> {
        self.net.channel_mask()
    }

    fn name(&self) -> &str {
        self.net.name()
    }

    fn hidden_names(&self) -> Vec<String> {
        self.net.hidden_names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibrar_autograd::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn widen_factor_scales_channels() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = WideResNetMini::new(WideResNetConfig::tiny(20), &mut rng).unwrap();
        assert_eq!(m.last_conv_channels(), 128);
        assert_eq!(m.name(), "WideResNetMini");
    }

    #[test]
    fn forward_runs() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = WideResNetMini::new(WideResNetConfig::tiny(20), &mut rng).unwrap();
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::zeros(&[1, 3, 16, 16]));
        let out = m.forward(&sess, x, Mode::Eval).unwrap();
        assert_eq!(out.logits.shape(), vec![1, 20]);
    }

    #[test]
    fn zero_widen_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cfg = WideResNetConfig::tiny(10);
        cfg.widen_factor = 0;
        assert!(WideResNetMini::new(cfg, &mut rng).is_err());
    }
}
