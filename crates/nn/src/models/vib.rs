//! Deterministic variational-IB head: a reparameterized Gaussian
//! bottleneck over any backbone's penultimate features.
//!
//! [`VibHead`] wraps an [`ImageModel`] and replaces its classifier with the
//! Deep-VIB stack: linear `μ` / `softplus σ` encoders over the backbone's
//! last hidden tap, a K-sample Monte-Carlo reparameterized train path, a
//! `μ`-only deterministic eval path, and an analytic diagonal-Gaussian KL
//! penalty against a *learned* prior, delivered to trainers through
//! [`ModelOutput::aux_loss`] — so it composes with every
//! `TrainMethod` unchanged.
//!
//! # The noise-freezing contract (DESIGN.md §16)
//!
//! Training noise is never drawn from an ambient RNG. Each forward in
//! [`Mode::Train`] derives one SplitMix64 stream
//! ([`ibrar_oracle::Gen`]) from `noise_seed ⊕ FNV-1a(batch shape ‖ batch
//! bits)` and draws its `K` Gaussian noise tensors from that stream in
//! order. The noise is therefore a pure function of `(seed, batch)`:
//! bitwise identical at every `IBRAR_THREADS`, across cold/warm worker
//! pools, and replayable for golden snapshots. [`Mode::Eval`] uses `z = μ`
//! and touches no randomness at all, which keeps serving and
//! gradient-based robustness probes deterministic.

use crate::model::LayerKind;
use crate::{ImageModel, Linear, Mode, ModelOutput, NnError, Parameter, Result, Session};
use ibrar_autograd::{Tape, Var};
use ibrar_oracle::Gen;
use ibrar_tensor::Tensor;
use rand::Rng;

/// Additive floor keeping every standard deviation strictly positive even
/// where `softplus` underflows.
const SIGMA_FLOOR: f32 = 1e-3;

/// `softplus⁻¹(1)`: initializes the learned prior at `s ≈ 1`, i.e. the
/// standard-normal prior of Alemi et al., which training may then move.
const PRIOR_RHO_INIT: f32 = 0.541_324_9;

/// Hyperparameters for [`VibHead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VibHeadConfig {
    /// Bottleneck width `d` of the latent `z`.
    pub bottleneck: usize,
    /// Monte-Carlo sample count `K` on the train path (eval always uses
    /// the single deterministic `μ`).
    pub samples: usize,
    /// Weight `β` on the KL term reported through `aux_loss`.
    pub beta: f32,
    /// Base seed for the frozen per-batch noise stream.
    pub noise_seed: u64,
}

impl VibHeadConfig {
    /// Deep-VIB defaults at this repo's scale: 32-wide bottleneck, one MC
    /// sample, `β = 0.01` (matching the `VibBaseline` γ used in Fig. 2).
    pub fn paper_default() -> Self {
        VibHeadConfig {
            bottleneck: 32,
            samples: 1,
            beta: 1e-2,
            noise_seed: 0x51B_5EED,
        }
    }

    /// Sets the bottleneck width.
    #[must_use]
    pub fn with_bottleneck(mut self, bottleneck: usize) -> Self {
        self.bottleneck = bottleneck;
        self
    }

    /// Sets the Monte-Carlo sample count.
    #[must_use]
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Sets the KL weight β.
    #[must_use]
    pub fn with_beta(mut self, beta: f32) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the base noise seed.
    #[must_use]
    pub fn with_noise_seed(mut self, noise_seed: u64) -> Self {
        self.noise_seed = noise_seed;
        self
    }
}

impl Default for VibHeadConfig {
    fn default() -> Self {
        VibHeadConfig::paper_default()
    }
}

/// Variational-IB head over a backbone [`ImageModel`].
///
/// Parameters are the backbone's followed by the head's
/// (`vib.mu.*`, `vib.sigma.*`, `vib.prior_mu`, `vib.prior_rho`,
/// `vib.classifier.*`), all surfaced through [`ImageModel::params`] in a
/// stable order — so `save_params`, `architecture_fingerprint`, IBSC
/// checkpoints, and the serve registry handle a VIB model like any other.
pub struct VibHead<M> {
    inner: M,
    mu_head: Linear,
    sigma_head: Linear,
    prior_mu: Parameter,
    prior_rho: Parameter,
    classifier: Linear,
    config: VibHeadConfig,
    name: String,
}

/// FNV-1a over the batch's shape and value bits, mixed with `base`: the
/// per-batch noise-stream seed of the freezing contract.
fn noise_stream_seed(base: u64, x: &Tensor) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &d in x.shape() {
        h = (h ^ d as u64).wrapping_mul(0x100_0000_01b3);
    }
    for &v in x.data() {
        h = (h ^ u64::from(v.to_bits())).wrapping_mul(0x100_0000_01b3);
    }
    h ^ base
}

impl<M: ImageModel> VibHead<M> {
    /// Wraps `inner`, inferring the feature width from its last hidden tap
    /// via a zero-input probe forward (in [`Mode::Eval`], so the probe has
    /// no side effects).
    ///
    /// # Errors
    ///
    /// Returns a configuration error for a zero bottleneck or sample
    /// count, or when the backbone's last hidden tap is not a 2-D
    /// fully-connected output.
    pub fn new(inner: M, config: VibHeadConfig, rng: &mut impl Rng) -> Result<Self> {
        if config.bottleneck == 0 {
            return Err(NnError::Config("bottleneck width must be positive".into()));
        }
        if config.samples == 0 {
            return Err(NnError::Config("MC sample count must be positive".into()));
        }
        let feature_dim = Self::probe_feature_dim(&inner)?;
        let k = config.bottleneck;
        let name = format!("{}-vib", inner.name());
        Ok(VibHead {
            mu_head: Linear::new("vib.mu", feature_dim, k, rng),
            sigma_head: Linear::new("vib.sigma", feature_dim, k, rng),
            prior_mu: Parameter::new("vib.prior_mu", Tensor::zeros(&[k])),
            prior_rho: Parameter::new("vib.prior_rho", Tensor::full(&[k], PRIOR_RHO_INIT)),
            classifier: Linear::new("vib.classifier", k, inner.num_classes(), rng),
            inner,
            config,
            name,
        })
    }

    fn probe_feature_dim(inner: &M) -> Result<usize> {
        let [c, h, w] = inner.input_shape();
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::zeros(&[1, c, h, w]));
        let out = inner.forward(&sess, x, Mode::Eval)?;
        let tap = out
            .hidden
            .last()
            .ok_or_else(|| NnError::Config("backbone exposes no hidden taps".into()))?;
        let shape = tap.var.shape();
        if tap.kind != LayerKind::Fc || shape.len() != 2 {
            return Err(NnError::Config(format!(
                "backbone's last tap must be a 2-D FC output, got {shape:?}"
            )));
        }
        Ok(shape[1])
    }

    /// The wrapped backbone.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The head's hyperparameters.
    pub fn config(&self) -> &VibHeadConfig {
        &self.config
    }

    /// `σ = softplus(raw) + floor`, shared by the posterior and prior
    /// paths.
    fn positive<'t>(raw: Var<'t>) -> Var<'t> {
        raw.softplus().add_scalar(SIGMA_FLOOR)
    }
}

impl<M: ImageModel> ImageModel for VibHead<M> {
    fn forward<'t>(&self, sess: &Session<'t>, x: Var<'t>, mode: Mode) -> Result<ModelOutput<'t>> {
        let inner_out = self.inner.forward(sess, x, mode)?;
        let h = inner_out
            .hidden
            .last()
            .ok_or_else(|| NnError::Config("backbone exposes no hidden taps".into()))?
            .var;
        let mu = self.mu_head.forward(sess, h)?;

        let (logits, aux_loss) = match mode {
            // Deterministic eval: z = μ, no sampling, no KL. Input
            // gradients still flow (probe path).
            Mode::Eval => (self.classifier.forward(sess, mu)?, None),
            Mode::Train => {
                let sigma = Self::positive(self.sigma_head.forward(sess, h)?);
                let n = mu.shape()[0];
                let k = self.config.bottleneck;
                let mut gen = Gen::new(noise_stream_seed(self.config.noise_seed, &x.value()));
                let mut sum: Option<Var<'t>> = None;
                for _ in 0..self.config.samples {
                    let noise = gen.normal_tensor(&[n, k]);
                    let z = mu.rsample(sigma, &noise)?;
                    let logits_k = self.classifier.forward(sess, z)?;
                    sum = Some(match sum {
                        None => logits_k,
                        Some(acc) => acc.add(logits_k)?,
                    });
                }
                let logits = sum
                    .expect("samples > 0 by construction")
                    .scale(1.0 / self.config.samples as f32);
                let prior_mu = sess.bind(&self.prior_mu);
                let prior_sigma = Self::positive(sess.bind(&self.prior_rho));
                let kl = mu.kl_gauss(sigma, prior_mu, prior_sigma)?;
                (logits, Some(kl.scale(self.config.beta)))
            }
        };
        Ok(ModelOutput {
            logits,
            hidden: inner_out.hidden,
            aux_loss,
        })
    }

    fn params(&self) -> Vec<Parameter> {
        let mut out = self.inner.params();
        out.extend(self.mu_head.params());
        out.extend(self.sigma_head.params());
        out.push(self.prior_mu.clone());
        out.push(self.prior_rho.clone());
        out.extend(self.classifier.params());
        out
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn input_shape(&self) -> [usize; 3] {
        self.inner.input_shape()
    }

    fn last_conv_channels(&self) -> usize {
        self.inner.last_conv_channels()
    }

    fn set_channel_mask(&self, mask: Option<Tensor>) -> Result<()> {
        self.inner.set_channel_mask(mask)
    }

    fn channel_mask(&self) -> Option<Tensor> {
        self.inner.channel_mask()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn hidden_names(&self) -> Vec<String> {
        self.inner.hidden_names()
    }

    fn supports_input_gradients(&self) -> bool {
        self.inner.supports_input_gradients()
    }
}

impl<M: ImageModel> std::fmt::Debug for VibHead<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VibHead")
            .field("name", &self.name)
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{VggConfig, VggMini};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn head(samples: usize) -> VibHead<VggMini> {
        let mut rng = StdRng::seed_from_u64(0);
        let inner = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
        VibHead::new(
            inner,
            VibHeadConfig::paper_default().with_samples(samples),
            &mut rng,
        )
        .unwrap()
    }

    fn batch(fill: f32) -> Tensor {
        Tensor::full(&[2, 3, 16, 16], fill)
    }

    fn logits_bits(m: &VibHead<VggMini>, x: &Tensor, mode: Mode) -> Vec<u32> {
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let out = m.forward(&sess, tape.leaf(x.clone()), mode).unwrap();
        out.logits
            .value()
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    }

    #[test]
    fn train_forward_reports_kl_aux_loss() {
        let m = head(1);
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let out = m
            .forward(&sess, tape.leaf(batch(0.4)), Mode::Train)
            .unwrap();
        assert_eq!(out.logits.shape(), vec![2, 10]);
        let aux = out.aux_loss.expect("train mode must report β·KL");
        assert!(aux.value().data()[0].is_finite());
    }

    #[test]
    fn eval_forward_has_no_aux_loss() {
        let m = head(1);
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let out = m.forward(&sess, tape.leaf(batch(0.4)), Mode::Eval).unwrap();
        assert!(out.aux_loss.is_none());
    }

    #[test]
    fn frozen_noise_makes_train_forward_replayable() {
        // Unlike the rand-driven VibBaseline, the same (model, batch) pair
        // must produce the same train-mode logits on every call.
        let m = head(3);
        let x = batch(0.4);
        assert_eq!(
            logits_bits(&m, &x, Mode::Train),
            logits_bits(&m, &x, Mode::Train)
        );
        // ...but a different batch draws different noise.
        assert_ne!(
            logits_bits(&m, &x, Mode::Train),
            logits_bits(&m, &batch(0.5), Mode::Train)
        );
    }

    #[test]
    fn train_and_eval_paths_differ() {
        let m = head(1);
        let x = batch(0.4);
        assert_ne!(
            logits_bits(&m, &x, Mode::Train),
            logits_bits(&m, &x, Mode::Eval)
        );
    }

    #[test]
    fn gradients_reach_head_and_prior() {
        let m = head(2);
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let out = m
            .forward(&sess, tape.leaf(batch(0.4)), Mode::Train)
            .unwrap();
        let loss = out
            .logits
            .cross_entropy(&[0, 1])
            .unwrap()
            .add(out.aux_loss.unwrap())
            .unwrap();
        sess.backward(loss).unwrap();
        for p in m.params() {
            if p.name().starts_with("vib.") {
                assert!(p.grad().is_some(), "{} missing grad", p.name());
            }
        }
    }

    #[test]
    fn params_and_name_flow_through() {
        let m = head(1);
        assert_eq!(m.name(), "VggMini-vib");
        let names: Vec<String> = m.params().iter().map(|p| p.name().to_string()).collect();
        for needle in [
            "vib.mu.weight",
            "vib.sigma.weight",
            "vib.prior_mu",
            "vib.prior_rho",
            "vib.classifier.bias",
        ] {
            assert!(names.iter().any(|n| n == needle), "missing {needle}");
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let inner = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
        assert!(VibHead::new(
            inner,
            VibHeadConfig::paper_default().with_bottleneck(0),
            &mut rng
        )
        .is_err());
        let inner = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
        assert!(VibHead::new(
            inner,
            VibHeadConfig::paper_default().with_samples(0),
            &mut rng
        )
        .is_err());
    }
}
