//! Model architectures: scaled-down VGG, ResNet, and WideResNet.

pub mod residual;
pub mod resnet;
pub mod vgg;
pub mod vib;
pub mod wrn;
