//! `ResNetMini`: the workspace's ResNet-18 stand-in.

use crate::model::{ImageModel, Mode, ModelOutput};
use crate::models::residual::{ResidualConfig, ResidualNet};
use crate::{Parameter, Result, Session};
use ibrar_autograd::Var;
use ibrar_tensor::Tensor;
use rand::Rng;

/// Configuration for [`ResNetMini`].
#[derive(Debug, Clone)]
pub struct ResNetConfig {
    /// Number of output classes.
    pub num_classes: usize,
    /// Input shape `[c, h, w]`.
    pub input: [usize; 3],
    /// Stage widths (defaults to `[16, 32, 64]`).
    pub stage_widths: Vec<usize>,
    /// Residual blocks per stage (ResNet-18 uses 2).
    pub blocks_per_stage: usize,
}

impl ResNetConfig {
    /// 3×16×16 inputs, three stages, two blocks each (ResNet-18 layout at
    /// laptop scale).
    pub fn tiny(num_classes: usize) -> Self {
        ResNetConfig {
            num_classes,
            input: [3, 16, 16],
            stage_widths: vec![16, 32, 64],
            blocks_per_stage: 2,
        }
    }

    /// A single-block variant for fast tests.
    pub fn tiny_fast(num_classes: usize) -> Self {
        ResNetConfig {
            blocks_per_stage: 1,
            ..ResNetConfig::tiny(num_classes)
        }
    }
}

/// Scaled-down ResNet-18. See [`ResidualNet`] for the architecture.
#[derive(Debug)]
pub struct ResNetMini {
    net: ResidualNet,
}

impl ResNetMini {
    /// Builds a randomly initialized model.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for empty stages/depths.
    pub fn new(config: ResNetConfig, rng: &mut impl Rng) -> Result<Self> {
        Ok(ResNetMini {
            net: ResidualNet::new(
                ResidualConfig {
                    arch_name: "ResNetMini".into(),
                    num_classes: config.num_classes,
                    input: config.input,
                    stage_widths: config.stage_widths,
                    blocks_per_stage: config.blocks_per_stage,
                },
                rng,
            )?,
        })
    }
}

impl ImageModel for ResNetMini {
    fn forward<'t>(&self, sess: &Session<'t>, x: Var<'t>, mode: Mode) -> Result<ModelOutput<'t>> {
        self.net.forward(sess, x, mode)
    }

    fn params(&self) -> Vec<Parameter> {
        self.net.params()
    }

    fn num_classes(&self) -> usize {
        self.net.num_classes()
    }

    fn input_shape(&self) -> [usize; 3] {
        self.net.input_shape()
    }

    fn last_conv_channels(&self) -> usize {
        self.net.last_conv_channels()
    }

    fn set_channel_mask(&self, mask: Option<Tensor>) -> Result<()> {
        self.net.set_channel_mask(mask)
    }

    fn channel_mask(&self) -> Option<Tensor> {
        self.net.channel_mask()
    }

    fn name(&self) -> &str {
        self.net.name()
    }

    fn hidden_names(&self) -> Vec<String> {
        self.net.hidden_names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibrar_autograd::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn resnet_builds_and_runs() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = ResNetMini::new(ResNetConfig::tiny_fast(10), &mut rng).unwrap();
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::zeros(&[1, 3, 16, 16]));
        let out = m.forward(&sess, x, Mode::Eval).unwrap();
        assert_eq!(out.logits.shape(), vec![1, 10]);
        assert_eq!(m.name(), "ResNetMini");
        assert_eq!(m.last_conv_channels(), 64);
    }

    #[test]
    fn default_depth_is_two_blocks() {
        let cfg = ResNetConfig::tiny(10);
        assert_eq!(cfg.blocks_per_stage, 2);
    }
}
