//! Shared residual-network core for [`ResNetMini`](crate::ResNetMini) and
//! [`WideResNetMini`](crate::WideResNetMini).
//!
//! A stem convolution feeds a sequence of stages of [`BasicBlock`]s
//! (conv–bn–relu–conv–bn plus identity/projection shortcut), followed by
//! global average pooling and a linear classifier. The two public model
//! types differ only in their stage widths and depths.

use crate::model::{validate_mask, Hidden, ImageModel, LayerKind, Mode, ModelOutput};
use crate::{BatchNorm2d, Conv2d, Linear, NnError, Parameter, Result, Session};
use ibrar_autograd::Var;
use ibrar_tensor::{Conv2dSpec, Tensor};
use parking_lot::Mutex;
use rand::Rng;

/// A two-convolution residual block.
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
}

impl BasicBlock {
    fn new(name: &str, in_ch: usize, out_ch: usize, stride: usize, rng: &mut impl Rng) -> Self {
        let conv1 = Conv2d::new(
            &format!("{name}.conv1"),
            Conv2dSpec::new(in_ch, out_ch, 3, stride, 1),
            false,
            rng,
        );
        let bn1 = BatchNorm2d::new(&format!("{name}.bn1"), out_ch);
        let conv2 = Conv2d::new(
            &format!("{name}.conv2"),
            Conv2dSpec::new(out_ch, out_ch, 3, 1, 1),
            false,
            rng,
        );
        let bn2 = BatchNorm2d::new(&format!("{name}.bn2"), out_ch);
        let shortcut = (stride != 1 || in_ch != out_ch).then(|| {
            (
                Conv2d::new(
                    &format!("{name}.shortcut"),
                    Conv2dSpec::new(in_ch, out_ch, 1, stride, 0),
                    false,
                    rng,
                ),
                BatchNorm2d::new(&format!("{name}.shortcut_bn"), out_ch),
            )
        });
        BasicBlock {
            conv1,
            bn1,
            conv2,
            bn2,
            shortcut,
        }
    }

    fn forward<'t>(&self, sess: &Session<'t>, x: Var<'t>, mode: Mode) -> Result<Var<'t>> {
        let h = self
            .bn1
            .forward(sess, self.conv1.forward(sess, x)?, mode)?
            .relu()?;
        let h = self.bn2.forward(sess, self.conv2.forward(sess, h)?, mode)?;
        let skip = match &self.shortcut {
            Some((conv, bn)) => bn.forward(sess, conv.forward(sess, x)?, mode)?,
            None => x,
        };
        Ok(h.add(skip)?.relu()?)
    }

    fn params(&self) -> Vec<Parameter> {
        let mut out = Vec::new();
        out.extend(self.conv1.params());
        out.extend(self.bn1.params());
        out.extend(self.conv2.params());
        out.extend(self.bn2.params());
        if let Some((conv, bn)) = &self.shortcut {
            out.extend(conv.params());
            out.extend(bn.params());
        }
        out
    }
}

/// Configuration of a residual network.
#[derive(Debug, Clone)]
pub struct ResidualConfig {
    /// Architecture name reported by [`ImageModel::name`].
    pub arch_name: String,
    /// Number of output classes.
    pub num_classes: usize,
    /// Input shape `[c, h, w]`.
    pub input: [usize; 3],
    /// Output channels of each stage.
    pub stage_widths: Vec<usize>,
    /// Residual blocks per stage.
    pub blocks_per_stage: usize,
}

/// The shared residual network implementation.
pub struct ResidualNet {
    config: ResidualConfig,
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    stages: Vec<Vec<BasicBlock>>,
    classifier: Linear,
    mask: Mutex<Option<Tensor>>,
}

impl ResidualNet {
    /// Builds a randomly initialized residual network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] for empty stage lists or zero depths.
    pub fn new(config: ResidualConfig, rng: &mut impl Rng) -> Result<Self> {
        if config.stage_widths.is_empty() || config.blocks_per_stage == 0 {
            return Err(NnError::Config(
                "residual net needs at least one stage and one block".into(),
            ));
        }
        let [c, _, _] = config.input;
        let stem_width = config.stage_widths[0];
        let stem = Conv2d::new("stem", Conv2dSpec::new(c, stem_width, 3, 1, 1), false, rng);
        let stem_bn = BatchNorm2d::new("stem_bn", stem_width);
        let mut stages = Vec::with_capacity(config.stage_widths.len());
        let mut in_ch = stem_width;
        for (s, &width) in config.stage_widths.iter().enumerate() {
            let mut blocks = Vec::with_capacity(config.blocks_per_stage);
            for b in 0..config.blocks_per_stage {
                // First block of stages ≥ 1 downsamples.
                let stride = if s > 0 && b == 0 { 2 } else { 1 };
                blocks.push(BasicBlock::new(
                    &format!("stage{s}.block{b}"),
                    in_ch,
                    width,
                    stride,
                    rng,
                ));
                in_ch = width;
            }
            stages.push(blocks);
        }
        let classifier = Linear::new("classifier", in_ch, config.num_classes, rng);
        Ok(ResidualNet {
            config,
            stem,
            stem_bn,
            stages,
            classifier,
            mask: Mutex::new(None),
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &ResidualConfig {
        &self.config
    }
}

impl ImageModel for ResidualNet {
    fn forward<'t>(&self, sess: &Session<'t>, x: Var<'t>, mode: Mode) -> Result<ModelOutput<'t>> {
        let mut hidden = Vec::with_capacity(self.stages.len() + 2);
        let mut h = self
            .stem_bn
            .forward(sess, self.stem.forward(sess, x)?, mode)?
            .relu()?;
        hidden.push(Hidden {
            var: h,
            kind: LayerKind::Conv,
            index: 0,
        });
        let last_stage = self.stages.len() - 1;
        for (s, stage) in self.stages.iter().enumerate() {
            for block in stage {
                h = block.forward(sess, h, mode)?;
            }
            if s == last_stage {
                if let Some(mask) = self.mask.lock().clone() {
                    let m = sess.tape().leaf(mask);
                    h = h.mul(m)?;
                }
            }
            hidden.push(Hidden {
                var: h,
                kind: LayerKind::Conv,
                index: s + 1,
            });
        }
        let pooled = h.global_avg_pool()?;
        hidden.push(Hidden {
            var: pooled,
            kind: LayerKind::Fc,
            index: self.stages.len() + 1,
        });
        let logits = self.classifier.forward(sess, pooled)?;
        Ok(ModelOutput {
            logits,
            hidden,
            aux_loss: None,
        })
    }

    fn params(&self) -> Vec<Parameter> {
        let mut out = Vec::new();
        out.extend(self.stem.params());
        out.extend(self.stem_bn.params());
        for stage in &self.stages {
            for block in stage {
                out.extend(block.params());
            }
        }
        out.extend(self.classifier.params());
        out
    }

    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn input_shape(&self) -> [usize; 3] {
        self.config.input
    }

    fn last_conv_channels(&self) -> usize {
        *self
            .config
            .stage_widths
            .last()
            .expect("validated nonempty at construction")
    }

    fn set_channel_mask(&self, mask: Option<Tensor>) -> Result<()> {
        if let Some(m) = &mask {
            validate_mask(m, self.last_conv_channels())?;
        }
        *self.mask.lock() = mask;
        Ok(())
    }

    fn channel_mask(&self) -> Option<Tensor> {
        self.mask.lock().clone()
    }

    fn name(&self) -> &str {
        &self.config.arch_name
    }

    fn hidden_names(&self) -> Vec<String> {
        let mut names = vec!["stem".to_string()];
        for s in 0..self.stages.len() {
            names.push(format!("stage{}", s + 1));
        }
        names.push("pooled".to_string());
        names
    }
}

impl std::fmt::Debug for ResidualNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidualNet")
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibrar_autograd::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_config() -> ResidualConfig {
        ResidualConfig {
            arch_name: "TestResNet".into(),
            num_classes: 10,
            input: [3, 16, 16],
            stage_widths: vec![8, 16, 24],
            blocks_per_stage: 1,
        }
    }

    #[test]
    fn forward_shapes_and_taps() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = ResidualNet::new(tiny_config(), &mut rng).unwrap();
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::zeros(&[2, 3, 16, 16]));
        let out = m.forward(&sess, x, Mode::Eval).unwrap();
        assert_eq!(out.logits.shape(), vec![2, 10]);
        // stem + 3 stages + pooled
        assert_eq!(out.hidden.len(), 5);
        assert_eq!(out.hidden[3].var.shape(), vec![2, 24, 4, 4]);
        assert_eq!(out.hidden[4].var.shape(), vec![2, 24]);
        assert_eq!(m.hidden_names().len(), 5);
    }

    #[test]
    fn gradients_reach_all_params() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = ResidualNet::new(tiny_config(), &mut rng).unwrap();
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::full(&[2, 3, 16, 16], 0.1));
        let out = m.forward(&sess, x, Mode::Train).unwrap();
        let loss = out.logits.cross_entropy(&[0, 5]).unwrap();
        sess.backward(loss).unwrap();
        let missing: Vec<String> = m
            .params()
            .iter()
            .filter(|p| p.grad().is_none())
            .map(|p| p.name().to_string())
            .collect();
        assert!(missing.is_empty(), "params missing grads: {missing:?}");
    }

    #[test]
    fn mask_applies_to_last_stage() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = ResidualNet::new(tiny_config(), &mut rng).unwrap();
        m.set_channel_mask(Some(Tensor::zeros(&[24]))).unwrap();
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::full(&[1, 3, 16, 16], 0.5));
        let out = m.forward(&sess, x, Mode::Eval).unwrap();
        assert_eq!(out.hidden[3].var.value().abs().max(), 0.0);
    }

    #[test]
    fn empty_config_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cfg = tiny_config();
        cfg.stage_widths.clear();
        assert!(ResidualNet::new(cfg, &mut rng).is_err());
        let mut cfg2 = tiny_config();
        cfg2.blocks_per_stage = 0;
        assert!(ResidualNet::new(cfg2, &mut rng).is_err());
    }

    #[test]
    fn eval_differs_from_train_batchnorm() {
        // Fresh model: eval uses unit running stats, train uses batch stats.
        let mut rng = StdRng::seed_from_u64(3);
        let m = ResidualNet::new(tiny_config(), &mut rng).unwrap();
        let x_val = Tensor::from_fn(&[4, 3, 16, 16], |i| ((i[0] + i[2] + i[3]) % 5) as f32);
        let run = |mode: Mode| {
            let tape = Tape::new();
            let sess = Session::new(&tape);
            let x = tape.leaf(x_val.clone());
            m.forward(&sess, x, mode).unwrap().logits.value()
        };
        let train_out = run(Mode::Train);
        // Forwarding in train mode mutated running stats; still, eval should
        // now differ from the train-mode output.
        let eval_out = run(Mode::Eval);
        assert!(train_out.max_abs_diff(&eval_out).unwrap() > 1e-4);
    }
}
