//! Optimization: SGD with momentum and weight decay, plus the StepLR
//! schedule the paper trains with (`lr = 0.01`, `step_size = 20`,
//! `gamma = 0.2`).

use crate::Parameter;
use ibrar_tensor::Tensor;
use std::collections::HashMap;

/// Hyperparameters for [`Sgd`].
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Initial learning rate.
    pub lr: f32,
    /// Classical momentum coefficient (0 disables the velocity buffer).
    pub momentum: f32,
    /// Decoupled L2 weight decay added to the gradient.
    pub weight_decay: f32,
}

impl SgdConfig {
    /// The paper's training hyperparameters (lr 0.01, weight decay 1e-2,
    /// tuned for 60-epoch CIFAR runs).
    pub fn paper() -> Self {
        SgdConfig {
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 1e-2,
        }
    }

    /// The substrate recipe (lr 0.01, weight decay 5e-4): stable at the
    /// minutes-scale budgets this reproduction trains with (see the
    /// `tune_sgd` diagnostic binary).
    pub fn substrate() -> Self {
        SgdConfig {
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig::substrate()
    }
}

/// Stochastic gradient descent over a fixed parameter set.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Parameter>,
    config: SgdConfig,
    lr: f32,
    velocity: HashMap<u64, Tensor>,
}

impl Sgd {
    /// Creates an optimizer over `params`.
    pub fn new(params: Vec<Parameter>, config: SgdConfig) -> Self {
        Sgd {
            lr: config.lr,
            params,
            config,
            velocity: HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (used by schedulers).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update from the parameters' accumulated gradients and
    /// clears them. Parameters without gradients are skipped.
    pub fn step(&mut self) {
        for p in &self.params {
            let Some(grad) = p.take_grad() else { continue };
            let mut g = grad;
            if self.config.weight_decay != 0.0 {
                let v = p.value();
                g = g
                    .add(&v.scale(self.config.weight_decay))
                    .expect("parameter and gradient shapes agree");
            }
            if self.config.momentum != 0.0 {
                let vel = self
                    .velocity
                    .entry(p.id())
                    .or_insert_with(|| Tensor::zeros(g.shape()));
                *vel = vel
                    .scale(self.config.momentum)
                    .add(&g)
                    .expect("velocity shape fixed");
                g = vel.clone();
            }
            let lr = self.lr;
            p.update_value(|v| {
                let update = g.scale(lr);
                *v = v.sub(&update).expect("shapes agree");
            });
        }
    }

    /// Clears gradients without updating (equivalent of `zero_grad`).
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// Step learning-rate schedule: every `step_size` epochs multiply by `gamma`.
#[derive(Debug, Clone, Copy)]
pub struct StepLr {
    base_lr: f32,
    step_size: usize,
    gamma: f32,
}

impl StepLr {
    /// Creates a schedule.
    pub fn new(base_lr: f32, step_size: usize, gamma: f32) -> Self {
        StepLr {
            base_lr,
            step_size: step_size.max(1),
            gamma,
        }
    }

    /// The paper's schedule: lr 0.01, step 20, gamma 0.2.
    pub fn paper() -> Self {
        StepLr::new(0.01, 20, 0.2)
    }

    /// Learning rate for a 0-based epoch index.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_size) as i32)
    }

    /// Updates `opt`'s learning rate for `epoch`.
    pub fn apply(&self, opt: &mut Sgd, epoch: usize) {
        opt.set_lr(self.lr_at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_descends_quadratic() {
        // minimize f(w) = w² by hand-feeding grad = 2w
        let w = Parameter::new("w", Tensor::scalar(1.0));
        let mut opt = Sgd::new(
            vec![w.clone()],
            SgdConfig {
                lr: 0.1,
                momentum: 0.0,
                weight_decay: 0.0,
            },
        );
        for _ in 0..50 {
            let g = w.value().scale(2.0);
            w.accumulate_grad(g);
            opt.step();
        }
        assert!(w.value().data()[0].abs() < 1e-4);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let w = Parameter::new("w", Tensor::scalar(1.0));
            let mut opt = Sgd::new(
                vec![w.clone()],
                SgdConfig {
                    lr: 0.01,
                    momentum,
                    weight_decay: 0.0,
                },
            );
            for _ in 0..20 {
                w.accumulate_grad(w.value().scale(2.0));
                opt.step();
            }
            w.value().data()[0]
        };
        assert!(run(0.9).abs() < run(0.0).abs());
    }

    #[test]
    fn weight_decay_shrinks_without_gradient_signal() {
        let w = Parameter::new("w", Tensor::scalar(1.0));
        let mut opt = Sgd::new(
            vec![w.clone()],
            SgdConfig {
                lr: 0.1,
                momentum: 0.0,
                weight_decay: 0.5,
            },
        );
        w.accumulate_grad(Tensor::scalar(0.0));
        opt.step();
        assert!((w.value().data()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn step_skips_params_without_grads() {
        let w = Parameter::new("w", Tensor::scalar(1.0));
        let mut opt = Sgd::new(vec![w.clone()], SgdConfig::default());
        opt.step();
        assert_eq!(w.value().data(), &[1.0]);
    }

    #[test]
    fn steplr_matches_paper_schedule() {
        let sched = StepLr::paper();
        assert!((sched.lr_at(0) - 0.01).abs() < 1e-8);
        assert!((sched.lr_at(19) - 0.01).abs() < 1e-8);
        assert!((sched.lr_at(20) - 0.002).abs() < 1e-8);
        assert!((sched.lr_at(40) - 0.0004).abs() < 1e-8);
    }

    #[test]
    fn steplr_applies_to_optimizer() {
        let mut opt = Sgd::new(vec![], SgdConfig::default());
        StepLr::paper().apply(&mut opt, 25);
        assert!((opt.lr() - 0.002).abs() < 1e-8);
    }

    #[test]
    fn zero_grad_clears() {
        let w = Parameter::new("w", Tensor::scalar(1.0));
        let opt = Sgd::new(vec![w.clone()], SgdConfig::default());
        w.accumulate_grad(Tensor::scalar(1.0));
        opt.zero_grad();
        assert!(w.grad().is_none());
    }
}
