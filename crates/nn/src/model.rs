//! The [`ImageModel`] abstraction shared by every architecture.
//!
//! IB-RAR needs more from a model than logits: the loss attaches
//! mutual-information regularizers to hidden representations `T_l`, and the
//! feature-mask stage multiplies the last convolutional output by a
//! per-channel mask. [`ModelOutput`] therefore carries named [`Hidden`] taps,
//! and the trait exposes [`ImageModel::set_channel_mask`].

use crate::{NnError, Parameter, Result, Session};
use bytes::{BufMut, Bytes, BytesMut};
use ibrar_autograd::Var;
use ibrar_tensor::Tensor;

/// Whether a forward pass uses batch statistics (training) or running
/// statistics (evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training mode: batch-norm uses batch statistics and updates running
    /// estimates.
    Train,
    /// Evaluation mode: frozen statistics, deterministic output.
    Eval,
}

/// What kind of layer produced a hidden tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// Convolutional block output `[n, c, h, w]`.
    Conv,
    /// Fully-connected output `[n, d]`.
    Fc,
}

/// A named hidden representation `T_l` exposed for IB regularization.
#[derive(Debug, Clone, Copy)]
pub struct Hidden<'t> {
    /// The tap's value on the tape.
    pub var: Var<'t>,
    /// Which kind of layer produced it.
    pub kind: LayerKind,
    /// Stable index of the layer within the model (0-based).
    pub index: usize,
}

/// Result of a model forward pass.
#[derive(Debug)]
pub struct ModelOutput<'t> {
    /// Unnormalized class scores `[n, num_classes]`.
    pub logits: Var<'t>,
    /// Hidden taps in network order (conv blocks first, then FC layers).
    pub hidden: Vec<Hidden<'t>>,
    /// An extra differentiable loss term the model asks trainers to add
    /// (e.g. the VIB baseline's KL regularizer). `None` for plain models.
    pub aux_loss: Option<Var<'t>>,
}

/// A classifier over image batches with IB-RAR's required hooks.
///
/// Implementations: [`VggMini`](crate::VggMini),
/// [`ResNetMini`](crate::ResNetMini),
/// [`WideResNetMini`](crate::WideResNetMini).
///
/// `Send + Sync` is a supertrait so a shared `&dyn ImageModel` can be
/// evaluated from worker threads (forward is `&self`; parameters live
/// behind `Arc` + `Mutex`).
pub trait ImageModel: Send + Sync {
    /// Runs the network on `[n, c, h, w]` input bound to `sess`'s tape.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches.
    fn forward<'t>(&self, sess: &Session<'t>, x: Var<'t>, mode: Mode) -> Result<ModelOutput<'t>>;

    /// All trainable parameters, in a stable order.
    fn params(&self) -> Vec<Parameter>;

    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// Expected input shape `[c, h, w]`.
    fn input_shape(&self) -> [usize; 3];

    /// Number of channels produced by the last convolutional block (the
    /// masking target of IB-RAR Eq. 3).
    fn last_conv_channels(&self) -> usize;

    /// Installs (or clears) the per-channel mask multiplied into the last
    /// convolutional block's output on every subsequent forward pass.
    ///
    /// # Errors
    ///
    /// Returns an error when the mask length differs from
    /// [`ImageModel::last_conv_channels`].
    fn set_channel_mask(&self, mask: Option<Tensor>) -> Result<()>;

    /// The currently installed channel mask, if any.
    fn channel_mask(&self) -> Option<Tensor>;

    /// Human-readable architecture name.
    fn name(&self) -> &str;

    /// Names of the hidden taps, in the order `forward` emits them.
    fn hidden_names(&self) -> Vec<String>;

    /// Whether `forward` builds a differentiable graph back to the input.
    ///
    /// Gradient-based attacks (FGSM/PGD probes) require this. Inference-only
    /// wrappers — e.g. the serving tier's int8 post-training-quantized path,
    /// whose forward runs outside the tape — return `false` so callers can
    /// reject gradient work with a typed error instead of producing silent
    /// zero gradients.
    fn supports_input_gradients(&self) -> bool {
        true
    }
}

/// Serializes a model's parameters into the workspace checkpoint format.
pub fn save_params(model: &dyn ImageModel) -> Bytes {
    let mut buf = BytesMut::new();
    for p in model.params() {
        buf.put_slice(&p.value().encode());
    }
    buf.freeze()
}

/// Restores parameters from [`save_params`] output (same architecture only).
///
/// Decoded tensors are staged and only installed once the whole payload
/// validates, so a failed load never leaves the model half-restored.
///
/// # Errors
///
/// Returns [`NnError::Checkpoint`] on decode failures, shape mismatches, or
/// trailing bytes left over after every parameter has been restored (a
/// truncation/concatenation bug upstream, or a checkpoint from a larger
/// architecture).
pub fn load_params(model: &dyn ImageModel, mut bytes: Bytes) -> Result<()> {
    let params = model.params();
    let mut staged = Vec::with_capacity(params.len());
    for p in &params {
        let t = Tensor::decode(&mut bytes)
            .map_err(|e| NnError::Checkpoint(format!("while loading {}: {e}", p.name())))?;
        if t.shape() != p.shape() {
            return Err(NnError::Checkpoint(format!(
                "shape mismatch for {}: checkpoint {:?}, model {:?}",
                p.name(),
                t.shape(),
                p.shape()
            )));
        }
        staged.push(t);
    }
    if !bytes.is_empty() {
        return Err(NnError::Checkpoint(format!(
            "{} trailing byte(s) after restoring {} parameter(s); checkpoint \
             does not match architecture {}",
            bytes.len(),
            params.len(),
            model.name()
        )));
    }
    for (p, t) in params.iter().zip(staged) {
        p.set_value(t);
    }
    Ok(())
}

/// A stable 64-bit fingerprint of a model's architecture: FNV-1a over the
/// model name plus every parameter's name and shape, in `params()` order.
///
/// Two model instances share a fingerprint iff they agree on architecture
/// and widths, regardless of weight values. Checkpoint headers embed this so
/// loading into the wrong architecture fails fast with a clear message
/// instead of a mid-stream shape error.
pub fn architecture_fingerprint(model: &dyn ImageModel) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    mix(model.name().as_bytes());
    mix(&[0xff]);
    for p in model.params() {
        mix(p.name().as_bytes());
        mix(&[0xfe]);
        let shape = p.shape();
        mix(&(shape.len() as u64).to_le_bytes());
        for d in shape {
            mix(&(d as u64).to_le_bytes());
        }
    }
    h
}

/// Validates a mask tensor against the model's last conv width.
pub(crate) fn validate_mask(mask: &Tensor, channels: usize) -> Result<()> {
    if mask.shape() != [channels] {
        return Err(NnError::Config(format!(
            "channel mask must be [{channels}], got {:?}",
            mask.shape()
        )));
    }
    Ok(())
}
