//! Neural-network layers, optimizers, and the model families used by the
//! IB-RAR reproduction.
//!
//! Parameters live outside any tape as [`Parameter`] handles with interior
//! mutability; each training step opens a [`Session`] (a thin wrapper over an
//! [`ibrar_autograd::Tape`]) that binds parameters to tape variables, runs a
//! forward pass, and deposits gradients back into the parameters on
//! [`Session::backward`]. The [`Sgd`] optimizer then consumes those
//! gradients.
//!
//! Three model families mirror the paper's architectures at laptop scale:
//!
//! * [`VggMini`] — five convolutional blocks plus two fully-connected layers,
//!   matching the block structure that IB-RAR's robust-layer analysis
//!   (paper Table 3) depends on;
//! * [`ResNetMini`] — a ResNet-18-style residual network;
//! * [`WideResNetMini`] — a WRN-28-10-style widened residual network.
//!
//! Every model implements [`ImageModel`], exposing its hidden-layer taps
//! `T_l` so the IB-RAR loss can attach mutual-information regularizers.
//!
//! # Examples
//!
//! ```
//! use ibrar_nn::{ImageModel, Mode, Session, VggMini, VggConfig};
//! use ibrar_autograd::Tape;
//! use ibrar_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = VggMini::new(VggConfig::tiny(10), &mut rng)?;
//! let tape = Tape::new();
//! let sess = Session::new(&tape);
//! let x = tape.leaf(Tensor::zeros(&[2, 3, 16, 16]));
//! let out = model.forward(&sess, x, Mode::Eval)?;
//! assert_eq!(out.logits.shape(), vec![2, 10]);
//! assert_eq!(out.hidden.len(), 7); // 5 conv blocks + 2 FC taps
//! # Ok::<(), ibrar_nn::NnError>(())
//! ```

mod error;
mod layers;
mod model;
mod models;
mod optim;
mod param;
mod session;

pub use error::NnError;
pub use layers::{BatchNorm2d, Conv2d, Linear};
pub use model::{
    architecture_fingerprint, load_params, save_params, Hidden, ImageModel, LayerKind, Mode,
    ModelOutput,
};
pub use models::residual::{BasicBlock, ResidualConfig, ResidualNet};
pub use models::resnet::{ResNetConfig, ResNetMini};
pub use models::vgg::{VggConfig, VggMini};
pub use models::vib::{VibHead, VibHeadConfig};
pub use models::wrn::{WideResNetConfig, WideResNetMini};
pub use optim::{Sgd, SgdConfig, StepLr};
pub use param::Parameter;
pub use session::Session;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
