use ibrar_tensor::Tensor;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A trainable tensor living outside any tape.
///
/// `Parameter` is a cheaply clonable handle (`Arc` inside); clones share the
/// same storage, so layers can hand copies to optimizers and checkpointing
/// code. Gradients accumulate across [`Session::backward`](crate::Session)
/// calls until [`Parameter::zero_grad`] / the optimizer consumes them.
#[derive(Clone)]
pub struct Parameter {
    inner: Arc<Inner>,
}

struct Inner {
    id: u64,
    name: String,
    value: Mutex<Tensor>,
    grad: Mutex<Option<Tensor>>,
}

impl Parameter {
    /// Creates a named parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Parameter {
            inner: Arc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                name: name.into(),
                value: Mutex::new(value),
                grad: Mutex::new(None),
            }),
        }
    }

    /// Workspace-unique identifier (stable for the process lifetime).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The parameter's name (used in checkpoints and debugging).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Clones the current value.
    pub fn value(&self) -> Tensor {
        self.inner.value.lock().clone()
    }

    /// Shape of the current value.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.value.lock().shape().to_vec()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.value.lock().len()
    }

    /// Whether the value has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replaces the value (used by optimizers and checkpoint loading).
    pub fn set_value(&self, value: Tensor) {
        *self.inner.value.lock() = value;
    }

    /// Clones the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.inner.grad.lock().clone()
    }

    /// Adds a gradient contribution (accumulating with any existing one).
    ///
    /// # Panics
    ///
    /// Panics if the contribution's shape differs from the stored gradient.
    pub fn accumulate_grad(&self, contribution: Tensor) {
        let mut slot = self.inner.grad.lock();
        match slot.as_mut() {
            Some(existing) => {
                *existing = existing
                    .add(&contribution)
                    .expect("gradient shapes must agree");
            }
            None => *slot = Some(contribution),
        }
    }

    /// Removes and returns the accumulated gradient.
    pub fn take_grad(&self) -> Option<Tensor> {
        self.inner.grad.lock().take()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.lock() = None;
    }

    /// Applies `f` to the value in place (used by optimizer updates).
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.inner.value.lock());
    }
}

impl std::fmt::Debug for Parameter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Parameter")
            .field("id", &self.inner.id)
            .field("name", &self.inner.name)
            .field("shape", &self.shape())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = Parameter::new("a", Tensor::zeros(&[1]));
        let b = Parameter::new("b", Tensor::zeros(&[1]));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn clones_share_storage() {
        let a = Parameter::new("w", Tensor::zeros(&[2]));
        let b = a.clone();
        a.set_value(Tensor::ones(&[2]));
        assert_eq!(b.value().data(), &[1.0, 1.0]);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn gradient_accumulates() {
        let p = Parameter::new("w", Tensor::zeros(&[2]));
        p.accumulate_grad(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        p.accumulate_grad(Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap());
        assert_eq!(p.grad().unwrap().data(), &[4.0, 6.0]);
        p.zero_grad();
        assert!(p.grad().is_none());
    }

    #[test]
    fn take_grad_consumes() {
        let p = Parameter::new("w", Tensor::zeros(&[1]));
        p.accumulate_grad(Tensor::ones(&[1]));
        assert!(p.take_grad().is_some());
        assert!(p.take_grad().is_none());
    }

    #[test]
    fn debug_shows_name_and_shape() {
        let p = Parameter::new("conv1.w", Tensor::zeros(&[2, 3]));
        let s = format!("{p:?}");
        assert!(s.contains("conv1.w"));
        assert!(s.contains('3'));
    }
}
