//! Layer building blocks: [`Linear`], [`Conv2d`], and [`BatchNorm2d`].
//!
//! Layers own their [`Parameter`]s and expose a `forward(&self, sess, x)`
//! method; they are plain structs rather than a trait so each can have the
//! signature it needs (batch norm takes a [`Mode`]).

use crate::model::Mode;
use crate::{Parameter, Result, Session};
use ibrar_autograd::Var;
use ibrar_tensor::{kaiming_uniform, uniform, Conv2dSpec, Tensor};
use parking_lot::Mutex;
use rand::Rng;

/// Fully-connected layer `y = xW + b` over `[n, in] → [n, out]`.
#[derive(Debug)]
pub struct Linear {
    weight: Parameter,
    bias: Parameter,
}

impl Linear {
    /// Creates a Kaiming-initialized linear layer.
    pub fn new(name: &str, in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let bound = 1.0 / (in_features as f32).sqrt();
        Linear {
            weight: Parameter::new(
                format!("{name}.weight"),
                kaiming_uniform(&[in_features, out_features], rng),
            ),
            bias: Parameter::new(
                format!("{name}.bias"),
                uniform(&[out_features], -bound, bound, rng),
            ),
        }
    }

    /// Applies the layer.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches.
    pub fn forward<'t>(&self, sess: &Session<'t>, x: Var<'t>) -> Result<Var<'t>> {
        let w = sess.bind(&self.weight);
        let b = sess.bind(&self.bias);
        Ok(x.matmul(w)?.add(b)?)
    }

    /// The layer's parameters (weight, bias).
    pub fn params(&self) -> Vec<Parameter> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.shape()[1]
    }
}

/// 2-D convolution layer with optional bias.
#[derive(Debug)]
pub struct Conv2d {
    weight: Parameter,
    bias: Option<Parameter>,
    spec: Conv2dSpec,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    pub fn new(name: &str, spec: Conv2dSpec, bias: bool, rng: &mut impl Rng) -> Self {
        let weight = Parameter::new(
            format!("{name}.weight"),
            kaiming_uniform(
                &[
                    spec.out_channels,
                    spec.in_channels,
                    spec.kernel,
                    spec.kernel,
                ],
                rng,
            ),
        );
        let bias = bias.then(|| {
            let bound = 1.0 / (spec.patch_len() as f32).sqrt();
            Parameter::new(
                format!("{name}.bias"),
                uniform(&[spec.out_channels], -bound, bound, rng),
            )
        });
        Conv2d { weight, bias, spec }
    }

    /// Applies the convolution.
    ///
    /// # Errors
    ///
    /// Returns an error on geometry/shape mismatches.
    pub fn forward<'t>(&self, sess: &Session<'t>, x: Var<'t>) -> Result<Var<'t>> {
        let w = sess.bind(&self.weight);
        let b = self.bias.as_ref().map(|p| sess.bind(p));
        Ok(x.conv2d(w, b, self.spec)?)
    }

    /// The layer's parameters.
    pub fn params(&self) -> Vec<Parameter> {
        let mut out = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            out.push(b.clone());
        }
        out
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }
}

/// 2-D batch normalization with running statistics.
///
/// In [`Mode::Train`] the batch statistics are used (and folded into the
/// running estimates with `momentum`); in [`Mode::Eval`] the frozen running
/// statistics normalize via broadcast arithmetic.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Parameter,
    beta: Parameter,
    running_mean: Mutex<Tensor>,
    running_var: Mutex<Tensor>,
    momentum: f32,
    eps: f32,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(name: &str, channels: usize) -> Self {
        BatchNorm2d {
            gamma: Parameter::new(format!("{name}.gamma"), Tensor::ones(&[channels])),
            beta: Parameter::new(format!("{name}.beta"), Tensor::zeros(&[channels])),
            running_mean: Mutex::new(Tensor::zeros(&[channels])),
            running_var: Mutex::new(Tensor::ones(&[channels])),
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Applies batch normalization.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches.
    pub fn forward<'t>(&self, sess: &Session<'t>, x: Var<'t>, mode: Mode) -> Result<Var<'t>> {
        let gamma = sess.bind(&self.gamma);
        let beta = sess.bind(&self.beta);
        match mode {
            Mode::Train => {
                let (y, stats) = x.batch_norm2d(gamma, beta, self.eps)?;
                let m = self.momentum;
                {
                    let mut rm = self.running_mean.lock();
                    *rm = rm.scale(1.0 - m).add(&stats.mean.scale(m))?;
                }
                {
                    let mut rv = self.running_var.lock();
                    *rv = rv.scale(1.0 - m).add(&stats.var.scale(m))?;
                }
                Ok(y)
            }
            Mode::Eval => {
                // (x − μ̂)·inv_std̂·γ + β, all per-channel broadcasts.
                let mean = sess.tape().leaf(self.running_mean.lock().clone());
                let inv_std = sess
                    .tape()
                    .leaf(self.running_var.lock().map(|v| 1.0 / (v + self.eps).sqrt()));
                Ok(x.sub(mean)?.mul(inv_std)?.mul(gamma)?.add(beta)?)
            }
        }
    }

    /// The affine parameters (γ, β).
    pub fn params(&self) -> Vec<Parameter> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    /// Snapshot of the running mean (for tests/diagnostics).
    pub fn running_mean(&self) -> Tensor {
        self.running_mean.lock().clone()
    }

    /// Snapshot of the running variance (for tests/diagnostics).
    pub fn running_var(&self) -> Tensor {
        self.running_var.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibrar_autograd::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new("fc", 4, 3, &mut rng);
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::ones(&[2, 4]));
        let y = layer.forward(&sess, x).unwrap();
        assert_eq!(y.shape(), vec![2, 3]);
        assert_eq!(layer.in_features(), 4);
        assert_eq!(layer.out_features(), 3);
        assert_eq!(layer.params().len(), 2);
    }

    #[test]
    fn linear_gradients_reach_params() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new("fc", 3, 2, &mut rng);
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::ones(&[1, 3]));
        let loss = layer
            .forward(&sess, x)
            .unwrap()
            .square()
            .unwrap()
            .sum()
            .unwrap();
        sess.backward(loss).unwrap();
        for p in layer.params() {
            assert!(p.grad().is_some(), "{} missing grad", p.name());
        }
    }

    #[test]
    fn conv_shapes_with_padding() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Conv2d::new("conv", Conv2dSpec::new(3, 8, 3, 1, 1), true, &mut rng);
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::zeros(&[2, 3, 8, 8]));
        let y = layer.forward(&sess, x).unwrap();
        assert_eq!(y.shape(), vec![2, 8, 8, 8]);
        assert_eq!(layer.params().len(), 2);
    }

    #[test]
    fn conv_without_bias_has_one_param() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Conv2d::new("conv", Conv2dSpec::new(1, 2, 3, 1, 1), false, &mut rng);
        assert_eq!(layer.params().len(), 1);
    }

    #[test]
    fn batchnorm_train_updates_running_stats() {
        let bn = BatchNorm2d::new("bn", 2);
        let before = bn.running_mean();
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::from_fn(&[4, 2, 2, 2], |i| (i[1] * 10) as f32));
        bn.forward(&sess, x, Mode::Train).unwrap();
        let after = bn.running_mean();
        assert!(before.max_abs_diff(&after).unwrap() > 0.1);
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let bn = BatchNorm2d::new("bn", 1);
        let tape = Tape::new();
        let sess = Session::new(&tape);
        // Fresh BN: running mean 0, var 1 → eval output equals input.
        let x_val = Tensor::from_fn(&[1, 1, 2, 2], |i| i[3] as f32);
        let x = tape.leaf(x_val.clone());
        let y = bn.forward(&sess, x, Mode::Eval).unwrap();
        assert!(y.value().max_abs_diff(&x_val).unwrap() < 1e-3);
    }

    #[test]
    fn batchnorm_eval_is_deterministic() {
        let bn = BatchNorm2d::new("bn", 2);
        let run = || {
            let tape = Tape::new();
            let sess = Session::new(&tape);
            let x = tape.leaf(Tensor::from_fn(&[2, 2, 2, 2], |i| (i[0] + i[3]) as f32));
            bn.forward(&sess, x, Mode::Eval).unwrap().value()
        };
        assert_eq!(run(), run());
    }
}
