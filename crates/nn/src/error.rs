use ibrar_autograd::AutogradError;
use ibrar_tensor::TensorError;
use std::fmt;

/// Error type for layer, model, and optimizer operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An autograd operation failed.
    Autograd(AutogradError),
    /// A raw tensor operation failed.
    Tensor(TensorError),
    /// A model/layer configuration is invalid.
    Config(String),
    /// Checkpoint loading failed.
    Checkpoint(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Autograd(e) => write!(f, "autograd error: {e}"),
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            NnError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Autograd(e) => Some(e),
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AutogradError> for NnError {
    fn from(e: AutogradError) -> Self {
        NnError::Autograd(e)
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_work() {
        let ae: NnError = AutogradError::ForeignVar.into();
        assert!(matches!(ae, NnError::Autograd(_)));
        let te: NnError = TensorError::Decode("x".into()).into();
        assert!(matches!(te, NnError::Tensor(_)));
    }

    #[test]
    fn display_nonempty() {
        assert!(!NnError::Config("bad".into()).to_string().is_empty());
    }
}
