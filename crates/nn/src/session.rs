use crate::{Parameter, Result};
use ibrar_autograd::{Tape, Var, VarId};
use std::cell::RefCell;

/// One forward/backward step: a tape plus the parameter bindings made on it.
///
/// Layers call [`Session::bind`] to register their parameters as
/// differentiable tape variables; [`Session::backward`] runs the reverse pass
/// and deposits each parameter's gradient back into the [`Parameter`].
///
/// # Examples
///
/// ```
/// use ibrar_nn::{Parameter, Session};
/// use ibrar_autograd::Tape;
/// use ibrar_tensor::Tensor;
///
/// let w = Parameter::new("w", Tensor::scalar(3.0));
/// let tape = Tape::new();
/// let sess = Session::new(&tape);
/// let wv = sess.bind(&w);
/// let loss = wv.square()?; // L = w²
/// sess.backward(loss)?;
/// assert_eq!(w.grad().unwrap().data(), &[6.0]);
/// # Ok::<(), ibrar_nn::NnError>(())
/// ```
pub struct Session<'t> {
    tape: &'t Tape,
    bindings: RefCell<Vec<(Parameter, VarId)>>,
}

impl<'t> Session<'t> {
    /// Wraps a tape in a new session with no bindings.
    pub fn new(tape: &'t Tape) -> Self {
        Session {
            tape,
            bindings: RefCell::new(Vec::new()),
        }
    }

    /// The underlying tape.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// Registers `param` as a differentiable variable on the tape.
    pub fn bind(&self, param: &Parameter) -> Var<'t> {
        let var = self.tape.var(param.value());
        self.bindings.borrow_mut().push((param.clone(), var.id()));
        var
    }

    /// Number of parameter bindings made so far.
    pub fn binding_count(&self) -> usize {
        self.bindings.borrow().len()
    }

    /// Runs the backward pass from `loss` and accumulates each bound
    /// parameter's gradient into its [`Parameter`].
    ///
    /// # Errors
    ///
    /// Returns an error for non-scalar losses or foreign variables.
    pub fn backward(&self, loss: Var<'t>) -> Result<()> {
        let mut grads = self.tape.backward(loss)?;
        for (param, id) in self.bindings.borrow().iter() {
            if let Some(g) = grads.take_id(*id) {
                param.accumulate_grad(g);
            }
        }
        Ok(())
    }

    /// Like [`Session::backward`] but also returns the gradient of `wrt`
    /// (used by attacks that need input gradients).
    ///
    /// # Errors
    ///
    /// Returns an error for non-scalar losses or foreign variables.
    pub fn backward_with_input_grad(
        &self,
        loss: Var<'t>,
        wrt: Var<'t>,
    ) -> Result<Option<ibrar_tensor::Tensor>> {
        let mut grads = self.tape.backward(loss)?;
        for (param, id) in self.bindings.borrow().iter() {
            if let Some(g) = grads.take_id(*id) {
                param.accumulate_grad(g);
            }
        }
        Ok(grads.take_id(wrt.id()))
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("bindings", &self.binding_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibrar_tensor::Tensor;

    #[test]
    fn backward_deposits_gradients() {
        let w = Parameter::new("w", Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let wv = sess.bind(&w);
        let loss = wv.square().unwrap().sum().unwrap();
        sess.backward(loss).unwrap();
        assert_eq!(w.grad().unwrap().data(), &[2.0, 4.0]);
    }

    #[test]
    fn two_sessions_accumulate() {
        let w = Parameter::new("w", Tensor::scalar(1.0));
        for _ in 0..2 {
            let tape = Tape::new();
            let sess = Session::new(&tape);
            let wv = sess.bind(&w);
            let loss = wv.square().unwrap();
            sess.backward(loss).unwrap();
        }
        assert_eq!(w.grad().unwrap().data(), &[4.0]);
    }

    #[test]
    fn input_gradient_returned() {
        let w = Parameter::new("w", Tensor::scalar(2.0));
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.var(Tensor::scalar(3.0));
        let wv = sess.bind(&w);
        let loss = x.mul(wv).unwrap();
        let gx = sess.backward_with_input_grad(loss, x).unwrap().unwrap();
        assert_eq!(gx.data(), &[2.0]);
        assert_eq!(w.grad().unwrap().data(), &[3.0]);
    }

    #[test]
    fn binding_count_tracks() {
        let w = Parameter::new("w", Tensor::scalar(0.0));
        let tape = Tape::new();
        let sess = Session::new(&tape);
        assert_eq!(sess.binding_count(), 0);
        sess.bind(&w);
        sess.bind(&w);
        assert_eq!(sess.binding_count(), 2);
    }
}
