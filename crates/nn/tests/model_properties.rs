//! Property-based and cross-layer tests for the model zoo.

use ibrar_autograd::Tape;
use ibrar_nn::{
    architecture_fingerprint, load_params, save_params, ImageModel, Mode, ResNetConfig, ResNetMini,
    Session, Sgd, SgdConfig, VggConfig, VggMini, WideResNetConfig, WideResNetMini,
};
use ibrar_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eval_logits(model: &dyn ImageModel, x: &Tensor) -> Tensor {
    let tape = Tape::new();
    let sess = Session::new(&tape);
    let xv = tape.leaf(x.clone());
    model.forward(&sess, xv, Mode::Eval).unwrap().logits.value()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any batch size yields [n, k] logits and finite values, all models.
    #[test]
    fn forward_shapes_hold_for_any_batch(n in 1usize..5, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let models: Vec<Box<dyn ImageModel>> = vec![
            Box::new(VggMini::new(VggConfig::tiny(10), &mut rng).unwrap()),
            Box::new(ResNetMini::new(ResNetConfig::tiny_fast(10), &mut rng).unwrap()),
            Box::new(WideResNetMini::new(WideResNetConfig::tiny(10), &mut rng).unwrap()),
        ];
        let x = Tensor::from_fn(&[n, 3, 16, 16], |i| {
            (((i[0] + 1) * (i[1] + 2) * (i[2] + 3) + i[3] * 7 + seed as usize) % 11) as f32 / 11.0
        });
        for model in &models {
            let logits = eval_logits(model.as_ref(), &x);
            prop_assert_eq!(logits.shape(), &[n, 10]);
            prop_assert!(logits.all_finite());
        }
    }

    /// One SGD step on CE strictly decreases the loss for a large enough
    /// learning-rate-free step (standard descent property at init).
    #[test]
    fn sgd_step_decreases_ce(seed in 0u64..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = VggMini::new(VggConfig::tiny(4), &mut rng).unwrap();
        let x = Tensor::from_fn(&[8, 3, 16, 16], |i| {
            (((i[0] * 5 + i[1] * 3 + i[2] + i[3]) + seed as usize) % 13) as f32 / 13.0
        });
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let loss_of = || {
            let tape = Tape::new();
            let sess = Session::new(&tape);
            let xv = tape.leaf(x.clone());
            let out = model.forward(&sess, xv, Mode::Eval).unwrap();
            out.logits.cross_entropy(&labels).unwrap().value().data()[0]
        };
        let before = loss_of();
        // Take one small plain-SGD step on the CE gradient.
        {
            let tape = Tape::new();
            let sess = Session::new(&tape);
            let xv = tape.leaf(x.clone());
            let out = model.forward(&sess, xv, Mode::Eval).unwrap();
            let loss = out.logits.cross_entropy(&labels).unwrap();
            sess.backward(loss).unwrap();
        }
        let mut opt = Sgd::new(model.params(), SgdConfig {
            lr: 1e-3,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        opt.step();
        let after = loss_of();
        prop_assert!(after < before + 1e-6, "loss rose: {before} -> {after}");
    }
}

/// Checkpoints transfer across model instances for every architecture.
#[test]
fn checkpoint_roundtrip_all_models() {
    let x = Tensor::from_fn(&[2, 3, 16, 16], |i| ((i[0] + i[1] + i[3]) % 7) as f32 / 7.0);
    let mut rng_a = StdRng::seed_from_u64(1);
    let mut rng_b = StdRng::seed_from_u64(999);

    let a = VggMini::new(VggConfig::tiny(5), &mut rng_a).unwrap();
    let b = VggMini::new(VggConfig::tiny(5), &mut rng_b).unwrap();
    load_params(&b, save_params(&a)).unwrap();
    assert!(
        eval_logits(&a, &x)
            .max_abs_diff(&eval_logits(&b, &x))
            .unwrap()
            < 1e-6
    );

    let a = ResNetMini::new(ResNetConfig::tiny_fast(5), &mut rng_a).unwrap();
    let b = ResNetMini::new(ResNetConfig::tiny_fast(5), &mut rng_b).unwrap();
    load_params(&b, save_params(&a)).unwrap();
    // Residual nets also carry running stats; fresh models share the
    // defaults, so outputs still agree.
    assert!(
        eval_logits(&a, &x)
            .max_abs_diff(&eval_logits(&b, &x))
            .unwrap()
            < 1e-5
    );
}

/// Loading a checkpoint from a different architecture fails cleanly.
#[test]
fn checkpoint_arch_mismatch_rejected() {
    let mut rng = StdRng::seed_from_u64(0);
    let vgg = VggMini::new(VggConfig::tiny(5), &mut rng).unwrap();
    let resnet = ResNetMini::new(ResNetConfig::tiny_fast(5), &mut rng).unwrap();
    let bytes = save_params(&vgg);
    assert!(load_params(&resnet, bytes).is_err());
}

/// Trailing bytes after the last parameter are a checkpoint error, and the
/// failed load leaves the model's weights untouched.
#[test]
fn checkpoint_trailing_bytes_rejected() {
    use bytes::{BufMut, BytesMut};

    let mut rng = StdRng::seed_from_u64(3);
    let donor = VggMini::new(VggConfig::tiny(5), &mut rng).unwrap();
    let target = VggMini::new(VggConfig::tiny(5), &mut rng).unwrap();
    let before: Vec<Vec<f32>> = target
        .params()
        .iter()
        .map(|p| p.value().data().to_vec())
        .collect();

    let mut buf = BytesMut::new();
    buf.put_slice(&save_params(&donor));
    buf.put_slice(&[0u8; 7]);
    let err = load_params(&target, buf.freeze()).unwrap_err();
    assert!(
        err.to_string().contains("trailing"),
        "unexpected error: {err}"
    );

    // Atomicity: nothing was written into the target model.
    for (p, old) in target.params().iter().zip(&before) {
        assert_eq!(
            p.value().data().to_vec(),
            *old,
            "param {} mutated",
            p.name()
        );
    }
}

/// Fingerprints separate architectures and widths but ignore weight values.
#[test]
fn architecture_fingerprint_discriminates() {
    let mut rng_a = StdRng::seed_from_u64(1);
    let mut rng_b = StdRng::seed_from_u64(2);
    let vgg_a = VggMini::new(VggConfig::tiny(5), &mut rng_a).unwrap();
    let vgg_b = VggMini::new(VggConfig::tiny(5), &mut rng_b).unwrap();
    let vgg_wide = VggMini::new(VggConfig::tiny(10), &mut rng_a).unwrap();
    let resnet = ResNetMini::new(ResNetConfig::tiny_fast(5), &mut rng_a).unwrap();
    let wrn = WideResNetMini::new(WideResNetConfig::tiny(5), &mut rng_a).unwrap();

    // Same architecture, different weights: same fingerprint.
    assert_eq!(
        architecture_fingerprint(&vgg_a),
        architecture_fingerprint(&vgg_b)
    );
    // Different head width or family: distinct fingerprints.
    let prints = [
        architecture_fingerprint(&vgg_a),
        architecture_fingerprint(&vgg_wide),
        architecture_fingerprint(&resnet),
        architecture_fingerprint(&wrn),
    ];
    for i in 0..prints.len() {
        for j in (i + 1)..prints.len() {
            assert_ne!(prints[i], prints[j], "fingerprint collision {i}/{j}");
        }
    }
}

/// Hidden tap count stays in sync with `hidden_names` for every model.
#[test]
fn hidden_names_match_taps() {
    let mut rng = StdRng::seed_from_u64(0);
    let models: Vec<Box<dyn ImageModel>> = vec![
        Box::new(VggMini::new(VggConfig::tiny(10), &mut rng).unwrap()),
        Box::new(ResNetMini::new(ResNetConfig::tiny_fast(10), &mut rng).unwrap()),
        Box::new(WideResNetMini::new(WideResNetConfig::tiny(10), &mut rng).unwrap()),
    ];
    for model in &models {
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let x = tape.leaf(Tensor::zeros(&[1, 3, 16, 16]));
        let out = model.forward(&sess, x, Mode::Eval).unwrap();
        assert_eq!(
            out.hidden.len(),
            model.hidden_names().len(),
            "{}",
            model.name()
        );
    }
}
