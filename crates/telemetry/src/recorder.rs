//! The metric registry and event router.

use crate::fields::{Field, Level};
use crate::histogram::{Histogram, HistogramSummary};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Sentinel for "stderr sink off".
const STDERR_OFF: u8 = u8::MAX;

/// Collects counters, gauges, histograms, and span timings, and routes
/// structured events to the stderr and JSONL sinks.
///
/// All methods take `&self`; the global instance (see [`global`]) is shared
/// freely across threads. When disabled, every recording method returns
/// after a single relaxed atomic load.
pub struct Recorder {
    enabled: AtomicBool,
    stderr_level: AtomicU8,
    counters: Mutex<HashMap<String, u64>>,
    gauges: Mutex<HashMap<String, f64>>,
    histograms: Mutex<HashMap<String, Histogram>>,
    pub(crate) spans: Mutex<HashMap<String, Histogram>>,
    jsonl: Mutex<Option<Box<dyn Write + Send>>>,
    trace: crate::trace::TraceCapture,
    trace_path: Mutex<Option<String>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new_disabled()
    }
}

impl Recorder {
    /// Creates a disabled recorder (every call is a no-op until
    /// [`Recorder::enable`]).
    pub fn new_disabled() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            stderr_level: AtomicU8::new(STDERR_OFF),
            counters: Mutex::new(HashMap::new()),
            gauges: Mutex::new(HashMap::new()),
            histograms: Mutex::new(HashMap::new()),
            spans: Mutex::new(HashMap::new()),
            jsonl: Mutex::new(None),
            trace: crate::trace::TraceCapture::new(),
            trace_path: Mutex::new(None),
        }
    }

    /// Creates an enabled recorder with no sinks (metrics collection only) —
    /// the main constructor for tests.
    pub fn new_enabled() -> Self {
        let r = Recorder::new_disabled();
        r.enable();
        r
    }

    /// Turns metric collection on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns everything off (sinks stay attached but silent).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether the recorder is collecting.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables the human-readable stderr sink for events at `level` and
    /// above (`None` turns it off).
    pub fn set_stderr_level(&self, level: Option<Level>) {
        let v = level.map(|l| l as u8).unwrap_or(STDERR_OFF);
        self.stderr_level.store(v, Ordering::Relaxed);
    }

    /// Attaches (or detaches) the machine-readable JSONL sink.
    pub fn set_jsonl_sink(&self, sink: Option<Box<dyn Write + Send>>) {
        *self.jsonl.lock() = sink;
    }

    /// Opens `path` (created/truncated) as the JSONL sink. A literal `%p`
    /// in the path expands to the process id, so several test or worker
    /// processes can share one `IBRAR_TELEMETRY=jsonl:dir/%p.jsonl`
    /// setting without truncating each other's streams.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-creation errors.
    pub fn set_jsonl_path(&self, path: &str) -> std::io::Result<()> {
        let path = path.replace("%p", &std::process::id().to_string());
        if let Some(parent) = std::path::Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(&path)?;
        self.set_jsonl_sink(Some(Box::new(std::io::BufWriter::new(file))));
        Ok(())
    }

    /// Starts chrome trace-event capture into a bounded ring of `capacity`
    /// completed spans (oldest events drop first). Also enables the
    /// recorder — spans are inert while disabled.
    pub fn start_trace_capture(&self, capacity: usize) {
        self.trace.start(capacity);
        self.enable();
    }

    /// Stops trace capture; buffered events stay exportable.
    pub fn stop_trace_capture(&self) {
        self.trace.stop();
    }

    /// Whether span drops are currently feeding the trace ring.
    pub fn trace_capture_active(&self) -> bool {
        self.trace.is_active()
    }

    /// Number of buffered trace events.
    pub fn trace_event_count(&self) -> usize {
        self.trace.len()
    }

    /// Exports captured spans as a Chrome trace-event JSON document
    /// (viewable at `chrome://tracing`), or `None` if capture was never
    /// started.
    pub fn chrome_trace_json(&self) -> Option<String> {
        self.trace.chrome_json()
    }

    /// The `IBRAR_TRACE` output path, if one was configured.
    pub fn trace_output_path(&self) -> Option<String> {
        self.trace_path.lock().clone()
    }

    /// Writes the captured chrome trace to the `IBRAR_TRACE` path and
    /// returns it, or `Ok(None)` when no path or no capture is configured.
    ///
    /// # Errors
    ///
    /// Propagates file-write errors.
    pub fn write_chrome_trace(&self) -> std::io::Result<Option<String>> {
        let (Some(path), Some(json)) = (self.trace_output_path(), self.chrome_trace_json()) else {
            return Ok(None);
        };
        if let Some(parent) = std::path::Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&path, json)?;
        Ok(Some(path))
    }

    /// Feeds one completed span into the trace ring (called by the
    /// [`crate::Span`] guard when capture is active).
    pub(crate) fn record_trace_event(&self, path: &str, start: std::time::Instant, secs: f64) {
        self.trace.record(path, start, secs);
    }

    /// Applies `IBRAR_LOG` / `IBRAR_TELEMETRY` to this recorder. Invalid or
    /// unset variables leave the current configuration untouched, except
    /// `IBRAR_TELEMETRY=off|0` which force-disables everything.
    pub fn configure_from_env(&self) {
        if let Ok(spec) = std::env::var("IBRAR_LOG") {
            if let Some(level) = Level::parse(&spec) {
                self.set_stderr_level(Some(level));
                self.enable();
            } else if !spec.is_empty() {
                eprintln!(
                    "ibrar-telemetry: unrecognized IBRAR_LOG level {spec:?} \
                     (expected trace|debug|info|warn|error)"
                );
            }
        }
        if let Ok(spec) = std::env::var("IBRAR_TELEMETRY") {
            match spec.as_str() {
                "off" | "0" | "" => {
                    self.disable();
                    self.set_stderr_level(None);
                }
                "on" | "1" | "metrics" => self.enable(),
                other => {
                    if let Some(path) = other.strip_prefix("jsonl:") {
                        match self.set_jsonl_path(path) {
                            Ok(()) => self.enable(),
                            Err(e) => {
                                eprintln!("ibrar-telemetry: cannot open {path}: {e}")
                            }
                        }
                    } else {
                        eprintln!(
                            "ibrar-telemetry: unrecognized IBRAR_TELEMETRY value {other:?} \
                             (expected off|on|jsonl:<path>)"
                        );
                    }
                }
            }
        }
        if let Ok(path) = std::env::var("IBRAR_TRACE") {
            if !path.is_empty() {
                let path = path.replace("%p", &std::process::id().to_string());
                *self.trace_path.lock() = Some(path);
                self.start_trace_capture(crate::trace::DEFAULT_TRACE_CAPACITY);
            }
        }
    }

    /// Adds `delta` to a named monotonic counter.
    pub fn counter(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        *self.counters.lock().entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets a named gauge to its latest value.
    pub fn gauge(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.gauges.lock().insert(name.to_string(), value);
    }

    /// Records one observation into a named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Records a completed span (called by the [`crate::Span`] guard).
    pub(crate) fn observe_span(&self, path: &str, secs: f64) {
        self.spans
            .lock()
            .entry(path.to_string())
            .or_default()
            .record(secs);
    }

    /// Emits a structured event to the configured sinks.
    pub fn event(&self, level: Level, name: &str, fields: &[Field<'_>]) {
        if !self.is_enabled() {
            return;
        }
        let stderr_level = self.stderr_level.load(Ordering::Relaxed);
        if stderr_level != STDERR_OFF && level as u8 >= stderr_level {
            let mut line = format!("[{level:>5}] {name}");
            for (k, v) in fields {
                let _ = write!(line, " {k}={v}");
            }
            eprintln!("{line}");
        }
        if self.jsonl.lock().is_some() {
            let mut line = String::with_capacity(96);
            let _ = write!(
                line,
                "{{\"ts_ms\":{},\"type\":\"event\",\"level\":\"{}\",\"name\":",
                now_ms(),
                level.name()
            );
            crate::json::write_string(name, &mut line);
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                crate::json::write_string(k, &mut line);
                line.push(':');
                v.write_json(&mut line);
            }
            line.push_str("}}");
            self.write_jsonl_line(&line);
        }
    }

    /// Writes one pre-serialized JSON object as a JSONL line (no-op without
    /// a sink). Used for events and manifests.
    pub(crate) fn write_jsonl_line(&self, line: &str) {
        if let Some(w) = self.jsonl.lock().as_mut() {
            let _ = w.write_all(line.as_bytes());
            let _ = w.write_all(b"\n");
            let _ = w.flush();
        }
    }

    /// Flushes the JSONL sink, if any.
    pub fn flush(&self) {
        if let Some(w) = self.jsonl.lock().as_mut() {
            let _ = w.flush();
        }
    }

    /// Clears all collected metrics (sinks and enablement are untouched).
    pub fn reset_metrics(&self) {
        self.counters.lock().clear();
        self.gauges.lock().clear();
        self.histograms.lock().clear();
        self.spans.lock().clear();
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<_> = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        counters.sort();
        let mut gauges: Vec<_> = self
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<_> = self
            .histograms
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let mut spans: Vec<_> = self
            .spans
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect();
        spans.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }

    /// Human-readable summary: counters, gauges, histogram quantiles, and
    /// the span tree. Empty string when nothing was recorded.
    pub fn report(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        if !snap.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &snap.counters {
                let _ = writeln!(out, "  {name:<40} {v}");
            }
        }
        if !snap.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &snap.gauges {
                let _ = writeln!(out, "  {name:<40} {v:.6}");
            }
        }
        if !snap.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &snap.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<40} n={} mean={:.4} p50={:.4} p95={:.4} p99={:.4} max={:.4}",
                    h.count, h.mean, h.p50, h.p95, h.p99, h.max
                );
            }
        }
        if !snap.spans.is_empty() {
            out.push_str("spans (wall time):\n");
            // Lexicographic order puts parents directly before children, so
            // indenting by path depth renders the tree.
            for (path, h) in &snap.spans {
                let depth = path.matches('/').count();
                let name = path.rsplit('/').next().unwrap_or(path);
                let _ = writeln!(
                    out,
                    "  {:indent$}{:<width$} {:>5}× total {} p50 {} p95 {} p99 {} max {}",
                    "",
                    name,
                    h.count,
                    fmt_secs(h.sum),
                    fmt_secs(h.p50),
                    fmt_secs(h.p95),
                    fmt_secs(h.p99),
                    fmt_secs(h.max),
                    indent = depth * 2,
                    width = 38usize.saturating_sub(depth * 2),
                );
            }
        }
        out
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

/// A point-in-time copy of a [`Recorder`]'s metrics.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// `(path, summary)` span timings, sorted by path.
    pub spans: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Span summary by full path (e.g. `"train/epoch/advgen"`).
    pub fn span(&self, path: &str) -> Option<&HistogramSummary> {
        self.spans.iter().find(|(k, _)| k == path).map(|(_, v)| v)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }
}

/// An in-memory JSONL sink for tests: cloneable handle over a shared buffer.
#[derive(Debug, Clone, Default)]
pub struct BufferSink(Arc<Mutex<Vec<u8>>>);

impl BufferSink {
    /// Creates an empty buffer sink.
    pub fn new() -> Self {
        BufferSink::default()
    }

    /// The UTF-8 contents written so far.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock()).into_owned()
    }
}

impl Write for BufferSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Milliseconds since the Unix epoch.
pub(crate) fn now_ms() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

/// Compact human duration.
fn fmt_secs(s: f64) -> String {
    if !s.is_finite() {
        "-".to_string()
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder. First access applies the `IBRAR_LOG` /
/// `IBRAR_TELEMETRY` environment variables; with neither set it stays
/// disabled and every instrumentation call is a single atomic load.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(|| {
        let r = Recorder::new_disabled();
        r.configure_from_env();
        r
    })
}

/// Forces environment configuration to be applied now (binaries call this
/// at startup so the `IBRAR_*` variables take effect before the first
/// instrumented call).
pub fn init_from_env() {
    let _ = global();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let r = Recorder::new_disabled();
        r.counter("c", 5);
        r.gauge("g", 1.0);
        r.observe("h", 0.5);
        r.event(Level::Info, "e", &[("k", 1u64.into())]);
        {
            let _s = r.span("s");
        }
        let snap = r.snapshot();
        assert!(snap.is_empty(), "{snap:?}");
        assert_eq!(r.report(), "");
    }

    #[test]
    fn counters_gauges_histograms_collect() {
        let r = Recorder::new_enabled();
        r.counter("queries", 2);
        r.counter("queries", 3);
        r.gauge("lr", 0.1);
        r.gauge("lr", 0.01);
        for i in 1..=10 {
            r.observe("loss", i as f64);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("queries"), Some(5));
        assert_eq!(snap.gauge("lr"), Some(0.01));
        let h = snap.histogram("loss").unwrap();
        assert_eq!(h.count, 10);
        assert_eq!(h.max, 10.0);
        assert!(h.p50 >= 4.0 && h.p50 <= 6.0, "{h:?}");
    }

    #[test]
    fn jsonl_sink_receives_events() {
        let r = Recorder::new_enabled();
        let sink = BufferSink::new();
        r.set_jsonl_sink(Some(Box::new(sink.clone())));
        r.event(
            Level::Info,
            "train.epoch",
            &[("epoch", 3u64.into()), ("loss", 0.25f64.into())],
        );
        let line = sink.contents();
        let v = crate::json::Json::parse(line.trim()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("event"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("train.epoch"));
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("epoch").unwrap().as_f64(), Some(3.0));
        assert_eq!(fields.get("loss").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn report_renders_span_tree() {
        let r = Recorder::new_enabled();
        {
            let _a = r.span("train");
            let _b = r.span("epoch");
        }
        let report = r.report();
        assert!(report.contains("train"), "{report}");
        assert!(
            report.contains("  epoch") || report.contains("epoch"),
            "{report}"
        );
        let snap = r.snapshot();
        assert!(snap.span("train/epoch").is_some());
    }

    #[test]
    fn reset_clears_metrics_only() {
        let r = Recorder::new_enabled();
        r.counter("c", 1);
        r.reset_metrics();
        assert!(r.snapshot().is_empty());
        assert!(r.is_enabled());
    }
}
