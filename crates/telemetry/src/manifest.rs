//! Run manifests: one JSON object that makes a benchmark run reproducible.

use crate::fields::FieldValue;
use crate::recorder::{now_ms, Recorder};
use std::time::Instant;

/// Accumulates the identity of a run — name, seed, method, configuration —
/// plus its final metrics, and serializes everything (with wall time) as a
/// single JSON object at the end.
///
/// Bench binaries create one at startup, fill metrics as results arrive,
/// and call [`RunManifest::finish`] last; the JSON line lands in the global
/// JSONL sink (when configured) and is also returned for printing or
/// writing alongside the run's output file.
#[derive(Debug, Clone)]
pub struct RunManifest {
    name: String,
    seed: Option<u64>,
    method: Option<String>,
    config: Vec<(String, FieldValue)>,
    metrics: Vec<(String, FieldValue)>,
    started: Instant,
}

impl RunManifest {
    /// Starts a manifest for the run called `name`; the wall-time clock
    /// starts now.
    pub fn new(name: &str) -> Self {
        RunManifest {
            name: name.to_string(),
            seed: None,
            method: None,
            config: Vec::new(),
            metrics: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Records the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Records the training / defense method name (`"ib-rar"`, `"pgd-at"`…).
    pub fn with_method(mut self, method: &str) -> Self {
        self.method = Some(method.to_string());
        self
    }

    /// Adds (or overwrites) one configuration entry.
    pub fn config(&mut self, key: &str, value: impl Into<FieldValue>) -> &mut Self {
        Self::upsert(&mut self.config, key, value.into());
        self
    }

    /// Adds (or overwrites) one result metric.
    pub fn metric(&mut self, key: &str, value: impl Into<FieldValue>) -> &mut Self {
        Self::upsert(&mut self.metrics, key, value.into());
        self
    }

    fn upsert(list: &mut Vec<(String, FieldValue)>, key: &str, value: FieldValue) {
        match list.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => list.push((key.to_string(), value)),
        }
    }

    /// Serializes the manifest as one JSON object (`"type":"manifest"`),
    /// with wall time measured up to this call.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"ts_ms\":");
        out.push_str(&now_ms().to_string());
        out.push_str(",\"type\":\"manifest\",\"name\":");
        crate::json::write_string(&self.name, &mut out);
        if let Some(seed) = self.seed {
            out.push_str(",\"seed\":");
            out.push_str(&seed.to_string());
        }
        if let Some(method) = &self.method {
            out.push_str(",\"method\":");
            crate::json::write_string(method, &mut out);
        }
        out.push_str(",\"wall_secs\":");
        crate::json::write_f64(self.started.elapsed().as_secs_f64(), &mut out);
        for (section, entries) in [("config", &self.config), ("metrics", &self.metrics)] {
            out.push(',');
            crate::json::write_string(section, &mut out);
            out.push_str(":{");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                crate::json::write_string(k, &mut out);
                out.push(':');
                v.write_json(&mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Serializes the manifest, emits it to `rec`'s JSONL sink (if any),
    /// and returns the JSON string.
    pub fn finish_with(&self, rec: &Recorder) -> String {
        let json = self.to_json();
        if rec.is_enabled() {
            rec.write_jsonl_line(&json);
            rec.flush();
        }
        json
    }

    /// [`RunManifest::finish_with`] against the global recorder.
    pub fn finish(&self) -> String {
        self.finish_with(crate::global())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::recorder::BufferSink;

    #[test]
    fn manifest_round_trips_through_json() {
        let mut m = RunManifest::new("table1")
            .with_seed(42)
            .with_method("ib-rar");
        m.config("epochs", 10u64).config("alpha", 0.05f64);
        m.metric("natural_acc", 0.91f64);
        m.metric("natural_acc", 0.92f64); // overwrite wins
        let v = Json::parse(&m.to_json()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("manifest"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("table1"));
        assert_eq!(v.get("seed").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("method").unwrap().as_str(), Some("ib-rar"));
        assert!(v.get("wall_secs").unwrap().as_f64().unwrap() >= 0.0);
        let config = v.get("config").unwrap();
        assert_eq!(config.get("epochs").unwrap().as_f64(), Some(10.0));
        assert_eq!(config.get("alpha").unwrap().as_f64(), Some(0.05));
        let metrics = v.get("metrics").unwrap();
        assert_eq!(metrics.get("natural_acc").unwrap().as_f64(), Some(0.92));
    }

    #[test]
    fn finish_emits_to_jsonl_sink() {
        let rec = Recorder::new_enabled();
        let sink = BufferSink::new();
        rec.set_jsonl_sink(Some(Box::new(sink.clone())));
        let m = RunManifest::new("quickstart");
        let json = m.finish_with(&rec);
        let written = sink.contents();
        assert_eq!(written.trim(), json);
        assert!(Json::parse(written.trim()).is_ok());
    }

    #[test]
    fn disabled_recorder_still_returns_json() {
        let rec = Recorder::new_disabled();
        let sink = BufferSink::new();
        rec.set_jsonl_sink(Some(Box::new(sink.clone())));
        let json = RunManifest::new("silent").finish_with(&rec);
        assert!(Json::parse(&json).is_ok());
        assert!(sink.contents().is_empty(), "disabled sink must stay silent");
    }
}
