//! Minimal JSON writer helpers and parser.
//!
//! The workspace avoids serde (the registry mirror is offline), so the JSONL
//! sink hand-writes its lines and this module supplies the escaping rules
//! plus a small recursive-descent parser used by tests (round-tripping the
//! sink) and by tooling that reads telemetry streams back.

use std::fmt::Write as _;

/// Writes `s` as a JSON string literal (with quotes) into `out`.
pub fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `v` as a JSON number into `out` (`null` for non-finite values).
pub fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite numbers on the write side).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON value from `s` (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction: it came from a &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f→g";
        let mut out = String::new();
        write_string(nasty, &mut out);
        assert_eq!(Json::parse(&out).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn numbers_and_literals() {
        assert_eq!(Json::parse("3.25").unwrap().as_f64(), Some(3.25));
        assert_eq!(Json::parse("-1e3").unwrap().as_f64(), Some(-1000.0));
        assert_eq!(Json::parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        let mut out = String::new();
        write_f64(f64::INFINITY, &mut out);
        assert_eq!(out, "null");
    }

    #[test]
    fn nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_bool(), Some(false));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn errors_reported() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
