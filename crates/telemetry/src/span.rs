//! RAII span timers with thread-local nesting.

use crate::recorder::Recorder;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    // Each entry is the FULL path of an open span; the last entry is the
    // innermost, so a child's path is `last + "/" + name`.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Number of spans currently open on this thread.
pub fn span_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// An open timing span. Dropping it records the elapsed wall time into the
/// owning recorder's span histograms under the nested path
/// (`"outer/inner"`).
#[must_use = "a span records time only when it is dropped; bind it to a variable"]
#[derive(Debug)]
pub struct Span<'r> {
    rec: Option<&'r Recorder>,
    start: Option<Instant>,
    path: String,
}

impl Recorder {
    /// Opens a span named `name`, nested under any span already open on
    /// this thread. When the recorder is disabled this returns an inert
    /// guard without reading the clock.
    pub fn span(&self, name: &str) -> Span<'_> {
        if !self.is_enabled() {
            return Span {
                rec: None,
                start: None,
                path: String::new(),
            };
        }
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        Span {
            rec: Some(self),
            start: Some(Instant::now()),
            path,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let (Some(rec), Some(start)) = (self.rec, self.start) {
            let secs = start.elapsed().as_secs_f64();
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Pop our own entry. Guards drop in reverse creation order
                // within a scope, so the top of the stack is ours; being
                // defensive about out-of-order drops keeps the stack sane.
                if stack.last() == Some(&self.path) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|p| p == &self.path) {
                    stack.remove(pos);
                }
            });
            rec.observe_span(&self.path, secs);
            if rec.trace_capture_active() {
                rec.record_trace_event(&self.path, start, secs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_paths_and_depth() {
        let r = Recorder::new_enabled();
        assert_eq!(span_depth(), 0);
        {
            let _a = r.span("outer");
            assert_eq!(span_depth(), 1);
            {
                let _b = r.span("middle");
                let _c = r.span("inner");
                assert_eq!(span_depth(), 3);
            }
            assert_eq!(span_depth(), 1);
        }
        assert_eq!(span_depth(), 0);
        let snap = r.snapshot();
        assert!(snap.span("outer").is_some());
        assert!(snap.span("outer/middle").is_some());
        assert!(snap.span("outer/middle/inner").is_some());
        assert_eq!(snap.span("outer/middle/inner").unwrap().count, 1);
    }

    #[test]
    fn repeated_spans_accumulate() {
        let r = Recorder::new_enabled();
        for _ in 0..5 {
            let _s = r.span("step");
        }
        assert_eq!(r.snapshot().span("step").unwrap().count, 5);
    }

    #[test]
    fn disabled_spans_do_not_touch_the_stack() {
        let r = Recorder::new_disabled();
        let _s = r.span("ghost");
        assert_eq!(span_depth(), 0);
        drop(_s);
        assert!(r.snapshot().spans.is_empty());
    }

    #[test]
    fn spans_feed_trace_capture_when_active() {
        let r = Recorder::new_enabled();
        {
            let _a = r.span("before_capture");
        }
        assert_eq!(r.trace_event_count(), 0);
        r.start_trace_capture(128);
        {
            let _a = r.span("outer");
            let _b = r.span("inner");
        }
        assert_eq!(r.trace_event_count(), 2);
        let json = r.chrome_trace_json().unwrap();
        assert!(json.contains("\"outer/inner\""), "{json}");
        r.stop_trace_capture();
        {
            let _a = r.span("after_stop");
        }
        assert_eq!(r.trace_event_count(), 2);
    }

    #[test]
    fn sibling_spans_share_a_parent_path() {
        let r = Recorder::new_enabled();
        {
            let _p = r.span("parent");
            {
                let _a = r.span("a");
            }
            {
                let _b = r.span("b");
            }
        }
        let snap = r.snapshot();
        assert!(snap.span("parent/a").is_some());
        assert!(snap.span("parent/b").is_some());
    }
}
