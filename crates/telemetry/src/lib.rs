//! **ibrar-telemetry** — the observability substrate for the IB-RAR
//! reproduction.
//!
//! The paper's evidence is almost entirely trajectories: per-epoch HSIC
//! terms for the information plane (Fig. 5), convergence curves (Fig. 4),
//! and per-attack robust accuracy (Tables 1–2). This crate makes those
//! measurements (and the wall-time breakdowns behind every perf PR)
//! first-class outputs without adding any external dependency:
//!
//! * [`Recorder`] — counters, gauges, and log-bucketed [`Histogram`]s with
//!   `count`/`sum`/`p50`/`p95`/`p99`/`p999`/`max` readout (interpolated
//!   quantiles, mergeable buckets).
//! * RAII span timers ([`span!`]) that nest through a thread-local stack and
//!   feed a tree-shaped timing report ([`report`]), plus an optional bounded
//!   chrome-trace ring ([`Recorder::start_trace_capture`]) exporting span
//!   trees for `chrome://tracing`.
//! * Leveled structured events ([`event`]) with two sinks: human-readable
//!   stderr and machine-readable JSONL.
//! * [`Snapshot`] serialization for live scraping: Prometheus text
//!   exposition ([`Snapshot::prometheus_text`]) and JSON round-tripping
//!   ([`Snapshot::to_json`] / [`Snapshot::from_json`]) — the payloads
//!   behind `ibrar-serve`'s Metrics opcode and the `ibrar-top` dashboard.
//! * [`RunManifest`] — config, seed, method name, wall time, and final
//!   metrics emitted as a JSON line at the end of each run.
//!
//! # Configuration
//!
//! Everything defaults to **off** (a single relaxed atomic load per call
//! site — see the `telemetry` group in `crates/bench/benches/substrate.rs`).
//! Three environment variables, read on first use, turn it on:
//!
//! * `IBRAR_LOG=trace|debug|info|warn|error` — enables the recorder and the
//!   human-readable stderr sink at the given level.
//! * `IBRAR_TELEMETRY=jsonl:<path>` — enables the recorder and streams every
//!   event and manifest as one JSON object per line to `<path>` (`%p` in
//!   the path expands to the process id).
//!   `IBRAR_TELEMETRY=on` enables metric collection without a JSONL file;
//!   `IBRAR_TELEMETRY=off` forces everything off.
//! * `IBRAR_TRACE=<path>` — enables chrome-trace span capture; binaries
//!   using `ibrar-bench`'s harness write the trace-event JSON to `<path>`
//!   on exit (`%p` expands to the process id).
//!
//! # Examples
//!
//! ```
//! use ibrar_telemetry as tel;
//!
//! let rec = tel::Recorder::new_enabled();
//! rec.counter("attack.forward", 1);
//! rec.gauge("train.lr", 0.01);
//! {
//!     let _outer = rec.span("train");
//!     let _inner = rec.span("epoch"); // recorded under "train/epoch"
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("attack.forward"), Some(1));
//! assert!(snap.span("train/epoch").is_some());
//! ```

mod export;
mod fields;
mod histogram;
pub mod json;
mod manifest;
mod recorder;
mod span;
mod trace;

pub use export::prometheus_name;
pub use fields::{Field, FieldValue, Level};
pub use histogram::{Histogram, HistogramSummary};
pub use manifest::RunManifest;
pub use recorder::{global, init_from_env, BufferSink, Recorder, Snapshot};
pub use span::{span_depth, Span};
pub use trace::DEFAULT_TRACE_CAPACITY;

/// Increments a named counter on the global recorder (no-op when disabled).
pub fn counter(name: &str, delta: u64) {
    global().counter(name, delta);
}

/// Sets a named gauge on the global recorder (no-op when disabled).
pub fn gauge(name: &str, value: f64) {
    global().gauge(name, value);
}

/// Records a histogram observation on the global recorder (no-op when
/// disabled).
pub fn observe(name: &str, value: f64) {
    global().observe(name, value);
}

/// Emits a structured event on the global recorder (no-op when disabled).
pub fn event(level: Level, name: &str, fields: &[Field<'_>]) {
    global().event(level, name, fields);
}

/// Opens a timing span on the global recorder. Prefer the [`span!`] macro.
pub fn span(name: &str) -> Span<'static> {
    global().span(name)
}

/// Whether the global recorder is collecting anything.
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Human-readable summary (counters, gauges, histograms, span tree) of the
/// global recorder. Empty string when disabled or nothing was recorded.
pub fn report() -> String {
    global().report()
}

/// Snapshot of the global recorder's metrics.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Flushes the global JSONL sink, if any.
pub fn flush() {
    global().flush();
}

/// RAII span timer on the global recorder:
/// `let _s = ibrar_telemetry::span!("pgd.inner_loop");`
///
/// Spans opened while another span guard is alive on the same thread nest:
/// the inner span is recorded under `outer/inner` and the timing report
/// renders the tree.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}
