//! Chrome trace-event capture.
//!
//! A bounded ring buffer of completed spans that exports in the Chrome
//! trace-event JSON format (load the file at `chrome://tracing` or
//! <https://ui.perfetto.dev>). Capture is off by default; when off the
//! only cost on the span path is one relaxed atomic load. When the ring
//! is full the oldest events fall off (the *end* of a run is usually the
//! interesting part) and the drop count is reported in the export
//! metadata.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Default ring capacity used by `IBRAR_TRACE`.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One completed span, timed relative to the capture origin.
#[derive(Debug, Clone)]
struct TraceEvent {
    /// Full span path (e.g. `"serve.request/serve.batch"`).
    path: String,
    /// Start offset from the capture origin, in microseconds.
    start_us: f64,
    /// Duration in microseconds.
    dur_us: f64,
    /// Small dense per-thread id (chrome lanes).
    tid: u64,
}

#[derive(Debug)]
struct Inner {
    origin: Instant,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// Bounded span-event ring with chrome-trace JSON export.
#[derive(Debug)]
pub(crate) struct TraceCapture {
    active: AtomicBool,
    inner: Mutex<Option<Inner>>,
}

impl TraceCapture {
    pub(crate) fn new() -> Self {
        TraceCapture {
            active: AtomicBool::new(false),
            inner: Mutex::new(None),
        }
    }

    /// One relaxed load; the gate every span-drop checks.
    pub(crate) fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Starts (or restarts) capture with a fresh origin and empty ring.
    pub(crate) fn start(&self, capacity: usize) {
        *self.inner.lock() = Some(Inner {
            origin: Instant::now(),
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        });
        self.active.store(true, Ordering::Relaxed);
    }

    /// Stops capture, keeping buffered events for export.
    pub(crate) fn stop(&self) {
        self.active.store(false, Ordering::Relaxed);
    }

    /// Records one completed span (no-op unless started).
    pub(crate) fn record(&self, path: &str, start: Instant, dur_secs: f64) {
        let mut guard = self.inner.lock();
        let Some(inner) = guard.as_mut() else {
            return;
        };
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        let start_us = start.duration_since(inner.origin).as_secs_f64() * 1e6;
        inner.events.push_back(TraceEvent {
            path: path.to_string(),
            start_us,
            dur_us: dur_secs * 1e6,
            tid: thread_lane(),
        });
    }

    /// Number of buffered events.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().as_ref().map_or(0, |i| i.events.len())
    }

    /// Renders the buffer as a Chrome trace-event JSON document
    /// (`ph:"X"` complete events, microsecond timestamps). Returns `None`
    /// when capture was never started.
    pub(crate) fn chrome_json(&self) -> Option<String> {
        let guard = self.inner.lock();
        let inner = guard.as_ref()?;
        let mut out = String::with_capacity(64 + inner.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in inner.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // The lane label is the leaf span name; the full path rides in
            // args so nothing is lost when names repeat at different depths.
            let leaf = e.path.rsplit('/').next().unwrap_or(&e.path);
            out.push_str("{\"name\":");
            crate::json::write_string(leaf, &mut out);
            let _ = write!(
                out,
                ",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"path\":",
                e.tid, e.start_us, e.dur_us
            );
            crate::json::write_string(&e.path, &mut out);
            out.push_str("}}");
        }
        let _ = write!(
            out,
            "],\"otherData\":{{\"dropped_events\":{}}}}}",
            inner.dropped
        );
        Some(out)
    }
}

/// Dense per-thread lane id: the first thread that records gets 0, the
/// next 1, and so on — stable for the thread's lifetime.
fn thread_lane() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static LANE: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    LANE.with(|l| *l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn inactive_capture_records_nothing() {
        let t = TraceCapture::new();
        t.record("x", Instant::now(), 0.001);
        assert_eq!(t.len(), 0);
        assert!(t.chrome_json().is_none());
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = TraceCapture::new();
        t.start(2);
        let now = Instant::now();
        t.record("a", now, 0.001);
        t.record("b", now, 0.001);
        t.record("c", now, 0.001);
        assert_eq!(t.len(), 2);
        let doc = Json::parse(&t.chrome_json().unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let names: Vec<_> = events
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, ["b", "c"]);
        let dropped = doc
            .get("otherData")
            .unwrap()
            .get("dropped_events")
            .unwrap()
            .as_f64();
        assert_eq!(dropped, Some(1.0));
    }

    #[test]
    fn export_is_valid_json_with_timing_fields() {
        let t = TraceCapture::new();
        t.start(16);
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.record("outer/inner", start, 0.002);
        let doc = Json::parse(&t.chrome_json().unwrap()).unwrap();
        let e = &doc.get("traceEvents").unwrap().as_array().unwrap()[0];
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(e.get("name").unwrap().as_str(), Some("inner"));
        assert_eq!(
            e.get("args").unwrap().get("path").unwrap().as_str(),
            Some("outer/inner")
        );
        assert!(e.get("dur").unwrap().as_f64().unwrap() >= 1_000.0);
        assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
    }
}
