//! Log-bucketed histogram with fixed geometric bucket boundaries.
//!
//! Buckets are spaced four per octave (boundary `i` sits at
//! `2^(i/4 − 32)`), which bounds the relative quantile error at
//! `2^(1/8) − 1 ≈ 9%` while keeping the whole histogram a flat 256-slot
//! array — no allocation per observation, O(buckets) readout. The covered
//! range, `[2⁻³² , 2³²] ≈ [2.3e-10, 4.3e9]`, spans nanosecond spans to
//! hour-long runs; out-of-range values clamp to the edge buckets (and are
//! still exact in `count`/`sum`/`min`/`max`).

/// Number of buckets in every histogram.
pub const NUM_BUCKETS: usize = 256;

/// Buckets per octave (power of two).
const SUB_BUCKETS: f64 = 4.0;

/// Exponent of the lowest bucket boundary (`2^MIN_EXP`).
const MIN_EXP: f64 = -32.0;

/// A log-bucketed histogram of nonnegative `f64` observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    /// Records one observation. Non-finite values are ignored; values ≤ 0
    /// land in the lowest bucket (count/sum/min/max stay exact).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// The bucket an observation falls into.
    pub fn bucket_index(v: f64) -> usize {
        if v <= 0.0 {
            return 0;
        }
        let idx = ((v.log2() - MIN_EXP) * SUB_BUCKETS).floor();
        idx.clamp(0.0, (NUM_BUCKETS - 1) as f64) as usize
    }

    /// Lower boundary of bucket `i`.
    pub fn bucket_lower(i: usize) -> f64 {
        2f64.powf(MIN_EXP + i as f64 / SUB_BUCKETS)
    }

    /// Upper boundary of bucket `i` (the lower boundary of `i + 1`).
    pub fn bucket_upper(i: usize) -> f64 {
        Self::bucket_lower(i + 1)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Approximate quantile `q ∈ [0, 1]` from the bucket counts: finds the
    /// bucket holding the `⌈q·count⌉`-th observation and linearly
    /// interpolates inside it by the observation's rank among the bucket's
    /// occupants, clamped to the exact `[min, max]` envelope. Worst-case
    /// relative error stays bounded by one bucket width (≈ 19%); in
    /// practice interpolation lands within a couple of percent for
    /// non-degenerate distributions.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                // The k-th of c occupants (1-based) sits at fraction k/c
                // of the bucket's width under a within-bucket uniformity
                // assumption.
                let frac = (target - cum) as f64 / c as f64;
                let lo = Self::bucket_lower(i);
                let hi = Self::bucket_upper(i);
                return (lo + (hi - lo) * frac).clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Folds `other` into `self`: bucket-wise count addition with exact
    /// `count`/`sum`/`min`/`max` combination. Merging histograms recorded
    /// from disjoint streams yields the same buckets (and therefore the
    /// same quantiles) as recording the concatenated stream.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        // Empty histograms carry the +inf/-inf identity elements, so the
        // fold is correct without special-casing.
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    /// Condensed readout used by snapshots and reports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.5),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

/// `count`/`sum`/`p50`/`p95`/`p99`/`p999`/`max` readout of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Mean observation.
    pub mean: f64,
    /// Exact minimum.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
    /// Approximate 99.9th percentile.
    pub p999: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_geometric() {
        // Four buckets per octave: the boundary ratio is 2^(1/4).
        let ratio = Histogram::bucket_lower(5) / Histogram::bucket_lower(4);
        assert!((ratio - 2f64.powf(0.25)).abs() < 1e-12);
        // Doubling a value advances exactly SUB_BUCKETS buckets.
        let i = Histogram::bucket_index(0.001);
        let j = Histogram::bucket_index(0.002);
        assert_eq!(j - i, 4);
        // Values sit inside their bucket's [lower, upper) range.
        for v in [1e-9, 3.7e-4, 0.5, 1.0, 123.456, 9e8] {
            let b = Histogram::bucket_index(v);
            assert!(Histogram::bucket_lower(b) <= v * (1.0 + 1e-12), "{v}");
            assert!(v < Histogram::bucket_upper(b) * (1.0 + 1e-12), "{v}");
        }
    }

    #[test]
    fn edge_values_clamp_to_edge_buckets() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-1.0), 0);
        assert_eq!(Histogram::bucket_index(1e-300), 0);
        assert_eq!(Histogram::bucket_index(1e300), NUM_BUCKETS - 1);
    }

    #[test]
    fn exact_stats_and_ignored_nonfinite() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 6.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 3.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_within_bucket_tolerance() {
        let mut h = Histogram::new();
        // 1..=1000 milliseconds, uniformly.
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3);
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        // True p50 = 0.5, p95 = 0.95; bucket resolution is ~9%.
        assert!((p50 - 0.5).abs() / 0.5 < 0.10, "p50 {p50}");
        assert!((p95 - 0.95).abs() / 0.95 < 0.10, "p95 {p95}");
        // Quantiles never escape the exact envelope.
        assert!(h.quantile(0.0) >= h.min());
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn interpolated_quantiles_are_tight_on_uniform_data() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3);
        }
        // Linear interpolation should land well inside the ~9% bucket
        // bound for a uniform stream.
        for (q, want) in [(0.5, 0.5), (0.95, 0.95), (0.99, 0.99), (0.999, 0.999)] {
            let got = h.quantile(q);
            assert!(
                (got - want).abs() / want < 0.03,
                "q={q}: got {got}, want {want}"
            );
        }
        let s = h.summary();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.p999);
        assert!(s.p999 <= s.max);
    }

    #[test]
    fn merge_matches_concatenated_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        // Dyadic values keep the sums exactly associative, so the merged
        // summary can be compared bit-for-bit against the concatenation.
        for i in 0..500u64 {
            let v = (i % 64) as f64 * 0.25 + 0.25;
            a.record(v);
            both.record(v);
        }
        for i in 0..300u64 {
            let v = (i % 97) as f64 * 0.5 + 4.0;
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), both.summary());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(2.0);
        h.record(8.0);
        let before = h.summary();
        h.merge(&Histogram::new());
        assert_eq!(h.summary(), before);

        let mut empty = Histogram::new();
        empty.merge(&h);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn single_observation_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(0.125);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 0.125);
        }
    }

    #[test]
    fn empty_histogram_is_nan() {
        let h = Histogram::new();
        assert!(h.quantile(0.5).is_nan());
        assert!(h.mean().is_nan());
        assert_eq!(h.count(), 0);
    }
}
