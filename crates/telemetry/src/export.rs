//! Snapshot serialization: Prometheus text exposition and JSON.
//!
//! Both formats are hand-written (the workspace has no serde) and both
//! carry the full [`Snapshot`]: counters, gauges, histogram summaries with
//! p50/p95/p99/p999, and span timings. JSON round-trips through
//! [`Snapshot::from_json`], which is what the `ibrar-top` dashboard uses
//! to poll a running server.

use crate::histogram::HistogramSummary;
use crate::json::{self, Json};
use crate::recorder::Snapshot;
use std::fmt::Write as _;

/// Maps a metric name to the Prometheus exposition charset
/// (`[a-zA-Z0-9_:]`, no leading digit): dots, slashes, dashes and any
/// other byte become `_`, and an `ibrar_` prefix namespaces the family.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("ibrar_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_value(v: f64, out: &mut String) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn prom_summary(name: &str, h: &HistogramSummary, out: &mut String) {
    let base = prometheus_name(name);
    let _ = writeln!(out, "# TYPE {base} summary");
    for (q, v) in [
        ("0.5", h.p50),
        ("0.95", h.p95),
        ("0.99", h.p99),
        ("0.999", h.p999),
    ] {
        let _ = write!(out, "{base}{{quantile=\"{q}\"}} ");
        prom_value(v, out);
        out.push('\n');
    }
    let _ = write!(out, "{base}_sum ");
    prom_value(h.sum, out);
    out.push('\n');
    let _ = writeln!(out, "{base}_count {}", h.count);
    let _ = write!(out, "{base}_min ");
    prom_value(h.min, out);
    out.push('\n');
    let _ = write!(out, "{base}_max ");
    prom_value(h.max, out);
    out.push('\n');
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): counters as `counter` families, gauges as `gauge`
    /// families, histograms and spans as `summary` families with
    /// p50/p95/p99/p999 quantile lines plus `_sum`/`_count`/`_min`/`_max`.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let base = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {base} counter");
            let _ = writeln!(out, "{base} {v}");
        }
        for (name, v) in &self.gauges {
            let base = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {base} gauge");
            let _ = write!(out, "{base} ");
            prom_value(*v, &mut out);
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            prom_summary(name, h, &mut out);
        }
        for (path, h) in &self.spans {
            prom_summary(&format!("span.{path}"), h, &mut out);
        }
        out
    }

    /// Serializes the full snapshot as one JSON object
    /// (`{"counters":{...},"gauges":{...},"histograms":{...},"spans":{...}}`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(name, &mut out);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(name, &mut out);
            out.push(':');
            json::write_f64(*v, &mut out);
        }
        out.push_str("},\"histograms\":{");
        write_summaries(&self.histograms, &mut out);
        out.push_str("},\"spans\":{");
        write_summaries(&self.spans, &mut out);
        out.push_str("}}");
        out
    }

    /// Parses a snapshot previously serialized with [`Snapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural or syntax problem.
    pub fn from_json(s: &str) -> Result<Snapshot, String> {
        let v = Json::parse(s)?;
        let obj = |key: &str| -> Result<&[(String, Json)], String> {
            match v.get(key) {
                Some(Json::Obj(fields)) => Ok(fields),
                _ => Err(format!("missing object field {key:?}")),
            }
        };
        let mut counters = Vec::new();
        for (name, val) in obj("counters")? {
            let n = val.as_f64().ok_or_else(|| format!("counter {name:?}"))?;
            counters.push((name.clone(), n as u64));
        }
        let mut gauges = Vec::new();
        for (name, val) in obj("gauges")? {
            gauges.push((name.clone(), val.as_f64().unwrap_or(f64::NAN)));
        }
        let histograms = parse_summaries(obj("histograms")?)?;
        let spans = parse_summaries(obj("spans")?)?;
        Ok(Snapshot {
            counters,
            gauges,
            histograms,
            spans,
        })
    }
}

fn write_summaries(items: &[(String, HistogramSummary)], out: &mut String) {
    for (i, (name, h)) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_string(name, out);
        let _ = write!(out, ":{{\"count\":{},\"sum\":", h.count);
        json::write_f64(h.sum, out);
        for (key, v) in [
            ("mean", h.mean),
            ("min", h.min),
            ("max", h.max),
            ("p50", h.p50),
            ("p95", h.p95),
            ("p99", h.p99),
            ("p999", h.p999),
        ] {
            let _ = write!(out, ",\"{key}\":");
            json::write_f64(v, out);
        }
        out.push('}');
    }
}

fn parse_summaries(fields: &[(String, Json)]) -> Result<Vec<(String, HistogramSummary)>, String> {
    let mut out = Vec::with_capacity(fields.len());
    for (name, val) in fields {
        let num = |key: &str| val.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
        out.push((
            name.clone(),
            HistogramSummary {
                count: val
                    .get("count")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("summary {name:?} lacks count"))?
                    as u64,
                sum: num("sum"),
                mean: num("mean"),
                min: num("min"),
                max: num("max"),
                p50: num("p50"),
                p95: num("p95"),
                p99: num("p99"),
                p999: num("p999"),
            },
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_snapshot() -> Snapshot {
        let r = Recorder::new_enabled();
        r.counter("serve.requests", 7);
        r.gauge("serve.queue_depth", 3.0);
        for i in 1..=100 {
            r.observe("serve.stage.queue_ms", i as f64 * 0.1);
        }
        {
            let _s = r.span("serve.batch");
        }
        r.snapshot()
    }

    #[test]
    fn prometheus_text_has_all_families() {
        let text = sample_snapshot().prometheus_text();
        assert!(text.contains("# TYPE ibrar_serve_requests counter"));
        assert!(text.contains("ibrar_serve_requests 7"));
        assert!(text.contains("# TYPE ibrar_serve_queue_depth gauge"));
        assert!(text.contains("# TYPE ibrar_serve_stage_queue_ms summary"));
        assert!(text.contains("ibrar_serve_stage_queue_ms{quantile=\"0.999\"}"));
        assert!(text.contains("ibrar_serve_stage_queue_ms_count 100"));
        assert!(text.contains("# TYPE ibrar_span_serve_batch summary"));
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect(line);
            assert!(!name.is_empty() && !value.is_empty(), "{line}");
            if !matches!(value, "NaN" | "+Inf" | "-Inf") {
                value.parse::<f64>().expect(line);
            }
        }
    }

    #[test]
    fn json_round_trips() {
        let snap = sample_snapshot();
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed.counters, snap.counters);
        assert_eq!(parsed.gauges, snap.gauges);
        assert_eq!(parsed.histograms, snap.histograms);
        assert_eq!(parsed.spans.len(), snap.spans.len());
        assert_eq!(parsed.spans[0].0, "serve.batch");
        assert_eq!(parsed.spans[0].1.count, 1);
    }

    #[test]
    fn name_sanitization() {
        assert_eq!(
            prometheus_name("serve.stage.queue_ms"),
            "ibrar_serve_stage_queue_ms"
        );
        assert_eq!(prometheus_name("a/b-c"), "ibrar_a_b_c");
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json("not json").is_err());
    }
}
