//! Event levels and typed field values.

use std::fmt;

/// Event severity, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-iteration detail (PGD steps, kernel timings).
    Trace = 0,
    /// Per-batch detail.
    Debug = 1,
    /// Per-epoch / per-attack summaries.
    Info = 2,
    /// Recoverable anomalies (NaN losses, clamped inputs).
    Warn = 3,
    /// Failures surfaced to the caller anyway.
    Error = 4,
}

impl Level {
    /// Lower-case name used by both sinks.
    pub fn name(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses `trace|debug|info|warn|error` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed event-field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (epochs, counts, layer indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (losses, accuracies, HSIC terms, seconds).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form string (method names, attack names).
    Str(String),
}

impl FieldValue {
    /// Serializes the value as a JSON fragment into `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => crate::json::write_f64(*v, out),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(s) => crate::json::write_string(s, out),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.6}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A named field, as passed to [`crate::event`].
pub type Field<'a> = (&'a str, FieldValue);

macro_rules! from_impl {
    ($t:ty, $variant:ident, $conv:expr) => {
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant($conv(v))
            }
        }
    };
}

from_impl!(u64, U64, |v| v);
from_impl!(u32, U64, |v| v as u64);
from_impl!(usize, U64, |v| v as u64);
from_impl!(i64, I64, |v| v);
from_impl!(i32, I64, |v| v as i64);
from_impl!(f64, F64, |v| v);
from_impl!(f32, F64, |v: f32| v as f64);
from_impl!(bool, Bool, |v| v);
from_impl!(String, Str, |v| v);

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_parse() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-2i32), FieldValue::I64(-2));
        assert_eq!(FieldValue::from(0.5f32), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
    }

    #[test]
    fn json_fragments() {
        let mut out = String::new();
        FieldValue::from("a\"b").write_json(&mut out);
        assert_eq!(out, "\"a\\\"b\"");
        out.clear();
        FieldValue::F64(f64::NAN).write_json(&mut out);
        assert_eq!(out, "null");
    }
}
