//! Property-based pin: folding one histogram into another is equivalent to
//! recording the concatenated observation stream.
//!
//! `count`, `min`, `max`, and every quantile are *exactly* equal — the
//! first three combine losslessly and quantiles are pure functions of the
//! (integer) bucket counts clamped to the exact envelope. Only `sum` (and
//! therefore `mean`) is compared with a tolerance: the merge adds the
//! other histogram's total in one operation while the concatenated stream
//! accumulates value by value, and float addition is not associative.

use ibrar_telemetry::Histogram;
use proptest::prelude::*;

fn exact(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a == b
}

fn approx(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_matches_concatenated_stream(
        xs in proptest::collection::vec(1e-6f64..1e6, 0..200),
        ys in proptest::collection::vec(1e-6f64..1e6, 0..200),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &v in &xs {
            a.record(v);
            both.record(v);
        }
        for &v in &ys {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        let merged = a.summary();
        let concat = both.summary();

        prop_assert_eq!(merged.count, concat.count);
        prop_assert!(exact(merged.min, concat.min), "min {} vs {}", merged.min, concat.min);
        prop_assert!(exact(merged.max, concat.max), "max {} vs {}", merged.max, concat.max);
        for (q, m, c) in [
            (0.5, merged.p50, concat.p50),
            (0.95, merged.p95, concat.p95),
            (0.99, merged.p99, concat.p99),
            (0.999, merged.p999, concat.p999),
        ] {
            prop_assert!(exact(m, c), "p{q}: {m} vs {c}");
        }
        prop_assert!(approx(merged.sum, concat.sum), "sum {} vs {}", merged.sum, concat.sum);
        prop_assert!(approx(merged.mean, concat.mean), "mean {} vs {}", merged.mean, concat.mean);
    }

    #[test]
    fn merge_is_commutative_on_buckets(
        xs in proptest::collection::vec(1e-3f64..1e3, 1..100),
        ys in proptest::collection::vec(1e-3f64..1e3, 1..100),
    ) {
        let mut a1 = Histogram::new();
        let mut b1 = Histogram::new();
        for &v in &xs { a1.record(v); }
        for &v in &ys { b1.record(v); }
        let mut a2 = b1.clone();
        let b2 = a1.clone();
        a1.merge(&b1);
        a2.merge(&b2);
        let l = a1.summary();
        let r = a2.summary();
        prop_assert_eq!(l.count, r.count);
        prop_assert!(exact(l.p50, r.p50) && exact(l.p99, r.p99));
        prop_assert!(exact(l.min, r.min) && exact(l.max, r.max));
    }
}
