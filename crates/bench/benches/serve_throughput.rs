//! Criterion comparison of the serving engine's two extremes: a
//! per-request engine (`max_batch = 1`, every image is its own forward)
//! versus a coalescing engine (`max_batch = 8`). Both process the same
//! 32-image wave; the batched engine amortises queue/dispatch overhead and
//! lets the row-parallel conv/matmul kernels spread a batch across cores,
//! so on a multi-core machine it should clear 2x the per-request
//! throughput (the ISSUE acceptance bar for `ibrar-serve`).
//!
//! A third benchmark times the bare single-image forward on the caller's
//! thread, isolating how much the engine machinery itself costs.

use criterion::{criterion_group, criterion_main, Criterion};
use ibrar_nn::{ImageModel, Mode, Session, VggConfig, VggMini};
use ibrar_serve::{BatchEngine, EngineConfig};
use ibrar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const WAVE: usize = 32;

fn model() -> Arc<dyn ImageModel> {
    let mut rng = StdRng::seed_from_u64(42);
    Arc::new(VggMini::new(VggConfig::tiny(10), &mut rng).unwrap())
}

fn images() -> Vec<Tensor> {
    (0..WAVE)
        .map(|i| {
            Tensor::from_fn(&[3, 16, 16], |idx| {
                ((idx[0] * 29 + idx[1] * 5 + idx[2] * 11 + i * 3) % 23) as f32 / 23.0
            })
        })
        .collect()
}

fn engine(model: &Arc<dyn ImageModel>, max_batch: usize) -> BatchEngine {
    BatchEngine::new(
        Arc::clone(model),
        EngineConfig {
            max_batch,
            max_wait: Duration::from_millis(5),
            queue_capacity: 2 * WAVE,
            workers: 1,
        },
    )
    .unwrap()
}

/// Submit the whole wave, then wait for every reply.
fn drive_wave(engine: &BatchEngine, images: &[Tensor]) {
    let pending: Vec<_> = images
        .iter()
        .map(|img| engine.submit(img.clone(), None).unwrap())
        .collect();
    for p in pending {
        black_box(p.wait().unwrap());
    }
}

fn bench_serve_throughput(c: &mut Criterion) {
    let model = model();
    let images = images();

    let per_request = engine(&model, 1);
    drive_wave(&per_request, &images); // warm-up: threads spawned, caches hot
    c.bench_function("serve_wave32_per_request", |b| {
        b.iter(|| drive_wave(&per_request, &images))
    });
    per_request.shutdown();

    let batched = engine(&model, 8);
    drive_wave(&batched, &images);
    c.bench_function("serve_wave32_batched8", |b| {
        b.iter(|| drive_wave(&batched, &images))
    });
    batched.shutdown();
}

fn bench_bare_forward(c: &mut Criterion) {
    let model = model();
    let images = images();
    c.bench_function("serve_wave32_bare_forward", |b| {
        b.iter(|| {
            for img in &images {
                let tape = ibrar_autograd::Tape::new();
                let sess = Session::new(&tape);
                let x = tape.leaf(Tensor::stack(std::slice::from_ref(img)).unwrap());
                black_box(model.forward(&sess, x, Mode::Eval).unwrap());
            }
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_serve_throughput, bench_bare_forward
}
criterion_main!(benches);
