//! Criterion benchmarks, one group per paper table/figure, timing the
//! characteristic inner kernel of each experiment (the full regeneration
//! lives in the `src/bin` binaries — see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use ibrar::{
    compute_channel_mask, AdaptiveIbObjective, IbLoss, IbLossConfig, LayerPolicy, MaskConfig,
    TrainMethod, Trainer, TrainerConfig, VibBaseline,
};
use ibrar_analysis::{tendency_table, tsne, TsneConfig};
use ibrar_attacks::{Attack, Fgsm, Pgd};
use ibrar_data::{SynthVision, SynthVisionConfig};
use ibrar_infotheory::{BinningConfig, InfoPlane};
use ibrar_nn::{ImageModel, Mode, Session, VggConfig, VggMini};
use ibrar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

struct Fixture {
    model: VggMini,
    images: Tensor,
    labels: Vec<usize>,
    data: SynthVision,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(0);
    let model = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
    let data =
        SynthVision::generate(&SynthVisionConfig::cifar10_like().with_sizes(64, 32), 0).unwrap();
    let batch = data.train.take(16).unwrap().as_batch();
    Fixture {
        model,
        images: batch.images,
        labels: batch.labels,
        data,
    }
}

/// Tables 1–2 inner kernel: one PGD-AT + IB-RAR training step.
fn bench_table1_2(c: &mut Criterion) {
    let f = fixture();
    let train = f.data.train.take(16).unwrap();
    let test = f.data.test.take(16).unwrap();
    c.bench_function("table1_pgd_at_ibrar_step", |b| {
        b.iter(|| {
            let cfg = TrainerConfig::new(TrainMethod::PgdAt {
                eps: 8.0 / 255.0,
                alpha: 2.0 / 255.0,
                steps: 2,
            })
            .with_epochs(1)
            .with_batch_size(16)
            .with_ib(IbLossConfig::paper_vgg());
            black_box(Trainer::new(cfg).train(&f.model, &train, &test).unwrap());
        })
    });
}

/// Table 3 inner kernel: a single-layer IB regularizer forward+backward.
fn bench_table3(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("table3_single_layer_ib_step", |b| {
        b.iter(|| {
            let tape = ibrar_autograd::Tape::new();
            let sess = Session::new(&tape);
            let x = tape.leaf(f.images.clone());
            let out = f.model.forward(&sess, x, Mode::Train).unwrap();
            let cfg = IbLossConfig::paper_vgg().with_policy(LayerPolicy::Single(4));
            let reg = IbLoss::regularizer(&sess, x, &out.hidden, &f.labels, 10, &cfg).unwrap();
            let loss = out
                .logits
                .cross_entropy(&f.labels)
                .unwrap()
                .add(reg)
                .unwrap();
            sess.backward(loss).unwrap();
            for p in f.model.params() {
                p.zero_grad();
            }
        })
    });
}

/// Table 4 inner kernel: the Eq. 3 channel-mask computation.
fn bench_table4(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("table4_channel_mask", |b| {
        b.iter(|| {
            black_box(
                compute_channel_mask(&f.model, &f.data.train, &MaskConfig::default()).unwrap(),
            )
        })
    });
}

/// Table 5 inner kernel: tendency table over one attacked batch.
fn bench_table5(c: &mut Criterion) {
    let f = fixture();
    let names: Vec<String> = (0..10).map(|i| f.data.class_name(i)).collect();
    let subset = f.data.test.take(16).unwrap();
    c.bench_function("table5_tendency", |b| {
        b.iter(|| {
            black_box(
                tendency_table(&f.model, &Fgsm::new(8.0 / 255.0), &subset, &names, 4, 16).unwrap(),
            )
        })
    });
}

/// Table 6 inner kernel: one adaptive-PGD perturbation.
fn bench_table6(c: &mut Criterion) {
    let f = fixture();
    let attack = Pgd::new(8.0 / 255.0, 2.0 / 255.0, 3).with_objective(Arc::new(
        AdaptiveIbObjective::new(IbLossConfig::paper_vgg(), 10),
    ));
    c.bench_function("table6_adaptive_pgd", |b| {
        b.iter(|| black_box(attack.perturb(&f.model, &f.images, &f.labels).unwrap()))
    });
}

/// Figure 2 inner kernel: a VIB forward/backward step.
fn bench_fig2(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let inner = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
    let vib = VibBaseline::new(inner, 64, 32, 0.01, &mut rng).unwrap();
    let f = fixture();
    c.bench_function("fig2_vib_step", |b| {
        b.iter(|| {
            let tape = ibrar_autograd::Tape::new();
            let sess = Session::new(&tape);
            let x = tape.leaf(f.images.clone());
            let out = vib.forward(&sess, x, Mode::Train).unwrap();
            let loss = out
                .logits
                .cross_entropy(&f.labels)
                .unwrap()
                .add(out.aux_loss.unwrap())
                .unwrap();
            sess.backward(loss).unwrap();
            for p in vib.params() {
                p.zero_grad();
            }
        })
    });
}

/// Figure 3 inner kernel: t-SNE embedding of 48 feature vectors.
fn bench_fig3(c: &mut Criterion) {
    let features = Tensor::from_fn(&[48, 64], |i| {
        ((i[0] / 8) * 50 + (i[0] * 13 + i[1] * 7) % 23) as f32 * 0.05
    });
    let cfg = TsneConfig {
        iterations: 60,
        perplexity: 8.0,
        ..TsneConfig::default()
    };
    c.bench_function("fig3_tsne_48pts", |b| {
        b.iter(|| black_box(tsne(&features, &cfg).unwrap()))
    });
}

/// Figure 4 inner kernel: one MART training epoch (tiny set).
fn bench_fig4(c: &mut Criterion) {
    let f = fixture();
    let train = f.data.train.take(16).unwrap();
    let test = f.data.test.take(16).unwrap();
    c.bench_function("fig4_mart_epoch", |b| {
        b.iter(|| {
            let cfg = TrainerConfig::new(TrainMethod::Mart {
                beta: 5.0,
                eps: 8.0 / 255.0,
                alpha: 2.0 / 255.0,
                steps: 2,
            })
            .with_epochs(1)
            .with_batch_size(16);
            black_box(Trainer::new(cfg).train(&f.model, &train, &test).unwrap());
        })
    });
}

/// Figure 5 inner kernel: one information-plane recording.
fn bench_fig5(c: &mut Criterion) {
    let f = fixture();
    let tape = ibrar_autograd::Tape::new();
    let sess = Session::new(&tape);
    let x = tape.leaf(f.images.clone());
    let out = f.model.forward(&sess, x, Mode::Eval).unwrap();
    let t4 = out.hidden[3].var.value();
    c.bench_function("fig5_info_plane_record", |b| {
        b.iter(|| {
            let mut plane = InfoPlane::new(10, BinningConfig::new(12));
            black_box(plane.record(0, &t4, &f.labels).unwrap())
        })
    });
}

/// Figure 6 inner kernel: IB regularizer with a swept β.
fn bench_fig6(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("fig6_ib_regularizer_beta_sweep_point", |b| {
        b.iter(|| {
            let tape = ibrar_autograd::Tape::new();
            let sess = Session::new(&tape);
            let x = tape.leaf(f.images.clone());
            let out = f.model.forward(&sess, x, Mode::Eval).unwrap();
            let cfg = IbLossConfig::new(0.05, 0.5).with_policy(LayerPolicy::Robust);
            black_box(
                IbLoss::regularizer(&sess, x, &out.hidden, &f.labels, 10, &cfg)
                    .unwrap()
                    .value(),
            )
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_table1_2, bench_table3, bench_table4, bench_table5, bench_table6,
        bench_fig2, bench_fig3, bench_fig4, bench_fig5, bench_fig6
}
criterion_main!(benches);
