//! Criterion micro-benchmarks of the substrate kernels: matmul, im2col
//! convolution, HSIC estimation (both kernel-width strategies — the
//! DESIGN.md ablation), pooling, a full model forward/backward, and the
//! overhead of disabled telemetry instrumentation (which must stay in the
//! few-nanosecond range so hot loops can be instrumented unconditionally).

use criterion::{criterion_group, criterion_main, Criterion};
use ibrar_autograd::Tape;
use ibrar_infotheory::{hsic, median_sigma, one_hot};
use ibrar_nn::{ImageModel, Mode, Session, VggConfig, VggMini};
use ibrar_tensor::{im2col, Conv2dSpec, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let a = Tensor::from_fn(&[128, 128], |i| ((i[0] * 7 + i[1]) % 13) as f32 * 0.1);
    let b = Tensor::from_fn(&[128, 128], |i| ((i[0] + 3 * i[1]) % 11) as f32 * 0.1);
    c.bench_function("matmul_128", |bench| {
        bench.iter(|| black_box(a.matmul(&b).unwrap()))
    });
    c.bench_function("matmul_nt_128", |bench| {
        bench.iter(|| black_box(a.matmul_nt(&b).unwrap()))
    });
}

fn bench_conv(c: &mut Criterion) {
    let x = Tensor::from_fn(&[8, 16, 16, 16], |i| {
        ((i[0] + i[1] + i[2] + i[3]) % 7) as f32
    });
    let spec = Conv2dSpec::new(16, 32, 3, 1, 1);
    c.bench_function("im2col_8x16x16x16", |bench| {
        bench.iter(|| black_box(im2col(&x, &spec).unwrap()))
    });
    let w = Tensor::from_fn(&[32, 16, 3, 3], |i| (i[0] + i[1]) as f32 * 0.01);
    c.bench_function("conv2d_fwd_bwd", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let xv = tape.var(x.clone());
            let wv = tape.var(w.clone());
            let loss = xv
                .conv2d(wv, None, spec)
                .unwrap()
                .square()
                .unwrap()
                .sum()
                .unwrap();
            black_box(tape.backward(loss).unwrap());
        })
    });
}

fn bench_hsic(c: &mut Criterion) {
    // Ablation: median-heuristic sigma vs fixed sigma.
    let x = Tensor::from_fn(&[32, 64], |i| ((i[0] * 13 + i[1] * 7) % 17) as f32 * 0.1);
    let y = one_hot(&(0..32).map(|i| i % 10).collect::<Vec<_>>(), 10).unwrap();
    c.bench_function("hsic_fixed_sigma", |bench| {
        bench.iter(|| black_box(hsic(&x, &y, 1.0, 1.0).unwrap()))
    });
    c.bench_function("hsic_median_sigma", |bench| {
        bench.iter(|| {
            let sx = median_sigma(&x);
            let sy = median_sigma(&y);
            black_box(hsic(&x, &y, sx, sy).unwrap())
        })
    });
    c.bench_function("hsic_backward", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let xv = tape.var(x.clone());
            let yv = tape.leaf(y.clone());
            let loss = ibrar_infotheory::hsic_var(xv, yv, 1.0, 1.0).unwrap();
            black_box(tape.backward(loss).unwrap());
        })
    });
}

fn bench_model_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let model = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
    let x = Tensor::from_fn(&[16, 3, 16, 16], |i| {
        ((i[0] + i[1] + i[3]) % 9) as f32 / 9.0
    });
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();
    c.bench_function("vgg_forward_eval", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let sess = Session::new(&tape);
            let xv = tape.leaf(x.clone());
            black_box(model.forward(&sess, xv, Mode::Eval).unwrap());
        })
    });
    c.bench_function("vgg_train_step_ce", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let sess = Session::new(&tape);
            let xv = tape.leaf(x.clone());
            let out = model.forward(&sess, xv, Mode::Train).unwrap();
            let loss = out.logits.cross_entropy(&labels).unwrap();
            sess.backward(loss).unwrap();
            for p in model.params() {
                p.zero_grad();
            }
        })
    });
}

fn bench_parallel(c: &mut Criterion) {
    // Serial-vs-parallel comparisons for every loop split by
    // `ibrar_tensor::parallel`. `with_threads` pins the worker count, so
    // "par4" rows show the speedup on a ≥4-core machine and match "serial"
    // bitwise everywhere (the determinism guarantee).
    use ibrar_attacks::{robust_accuracy, Fgsm};
    use ibrar_data::{SynthVision, SynthVisionConfig};
    use ibrar_tensor::parallel;

    let x = Tensor::from_fn(&[16, 8, 16, 16], |i| {
        ((i[0] + i[1] + i[2] + i[3]) % 7) as f32
    });
    let spec = Conv2dSpec::new(8, 16, 3, 1, 1);
    let w = Tensor::from_fn(&[16, 8, 3, 3], |i| (i[0] + i[1]) as f32 * 0.01);
    let conv_fwd = |threads: usize| {
        let _g = parallel::with_threads(threads);
        let tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let wv = tape.leaf(w.clone());
        black_box(xv.conv2d(wv, None, spec).unwrap().value())
    };
    c.bench_function("conv2d_fwd_serial", |bench| bench.iter(|| conv_fwd(1)));
    c.bench_function("conv2d_fwd_par4", |bench| bench.iter(|| conv_fwd(4)));

    let feats = Tensor::from_fn(&[64, 128], |i| ((i[0] * 13 + i[1] * 7) % 17) as f32 * 0.1);
    let sigma = |threads: usize| {
        let _g = parallel::with_threads(threads);
        black_box(median_sigma(&feats))
    };
    c.bench_function("median_sigma_serial", |bench| bench.iter(|| sigma(1)));
    c.bench_function("median_sigma_par4", |bench| bench.iter(|| sigma(4)));

    let labels = one_hot(&(0..64).map(|i| i % 10).collect::<Vec<_>>(), 10).unwrap();
    let hsic_run = |threads: usize| {
        let _g = parallel::with_threads(threads);
        black_box(hsic(&feats, &labels, 1.0, 1.0).unwrap())
    };
    c.bench_function("hsic_serial", |bench| bench.iter(|| hsic_run(1)));
    c.bench_function("hsic_par4", |bench| bench.iter(|| hsic_run(4)));

    let mut rng = StdRng::seed_from_u64(0);
    let model = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
    let test = SynthVision::generate(&SynthVisionConfig::cifar10_like().with_sizes(40, 32), 1)
        .unwrap()
        .test;
    let attack = Fgsm::new(8.0 / 255.0);
    let robust = |threads: usize| {
        let _g = parallel::with_threads(threads);
        black_box(robust_accuracy(&model, &attack, &test, 8).unwrap())
    };
    c.bench_function("robust_accuracy_serial", |bench| bench.iter(|| robust(1)));
    c.bench_function("robust_accuracy_par4", |bench| bench.iter(|| robust(4)));
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // The global recorder is disabled by default in this process (no
    // IBRAR_TELEMETRY in the bench environment), so these measure the
    // cost instrumented code pays when observability is off: one relaxed
    // atomic load per call. A local enabled recorder gives the "on" cost
    // for comparison.
    assert!(
        !ibrar_telemetry::enabled(),
        "run this bench without IBRAR_TELEMETRY set"
    );
    c.bench_function("telemetry_disabled_counter", |bench| {
        bench.iter(|| ibrar_telemetry::counter(black_box("bench.counter"), 1))
    });
    c.bench_function("telemetry_disabled_span", |bench| {
        bench.iter(|| {
            let _s = ibrar_telemetry::span!(black_box("bench.span"));
        })
    });
    let rec = ibrar_telemetry::Recorder::new_enabled();
    c.bench_function("telemetry_enabled_counter", |bench| {
        bench.iter(|| rec.counter(black_box("bench.counter"), 1))
    });
    c.bench_function("telemetry_enabled_span", |bench| {
        bench.iter(|| {
            let _s = rec.span(black_box("bench.span"));
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_matmul, bench_conv, bench_hsic, bench_model_step, bench_parallel, bench_telemetry_overhead
}
criterion_main!(benches);
