//! Experiment sizing.

/// How big an experiment run is.
///
/// Parsed from CLI args (`--quick`, `--full`, `--train N`, `--epochs N`,
/// `--seeds N`) with environment-variable fallbacks (`IBRAR_SCALE`,
/// `IBRAR_EPOCHS`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Training-set size.
    pub train: usize,
    /// Test-set size.
    pub test: usize,
    /// Test samples used for adversarial evaluation.
    pub eval: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Inner PGD steps during adversarial training.
    pub at_steps: usize,
    /// CW optimization steps at evaluation time.
    pub cw_steps: usize,
    /// Number of seeds to average.
    pub seeds: usize,
    /// Mini-batch size.
    pub batch: usize,
}

impl Scale {
    /// Smoke-test scale: seconds per experiment.
    pub fn quick() -> Self {
        Scale {
            train: 192,
            test: 96,
            eval: 48,
            epochs: 2,
            at_steps: 2,
            cw_steps: 8,
            seeds: 1,
            batch: 32,
        }
    }

    /// Default laptop scale: minutes per experiment.
    pub fn default_scale() -> Self {
        Scale {
            train: 512,
            test: 192,
            eval: 64,
            epochs: 10,
            at_steps: 4,
            cw_steps: 20,
            seeds: 1,
            batch: 32,
        }
    }

    /// Full scale with seed averaging (the paper averages 3 runs).
    pub fn full() -> Self {
        Scale {
            train: 1536,
            test: 384,
            eval: 160,
            epochs: 15,
            at_steps: 7,
            cw_steps: 40,
            seeds: 3,
            batch: 32,
        }
    }

    /// Parses `std::env::args` plus environment fallbacks.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::parse(&args, |k| std::env::var(k).ok())
    }

    /// Pure parser (tested without touching the real environment).
    pub fn parse(args: &[String], env: impl Fn(&str) -> Option<String>) -> Self {
        let mut scale = match env("IBRAR_SCALE").as_deref() {
            Some("quick") => Scale::quick(),
            Some("full") => Scale::full(),
            _ => Scale::default_scale(),
        };
        if args.iter().any(|a| a == "--quick") {
            scale = Scale::quick();
        }
        if args.iter().any(|a| a == "--full") {
            scale = Scale::full();
        }
        let get = |flag: &str, env_key: &str| -> Option<usize> {
            if let Some(pos) = args.iter().position(|a| a == flag) {
                if let Some(v) = args.get(pos + 1).and_then(|v| v.parse().ok()) {
                    return Some(v);
                }
            }
            env(env_key).and_then(|v| v.parse().ok())
        };
        if let Some(v) = get("--train", "IBRAR_TRAIN") {
            scale.train = v.max(16);
        }
        if let Some(v) = get("--test", "IBRAR_TEST") {
            scale.test = v.max(16);
            scale.eval = scale.eval.min(scale.test);
        }
        if let Some(v) = get("--epochs", "IBRAR_EPOCHS") {
            scale.epochs = v.max(1);
        }
        if let Some(v) = get("--seeds", "IBRAR_SEEDS") {
            scale.seeds = v.max(1);
        }
        if let Some(v) = get("--eval", "IBRAR_EVAL") {
            scale.eval = v.max(8);
        }
        scale
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    #[test]
    fn default_without_flags() {
        let s = Scale::parse(&[], no_env);
        assert_eq!(s, Scale::default_scale());
    }

    #[test]
    fn quick_flag_wins() {
        let args = vec!["bin".to_string(), "--quick".to_string()];
        assert_eq!(Scale::parse(&args, no_env), Scale::quick());
    }

    #[test]
    fn explicit_overrides_apply() {
        let args: Vec<String> = ["bin", "--quick", "--epochs", "5", "--train", "64"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let s = Scale::parse(&args, no_env);
        assert_eq!(s.epochs, 5);
        assert_eq!(s.train, 64);
        assert_eq!(s.batch, Scale::quick().batch);
    }

    #[test]
    fn env_scale_respected() {
        let s = Scale::parse(&[], |k| (k == "IBRAR_SCALE").then(|| "full".to_string()));
        assert_eq!(s, Scale::full());
    }

    #[test]
    fn floors_enforced() {
        let args: Vec<String> = ["bin", "--epochs", "0", "--train", "1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let s = Scale::parse(&args, no_env);
        assert_eq!(s.epochs, 1);
        assert_eq!(s.train, 16);
    }
}
