//! Experiment harness for the IB-RAR reproduction.
//!
//! Every table and figure of the paper maps to a module under
//! [`experiments`] and a binary under `src/bin/` that prints the
//! paper-style rows (and writes them to `target/experiments/`). The
//! [`Scale`] type lets each binary run at `--quick` smoke-test scale, the
//! default laptop scale, or `--full` scale with seed averaging.

pub mod experiments;
mod harness;
mod scale;

pub use harness::{
    attack_row, attack_suite, eval_model, output_dir, run_binary, scaled_method, train_and_eval,
    write_output, Arch, EvalResult,
};
pub use scale::Scale;

/// Experiment-level result alias (boxed error for binary `main`s).
pub type ExpResult<T> = Result<T, Box<dyn std::error::Error>>;
