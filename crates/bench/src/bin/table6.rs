//! Regenerates paper table6 (see EXPERIMENTS.md). Flags: --quick | --full |
//! --train N | --test N | --epochs N | --seeds N | --eval N.

fn main() -> ibrar_bench::ExpResult<()> {
    let scale = ibrar_bench::Scale::from_args();
    eprintln!("[table6] running at {scale:?}");
    let started = std::time::Instant::now();
    let out = ibrar_bench::experiments::table6::run(&scale)?;
    ibrar_bench::write_output("table6", &out);
    eprintln!("[table6] done in {:.1?}", started.elapsed());
    Ok(())
}
