//! Regenerates paper fig3 (see EXPERIMENTS.md). Flags: --quick | --full |
//! --train N | --test N | --epochs N | --seeds N | --eval N.

fn main() -> ibrar_bench::ExpResult<()> {
    let scale = ibrar_bench::Scale::from_args();
    eprintln!("[fig3] running at {scale:?}");
    let started = std::time::Instant::now();
    let out = ibrar_bench::experiments::fig3::run(&scale)?;
    ibrar_bench::write_output("fig3", &out);
    eprintln!("[fig3] done in {:.1?}", started.elapsed());
    Ok(())
}
