//! Regenerates paper fig4 (see EXPERIMENTS.md). Flags: --quick | --full |
//! --train N | --test N | --epochs N | --seeds N | --eval N.

fn main() -> ibrar_bench::ExpResult<()> {
    let scale = ibrar_bench::Scale::from_args();
    eprintln!("[fig4] running at {scale:?}");
    let started = std::time::Instant::now();
    let out = ibrar_bench::experiments::fig4::run(&scale)?;
    ibrar_bench::write_output("fig4", &out);
    eprintln!("[fig4] done in {:.1?}", started.elapsed());
    Ok(())
}
