//! Regenerates paper fig4 (see EXPERIMENTS.md). Flags: --quick | --full |
//! --train N | --test N | --epochs N | --seeds N | --eval N.
//!
//! Set `IBRAR_LOG` / `IBRAR_TELEMETRY` to capture telemetry (see README
//! "Observability"); a run manifest is written next to the output table.

fn main() -> ibrar_bench::ExpResult<()> {
    let scale = ibrar_bench::Scale::from_args();
    ibrar_bench::run_binary("fig4", &scale, ibrar_bench::experiments::fig4::run)
}
