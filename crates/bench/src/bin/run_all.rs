//! Regenerates every paper table and figure in sequence, writing each to
//! `target/experiments/<name>.txt`. Flags are shared with the individual
//! binaries (`--quick`, `--full`, `--epochs N`, ...).

fn main() -> ibrar_bench::ExpResult<()> {
    let scale = ibrar_bench::Scale::from_args();
    eprintln!("[run_all] running at {scale:?}");
    type Runner = fn(&ibrar_bench::Scale) -> ibrar_bench::ExpResult<String>;
    let experiments: Vec<(&str, Runner)> = vec![
        ("table1", ibrar_bench::experiments::table1::run),
        ("table2", ibrar_bench::experiments::table2::run),
        ("table3", ibrar_bench::experiments::table3::run),
        ("table4", ibrar_bench::experiments::table4::run),
        ("table5", ibrar_bench::experiments::table5::run),
        ("table6", ibrar_bench::experiments::table6::run),
        ("fig2", ibrar_bench::experiments::fig2::run),
        ("fig3", ibrar_bench::experiments::fig3::run),
        ("fig4", ibrar_bench::experiments::fig4::run),
        ("fig5", ibrar_bench::experiments::fig5::run),
        ("fig6", ibrar_bench::experiments::fig6::run),
    ];
    let total = std::time::Instant::now();
    for (name, run) in experiments {
        eprintln!("=== {name} ===");
        if let Err(e) = ibrar_bench::run_binary(name, &scale, run) {
            eprintln!("[{name}] FAILED: {e}");
        }
    }
    eprintln!("[run_all] total {:.1?}", total.elapsed());
    Ok(())
}
