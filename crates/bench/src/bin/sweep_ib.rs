//! Diagnostic: sweep the IB regularizer weights (α, β) for clean-data
//! training on `synth_cifar10` and report natural / PGD accuracy, to locate
//! the robustness regime on the synthetic substrate (complements the
//! paper-style β sweep of `fig6`, which runs under adversarial training).
//!
//! ```sh
//! cargo run --release -p ibrar-bench --bin sweep_ib
//! ```

use ibrar::{IbLossConfig, LayerPolicy, MaskConfig, TrainMethod, Trainer, TrainerConfig};
use ibrar_analysis::TextTable;
use ibrar_attacks::{clean_accuracy, robust_accuracy, Pgd};
use ibrar_bench::{Arch, ExpResult, Scale};
use ibrar_data::{SynthVision, SynthVisionConfig};

fn main() -> ExpResult<()> {
    let scale = Scale::from_args();
    ibrar_bench::run_binary("sweep_ib", &scale, run)
}

fn run(scale: &Scale) -> ExpResult<String> {
    let config = SynthVisionConfig::cifar10_like().with_sizes(scale.train, scale.test);
    let data = SynthVision::generate(&config, 7)?;
    let grid: Vec<(f32, f32)> = vec![
        (0.0, 0.0),
        (0.1, 0.01),
        (0.5, 0.05),
        (1.0, 0.1),
        (2.0, 0.2),
        (5.0, 0.5),
        (10.0, 1.0),
        (20.0, 2.0),
    ];
    let mut table = TextTable::new(vec!["alpha", "beta", "mask", "Natural %", "PGD^10 %"]);
    for (alpha, beta) in grid {
        for mask in [false, true] {
            let model = Arch::Vgg.build(10, 0)?;
            let mut cfg = TrainerConfig::new(TrainMethod::Standard)
                .with_epochs(scale.epochs)
                .with_batch_size(scale.batch);
            if alpha > 0.0 || beta > 0.0 {
                cfg = cfg.with_ib(IbLossConfig::new(alpha, beta).with_policy(LayerPolicy::Robust));
            }
            if mask {
                cfg = cfg.with_mask(MaskConfig::default());
            }
            Trainer::new(cfg).train(model.as_ref(), &data.train, &data.test)?;
            let natural = clean_accuracy(model.as_ref(), &data.test, 64)? * 100.0;
            let eval = data.test.take(scale.eval)?;
            let adv = robust_accuracy(model.as_ref(), &Pgd::paper_default(), &eval, 32)? * 100.0;
            table.row(vec![
                format!("{alpha}"),
                format!("{beta}"),
                mask.to_string(),
                format!("{natural:.2}"),
                format!("{adv:.2}"),
            ]);
        }
    }
    Ok(table.to_string())
}
