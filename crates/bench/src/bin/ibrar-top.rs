//! `ibrar-top` — live terminal dashboard for a running serve endpoint.
//!
//! Polls the server's admin opcodes (Health + Metrics/Json) over the
//! ordinary binary protocol — no HTTP, no extra dependency — and renders
//! QPS, queue depth, the batch-size distribution, per-stage latency
//! quantiles, and per-status counters in place:
//!
//! ```sh
//! cargo run --release --bin serve -- --listen 127.0.0.1:7878 &
//! cargo run --release --bin ibrar-top -- 127.0.0.1:7878
//! cargo run --release --bin ibrar-top -- 127.0.0.1:7878 --once   # one frame
//! cargo run --release --bin ibrar-top -- 127.0.0.1:7878 --flight # dump ring
//! ```
//!
//! QPS is the protocol-request counter delta between polls; everything else
//! comes straight out of the typed [`Snapshot`] the server serialized.

use ibrar_serve::{Client, HealthReport, MetricsFormat};
use ibrar_telemetry::{HistogramSummary, Snapshot};
use std::time::{Duration, Instant};

type DynResult<T> = Result<T, Box<dyn std::error::Error>>;

fn usage() -> ! {
    eprintln!(
        "usage: ibrar-top ADDR [--interval MS] [--once | --flight]\n\
         \n\
         ADDR           serve endpoint, e.g. 127.0.0.1:7878\n\
         --interval MS  polling period (default 1000)\n\
         --once         print a single frame and exit (no screen clearing)\n\
         --flight       dump the flight recorder (recent + SLO breaches) as JSON and exit"
    );
    std::process::exit(2);
}

/// One poll: health + full metrics snapshot.
struct Frame {
    health: HealthReport,
    snap: Snapshot,
    at: Instant,
}

fn poll(client: &mut Client) -> DynResult<Frame> {
    let health = client.health()?;
    let snap = Snapshot::from_json(&client.metrics(MetricsFormat::Json)?)?;
    Ok(Frame {
        health,
        snap,
        at: Instant::now(),
    })
}

fn fmt_ms(v: f64) -> String {
    if !v.is_finite() {
        "-".into()
    } else if v >= 100.0 {
        format!("{v:.0}ms")
    } else if v >= 1.0 {
        format!("{v:.2}ms")
    } else {
        format!("{:.0}µs", v * 1e3)
    }
}

fn stage_row(out: &mut String, name: &str, h: Option<&HistogramSummary>) {
    match h {
        Some(h) => out.push_str(&format!(
            "  {name:<10} {:>9} {:>9} {:>9} {:>9} {:>8}\n",
            fmt_ms(h.p50),
            fmt_ms(h.p99),
            fmt_ms(h.p999),
            fmt_ms(h.max),
            h.count
        )),
        None => out.push_str(&format!(
            "  {name:<10} {:>9} {:>9} {:>9} {:>9} {:>8}\n",
            "-", "-", "-", "-", 0
        )),
    }
}

fn render(addr: &str, frame: &Frame, prev: Option<&Frame>) -> String {
    let h = &frame.health;
    let s = &frame.snap;
    let requests = s.counter("serve.proto.requests").unwrap_or(0);
    let qps = prev
        .map(|p| {
            let dt = frame.at.duration_since(p.at).as_secs_f64().max(1e-9);
            let dr = requests.saturating_sub(p.snap.counter("serve.proto.requests").unwrap_or(0));
            dr as f64 / dt
        })
        .unwrap_or(f64::NAN);

    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "ibrar-top — {addr}   up {:.0}s   engines {}   queue depth {}\n",
        h.uptime_ms as f64 / 1e3,
        h.engines,
        h.queue_depth
    ));
    out.push_str(&format!(
        "requests {requests}   qps {}   inference {}   batches {}   slo breaches {}\n",
        if qps.is_nan() {
            "-".into()
        } else {
            format!("{qps:.1}")
        },
        s.counter("serve.requests").unwrap_or(0),
        s.counter("serve.batches").unwrap_or(0),
        s.counter("serve.slo_breaches").unwrap_or(0),
    ));
    out.push_str(&format!(
        "rejected: queue_full {}  deadline {}  proto errors {}\n\n",
        s.counter("serve.rejected.queue_full").unwrap_or(0),
        s.counter("serve.rejected.deadline").unwrap_or(0),
        s.counter("serve.proto.errors").unwrap_or(0),
    ));

    out.push_str(&format!(
        "  {:<10} {:>9} {:>9} {:>9} {:>9} {:>8}\n",
        "stage", "p50", "p99", "p999", "max", "count"
    ));
    for (label, name) in [
        ("queue", "serve.stage.queue_ms"),
        ("batch", "serve.stage.batch_ms"),
        ("forward", "serve.stage.forward_ms"),
        ("encode", "serve.stage.encode_ms"),
        ("request", "serve.request_ms"),
    ] {
        stage_row(&mut out, label, s.histogram(name));
    }

    if let Some(b) = s.histogram("serve.batch_size") {
        out.push_str(&format!(
            "\nbatch size: n={} mean={:.2} p50={:.1} p95={:.1} max={:.0}\n",
            b.count, b.mean, b.p50, b.p95, b.max
        ));
    }
    fleet_section(&mut out, s);
    out
}

/// Replica-fleet panel, present when the server routes through a
/// [`ReplicaPool`](ibrar_serve::ReplicaPool) (the `serve.pool.*` family
/// only exists then). Replica rows are discovered by scanning the snapshot
/// for per-replica counter/gauge names, so the panel tracks fleet size —
/// including replicas added by a rollout — without a protocol change.
fn fleet_section(out: &mut String, s: &Snapshot) {
    let Some(generation) = s.gauge("serve.pool.generation") else {
        return;
    };
    out.push_str(&format!(
        "\nfleet: generation {generation:.0}   alive {}   swaps {}   drained {}\n\
         shed {}   failover {}   killed {}   rollout rejected {}\n",
        s.gauge("serve.pool.replicas_alive")
            .map_or("-".into(), |v| format!("{v:.0}")),
        s.counter("serve.pool.swap").unwrap_or(0),
        s.counter("serve.pool.rollout_drained").unwrap_or(0),
        s.counter("serve.pool.shed").unwrap_or(0),
        s.counter("serve.pool.failover").unwrap_or(0),
        s.counter("serve.pool.replica_killed").unwrap_or(0),
        s.counter("serve.pool.rollout_rejected").unwrap_or(0),
    ));

    let mut ids: Vec<usize> = s
        .counters
        .iter()
        .filter_map(|(name, _)| name.strip_prefix("serve.pool.dispatch.r"))
        .chain(s.gauges.iter().filter_map(|(name, _)| {
            name.strip_prefix("serve.replica.r")
                .and_then(|rest| rest.split('.').next())
        }))
        .filter_map(|id| id.parse().ok())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.is_empty() {
        return;
    }
    out.push_str(&format!(
        "  {:<8} {:>11} {:>7} {:>10}\n",
        "replica", "dispatched", "queue", "in-flight"
    ));
    for id in ids {
        let gauge = |suffix: &str| {
            s.gauge(&format!("serve.replica.r{id}.{suffix}"))
                .map_or("-".into(), |v| format!("{v:.0}"))
        };
        out.push_str(&format!(
            "  r{id:<7} {:>11} {:>7} {:>10}\n",
            s.counter(&format!("serve.pool.dispatch.r{id}"))
                .unwrap_or(0),
            gauge("queue_depth"),
            gauge("in_flight"),
        ));
    }
}

fn main() -> DynResult<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::new();
    let mut interval = Duration::from_millis(1000);
    let mut once = false;
    let mut flight = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--once" => once = true,
            "--flight" => flight = true,
            "--interval" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                interval = Duration::from_millis(ms.max(50));
            }
            a if !a.starts_with('-') && addr.is_empty() => addr = a.to_string(),
            _ => usage(),
        }
        i += 1;
    }
    if addr.is_empty() {
        usage();
    }

    let mut client = Client::connect(&*addr)?;
    client.set_timeout(Some(Duration::from_secs(5)))?;

    if flight {
        println!("{}", client.metrics(MetricsFormat::Flight)?);
        return Ok(());
    }

    let mut prev: Option<Frame> = None;
    loop {
        let frame = poll(&mut client)?;
        let body = render(&addr, &frame, prev.as_ref());
        if once {
            print!("{body}");
            return Ok(());
        }
        // Clear + home, then repaint in place.
        print!("\x1b[2J\x1b[H{body}");
        use std::io::Write as _;
        std::io::stdout().flush()?;
        prev = Some(frame);
        std::thread::sleep(interval);
    }
}
