//! `loadgen` — open-loop Poisson load generator for the replica fleet.
//!
//! Drives an in-process [`ReplicaPool`] with exponentially distributed
//! inter-arrival times (open loop: arrivals never wait for responses, so
//! queueing delay shows up in the latency tail instead of silently
//! throttling the offered load). Two phases of equal length run back to
//! back; between them — while the second phase's traffic is in flight —
//! the pool hot-swaps to a second checkpoint, so the report carries the
//! fleet's p50/p99/p999 both before and after a live rollout, plus the
//! closed-loop saturation throughput.
//!
//! ```sh
//! cargo run --release -p ibrar-bench --bin loadgen -- --rps 300 --duration-s 3
//! cargo run --release -p ibrar-bench --bin loadgen -- --smoke   # CI schema gate
//! ```
//!
//! Randomness comes from the oracle's SplitMix64 [`Gen`] — the same seed
//! reproduces the same arrival schedule and routing keys bit for bit,
//! with no dependency on which `rand` build the workspace links.
//!
//! The output (default `BENCH_PR8.json`) doubles as a committed reference
//! for `perf_report --check`: the `workloads.serve_fleet` entry is the
//! same closed-loop wave that `perf_report` re-times, so fleet dispatch
//! overhead is regression-gated alongside `train_step` and `serve_batch`.

use ibrar_nn::{VggConfig, VggMini};
use ibrar_oracle::Gen;
use ibrar_serve::{
    DispatchPolicy, EngineConfig, PoolConfig, ReplicaPool, RolloutReport, ServeError, TraceId,
};
use ibrar_telemetry::{self as tel, json::Json};
use ibrar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

type DynResult<T> = Result<T, Box<dyn std::error::Error>>;

const SCHEMA: &str = "ibrar-loadgen/v1";
const NUM_CLASSES: usize = 10;
/// Wave size for the closed-loop saturation probe; matches
/// `perf_report`'s full-size `serve_wave` so `--check` compares like with
/// like.
const SATURATION_WAVE: usize = 64;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--rps F] [--duration-s F] [--replicas N]\n\
         \x20              [--policy least-depth|consistent-hash] [--no-swap]\n\
         \x20              [--seed N] [--out PATH] [--smoke]\n\
         \n\
         --rps F         offered load per phase, requests/second (default 300)\n\
         --duration-s F  length of each phase in seconds (default 3)\n\
         --replicas N    fleet size (default 2)\n\
         --policy P      dispatch policy (default least-depth)\n\
         --no-swap       skip the mid-run checkpoint rollout\n\
         --seed N        SplitMix64 seed for arrivals + routing keys\n\
         --out PATH      report path (default <repo>/BENCH_PR8.json)\n\
         --smoke         tiny run against a temp file; validates the schema"
    );
    std::process::exit(2);
}

fn repo_root() -> PathBuf {
    // crates/bench -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn model(seed: u64) -> VggMini {
    let mut rng = StdRng::seed_from_u64(seed);
    VggMini::new(VggConfig::tiny(NUM_CLASSES), &mut rng).expect("model construction")
}

/// Uniform f64 in `[0, 1)` with 53 bits — `Gen` only exposes an f32 unit,
/// and exponential sampling wants the extra mantissa for the deep tail.
fn unit_f64(gen: &mut Gen) -> f64 {
    (gen.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Exponential inter-arrival gap for a Poisson process at `rps`.
fn arrival_gap(gen: &mut Gen, rps: f64) -> Duration {
    let u = unit_f64(gen);
    Duration::from_secs_f64(-(1.0 - u).ln() / rps)
}

fn trace_from(gen: &mut Gen) -> TraceId {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&gen.next_u64().to_le_bytes());
    bytes[8..].copy_from_slice(&gen.next_u64().to_le_bytes());
    TraceId::from_bytes(bytes)
}

fn images(n: usize) -> Vec<Tensor> {
    (0..n)
        .map(|i| {
            Tensor::from_fn(&[3, 16, 16], |idx| {
                ((idx[0] * 29 + idx[1] * 5 + idx[2] * 11 + i * 3) % 23) as f32 / 23.0
            })
        })
        .collect()
}

/// One open-loop phase's outcome.
struct PhaseStats {
    sent: usize,
    ok: usize,
    shed: usize,
    errors: usize,
    elapsed_s: f64,
    /// Sorted end-to-end latencies, milliseconds.
    lat_ms: Vec<f64>,
}

impl PhaseStats {
    fn percentile(&self, p: f64) -> f64 {
        if self.lat_ms.is_empty() {
            return f64::NAN;
        }
        let idx = (p * (self.lat_ms.len() - 1) as f64).round() as usize;
        self.lat_ms[idx]
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sent".into(), Json::Num(self.sent as f64)),
            ("ok".into(), Json::Num(self.ok as f64)),
            ("shed".into(), Json::Num(self.shed as f64)),
            ("errors".into(), Json::Num(self.errors as f64)),
            (
                "achieved_rps".into(),
                Json::Num(self.ok as f64 / self.elapsed_s.max(1e-9)),
            ),
            ("p50_ms".into(), Json::Num(self.percentile(0.50))),
            ("p99_ms".into(), Json::Num(self.percentile(0.99))),
            ("p999_ms".into(), Json::Num(self.percentile(0.999))),
            (
                "max_ms".into(),
                Json::Num(self.lat_ms.last().copied().unwrap_or(f64::NAN)),
            ),
        ])
    }
}

/// Runs one open-loop phase: a sender thread paces submissions on the
/// Poisson schedule while a collector waits responses in arrival order and
/// timestamps completions. Responses land roughly FIFO, so the ordering
/// skew the serial collector adds is bounded by one batch.
fn run_phase(
    pool: &ReplicaPool,
    gen: &mut Gen,
    rps: f64,
    duration: Duration,
    imgs: &[Tensor],
) -> PhaseStats {
    let (tx, rx) = mpsc::channel::<(Instant, ibrar_serve::PendingResponse)>();
    let collector = std::thread::spawn(move || {
        let mut lat_ms = Vec::new();
        let mut errors = 0usize;
        while let Ok((sent, pending)) = rx.recv() {
            match pending.wait() {
                Ok(_) => lat_ms.push(sent.elapsed().as_secs_f64() * 1e3),
                Err(_) => errors += 1,
            }
        }
        (lat_ms, errors)
    });

    let start = Instant::now();
    let mut next = start;
    let mut sent = 0usize;
    let mut shed = 0usize;
    let mut i = 0usize;
    loop {
        next += arrival_gap(gen, rps);
        if next.duration_since(start) > duration {
            break;
        }
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
        // An open-loop generator never skips a late arrival — falling
        // behind schedule is exactly the signal that shows up in the tail.
        let trace = trace_from(gen);
        sent += 1;
        match pool.submit_traced(imgs[i % imgs.len()].clone(), None, Some(trace)) {
            Ok(pending) => tx.send((Instant::now(), pending)).expect("collector alive"),
            Err(ServeError::QueueFull) => shed += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        i += 1;
    }
    drop(tx);
    let (mut lat_ms, errors) = collector.join().expect("collector");
    let elapsed_s = start.elapsed().as_secs_f64();
    lat_ms.sort_by(f64::total_cmp);
    PhaseStats {
        sent,
        ok: lat_ms.len(),
        shed,
        errors,
        elapsed_s,
        lat_ms,
    }
}

/// Closed-loop wave through the fleet, median of `reps` runs (one untimed
/// warmup). Mirrors `perf_report`'s `serve_fleet` workload exactly: this
/// number is what `--check` compares against.
fn fleet_wave_ms(pool: &ReplicaPool, imgs: &[Tensor], reps: usize) -> f64 {
    let run = || {
        let pending: Vec<_> = imgs
            .iter()
            .map(|img| pool.submit(img.clone(), None).expect("submit"))
            .collect();
        for p in pending {
            p.wait().expect("response");
        }
    };
    run();
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        run();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Args {
    rps: f64,
    duration: Duration,
    replicas: usize,
    policy: DispatchPolicy,
    swap: bool,
    seed: u64,
    out: PathBuf,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        rps: 300.0,
        duration: Duration::from_secs(3),
        replicas: 2,
        policy: DispatchPolicy::LeastQueueDepth,
        swap: true,
        seed: 0x1B5E_ED00,
        out: repo_root().join("BENCH_PR8.json"),
        smoke: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--rps" => args.rps = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--duration-s" => {
                let s: f64 = take(&mut i).parse().unwrap_or_else(|_| usage());
                args.duration = Duration::from_secs_f64(s);
            }
            "--replicas" => args.replicas = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--policy" => {
                args.policy = take(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--no-swap" => args.swap = false,
            "--seed" => args.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = PathBuf::from(take(&mut i)),
            "--smoke" => args.smoke = true,
            _ => usage(),
        }
        i += 1;
    }
    if args.smoke {
        args.rps = 200.0;
        args.duration = Duration::from_millis(300);
        args.swap = true;
        args.out =
            std::env::temp_dir().join(format!("ibrar-loadgen-smoke-{}.json", std::process::id()));
    }
    if args.rps <= 0.0 || args.replicas == 0 {
        usage();
    }
    args
}

fn render(root: &Json) -> String {
    let mut out = String::new();
    write_json(root, 0, &mut out);
    out.push('\n');
    out
}

fn write_json(v: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => tel::json::write_f64(*n, out),
        Json::Str(s) => tel::json::write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_json(item, indent, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                tel::json::write_string(k, out);
                out.push_str(": ");
                write_json(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Smoke gate: the written report must round-trip and carry every field a
/// downstream consumer (`perf_report --check`, dashboards) reads.
fn validate(path: &PathBuf) -> DynResult<()> {
    let text = std::fs::read_to_string(path)?;
    let report = Json::parse(&text).map_err(|e| format!("bad JSON: {e}"))?;
    let schema = report
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?} != {SCHEMA:?}").into());
    }
    for phase in ["before_swap", "after_swap"] {
        let p = report
            .get("phases")
            .and_then(|v| v.get(phase))
            .ok_or_else(|| format!("missing phases.{phase}"))?;
        for key in ["sent", "ok", "p50_ms", "p99_ms", "p999_ms"] {
            let v = p
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing phases.{phase}.{key}"))?;
            if !v.is_finite() {
                return Err(format!("phases.{phase}.{key} is not finite").into());
            }
        }
        let ok = p.get("ok").and_then(Json::as_f64).unwrap_or(0.0);
        if ok <= 0.0 {
            return Err(format!("phases.{phase} completed no requests").into());
        }
    }
    let fleet = report
        .get("workloads")
        .and_then(|w| w.get("serve_fleet"))
        .and_then(|w| w.get("optimized_ms"))
        .and_then(Json::as_f64)
        .ok_or("missing workloads.serve_fleet.optimized_ms")?;
    if !(fleet.is_finite() && fleet > 0.0) {
        return Err("workloads.serve_fleet.optimized_ms not positive".into());
    }
    report
        .get("rollout")
        .and_then(|r| r.get("drained"))
        .and_then(Json::as_f64)
        .ok_or("missing rollout.drained")?;
    Ok(())
}

fn main() -> DynResult<()> {
    let args = parse_args();
    tel::global().enable();
    tel::global().reset_metrics();

    let pool = Arc::new(ReplicaPool::new(
        Arc::new(model(42)),
        PoolConfig {
            replicas: args.replicas,
            engine: EngineConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                queue_capacity: 256,
                workers: 1,
            },
            policy: args.policy,
            max_in_flight: None,
        },
    )?);
    let imgs = images(SATURATION_WAVE);
    let mut gen = Gen::new(args.seed);

    eprintln!(
        "[loadgen] fleet: {} replica(s), policy {}, offered {} rps, {:.2}s per phase",
        args.replicas,
        args.policy,
        args.rps,
        args.duration.as_secs_f64()
    );

    let before = run_phase(&pool, &mut gen, args.rps, args.duration, &imgs);
    eprintln!(
        "[loadgen] before swap: {} ok / {} sent, p50 {:.2} ms, p99 {:.2} ms",
        before.ok,
        before.sent,
        before.percentile(0.5),
        before.percentile(0.99)
    );

    // Second phase with the rollout firing while its traffic is in flight:
    // "after" latencies include the swap + drain window, which is the point.
    let swap_delay = args.duration.mul_f64(0.25);
    let (after, rollout): (PhaseStats, Option<RolloutReport>) = if args.swap {
        std::thread::scope(|s| {
            let p = Arc::clone(&pool);
            let handle = s.spawn(move || {
                std::thread::sleep(swap_delay);
                p.rollout(Arc::new(model(4242)))
            });
            let stats = run_phase(&pool, &mut gen, args.rps, args.duration, &imgs);
            let report = handle.join().expect("rollout thread").expect("rollout");
            (stats, Some(report))
        })
    } else {
        (
            run_phase(&pool, &mut gen, args.rps, args.duration, &imgs),
            None,
        )
    };
    eprintln!(
        "[loadgen] after swap:  {} ok / {} sent, p50 {:.2} ms, p99 {:.2} ms",
        after.ok,
        after.sent,
        after.percentile(0.5),
        after.percentile(0.99)
    );
    if let Some(r) = &rollout {
        eprintln!(
            "[loadgen] rollout: v{} -> v{}, drained {} in-flight",
            r.from_version, r.to_version, r.drained
        );
    }

    // Closed-loop saturation probe on whatever generation is now active.
    let wave_ms = fleet_wave_ms(&pool, &imgs, 5);
    let throughput = imgs.len() as f64 / (wave_ms / 1e3);
    eprintln!(
        "[loadgen] saturation: {}-request wave {:.2} ms -> {:.0} req/s",
        imgs.len(),
        wave_ms,
        throughput
    );
    pool.shutdown();

    let snap = tel::global().snapshot();
    let counter = |name: &str| Json::Num(snap.counter(name).unwrap_or(0) as f64);
    let report = Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        (
            "config".into(),
            Json::Obj(vec![
                ("rps".into(), Json::Num(args.rps)),
                ("duration_s".into(), Json::Num(args.duration.as_secs_f64())),
                ("replicas".into(), Json::Num(args.replicas as f64)),
                ("policy".into(), Json::Str(args.policy.to_string())),
                ("seed".into(), Json::Num(args.seed as f64)),
                ("swap".into(), Json::Bool(args.swap)),
            ]),
        ),
        (
            "phases".into(),
            Json::Obj(vec![
                ("before_swap".into(), before.to_json()),
                ("after_swap".into(), after.to_json()),
            ]),
        ),
        (
            "rollout".into(),
            match &rollout {
                Some(r) => Json::Obj(vec![
                    ("from_version".into(), Json::Num(r.from_version as f64)),
                    ("to_version".into(), Json::Num(r.to_version as f64)),
                    ("drained".into(), Json::Num(r.drained as f64)),
                ]),
                None => Json::Null,
            },
        ),
        (
            "saturation".into(),
            Json::Obj(vec![
                ("wave".into(), Json::Num(imgs.len() as f64)),
                ("wave_ms".into(), Json::Num(wave_ms)),
                ("throughput_rps".into(), Json::Num(throughput)),
            ]),
        ),
        (
            "counters".into(),
            Json::Obj(vec![
                ("serve.pool.swap".into(), counter("serve.pool.swap")),
                ("serve.pool.shed".into(), counter("serve.pool.shed")),
                ("serve.drained".into(), counter("serve.drained")),
                (
                    "serve.pool.rollout_rejected".into(),
                    counter("serve.pool.rollout_rejected"),
                ),
            ]),
        ),
        (
            "workloads".into(),
            Json::Obj(vec![(
                "serve_fleet".into(),
                Json::Obj(vec![("optimized_ms".into(), Json::Num(wave_ms))]),
            )]),
        ),
    ]);
    std::fs::write(&args.out, render(&report))?;
    eprintln!("[loadgen] wrote {}", args.out.display());

    if args.smoke {
        validate(&args.out)?;
        let _ = std::fs::remove_file(&args.out);
        println!("loadgen smoke PASS");
    }
    Ok(())
}
