//! Trains the committed tier-1 test fixtures in `fixtures/`.
//!
//! Two checkpoints back the cross-crate integration tests:
//!
//! * `fixtures/attack_std.ibsc` — a Standard-trained `VggMini::tiny(10)`
//!   for `tests/attack_properties.rs`. Trained on a *larger* draw from the
//!   same seed-777 `cifar10_like` generator the test uses (prototypes are
//!   seed-derived, so a bigger train split generalizes to the test's own
//!   320/96 test set), it must be accurate (clean > 0.55) yet undefended
//!   (PGD < 0.4) — the baseline condition the attack invariants assume.
//! * `fixtures/at_warmstart.ibsc` — a PGD-AT warm start for
//!   `tests/end_to_end.rs::adversarial_training_composes_with_ibrar`,
//!   trained on a larger seed-7 draw so the test's short 6-epoch AT runs
//!   start from a genuinely robust point instead of noise.
//!
//! The binary *verifies each checkpoint against the exact data regime the
//! tests use* and exits nonzero if a threshold (with margin) is missed, so
//! a bad fixture can never be committed silently:
//!
//! ```sh
//! cargo run --release --bin make_fixture            # writes fixtures/
//! cargo run --release --bin make_fixture -- --check # verify only
//! ```

use ibrar::{TrainMethod, Trainer, TrainerConfig};
use ibrar_attacks::{accuracy, robust_accuracy, Pgd};
use ibrar_data::{SynthVision, SynthVisionConfig};
use ibrar_nn::{VggConfig, VggMini};
use ibrar_serve::{load_from_path, save_to_path};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

type DynResult<T> = Result<T, Box<dyn std::error::Error>>;

fn usage() -> ! {
    eprintln!(
        "usage: make_fixture [--out DIR] [--check]\n\
         \n\
         --out DIR  output directory (default: fixtures)\n\
         --check    don't train; load the committed checkpoints and re-verify"
    );
    std::process::exit(2);
}

fn fresh_vgg(seed: u64) -> DynResult<VggMini> {
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(VggMini::new(VggConfig::tiny(10), &mut rng)?)
}

/// Gate with margin: the committed artifact must clear the test's own
/// threshold with room to spare, so float drift can't flake tier-1.
fn gate(name: &str, value: f32, ok: bool, requirement: &str) -> DynResult<()> {
    if ok {
        println!("  [ok] {name} = {value:.3} ({requirement})");
        Ok(())
    } else {
        Err(format!("{name} = {value:.3} fails requirement: {requirement}").into())
    }
}

/// Standard fixture: train on a 4096-sample draw from the seed-777
/// generator, verify against the test's canonical 320/96 corpus.
fn make_attack_fixture(path: &Path, check_only: bool) -> DynResult<()> {
    println!("== attack_std fixture ==");
    let model = fresh_vgg(0)?;
    if check_only {
        load_from_path(&model, path)?;
        println!("  loaded {}", path.display());
    } else {
        let big =
            SynthVision::generate(&SynthVisionConfig::cifar10_like().with_sizes(4096, 96), 777)?;
        Trainer::new(
            TrainerConfig::new(TrainMethod::Standard)
                .with_epochs(8)
                .with_batch_size(64)
                .with_seed(0),
        )
        .train(&model, &big.train, &big.test)?;
        save_to_path(&model, path)?;
        println!("  saved {}", path.display());
    }

    // Verify against the exact regime tests/attack_properties.rs uses.
    let canon = SynthVision::generate(&SynthVisionConfig::cifar10_like().with_sizes(320, 96), 777)?;
    let eval = canon.test.take(64)?;
    let batch = eval.as_batch();
    let clean = accuracy(&model, &batch.images, &batch.labels)?;
    let pgd = robust_accuracy(&model, &Pgd::paper_default(), &eval, 32)?;
    gate("clean", clean, clean > 0.62, "> 0.62 (test asserts > 0.55)")?;
    gate("pgd", pgd, pgd < 0.33, "< 0.33 (test asserts < 0.40)")?;
    Ok(())
}

/// AT warm start: PGD-AT on a 2048-sample draw from the seed-7 generator,
/// verified robust on the end-to-end test's canonical 512/192 corpus.
fn make_at_warmstart(path: &Path, check_only: bool) -> DynResult<()> {
    println!("== at_warmstart fixture ==");
    let method = TrainMethod::PgdAt {
        eps: 8.0 / 255.0,
        alpha: 2.0 / 255.0,
        steps: 3,
    };
    let model = fresh_vgg(3)?;
    if check_only {
        load_from_path(&model, path)?;
        println!("  loaded {}", path.display());
    } else {
        let big =
            SynthVision::generate(&SynthVisionConfig::cifar10_like().with_sizes(2048, 192), 7)?;
        Trainer::new(
            TrainerConfig::new(method)
                .with_epochs(20)
                .with_batch_size(64)
                .with_seed(3),
        )
        .train(&model, &big.train, &big.test)?;
        save_to_path(&model, path)?;
        println!("  saved {}", path.display());
    }

    // Verify against the regime tests/end_to_end.rs uses.
    let canon = SynthVision::generate(&SynthVisionConfig::cifar10_like().with_sizes(512, 192), 7)?;
    let eval = canon.test.take(64)?;
    let batch = eval.as_batch();
    let clean = accuracy(&model, &batch.images, &batch.labels)?;
    let pgd = robust_accuracy(&model, &Pgd::paper_default(), &eval, 32)?;
    gate("clean", clean, clean > 0.3, "> 0.3 (warm start learned)")?;
    gate(
        "pgd",
        pgd,
        pgd > 0.18,
        "> 0.18 (test asserts > 0.10 after fine-tune)",
    )?;
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("fixtures");
    let mut check_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check_only = true,
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).map(String::as_str).unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    if !check_only {
        if let Err(e) = std::fs::create_dir_all(&out) {
            eprintln!("cannot create {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    let started = std::time::Instant::now();
    let result = make_attack_fixture(&out.join("attack_std.ibsc"), check_only)
        .and_then(|()| make_at_warmstart(&out.join("at_warmstart.ibsc"), check_only));
    match result {
        Ok(()) => println!("fixtures ready in {:.1?}", started.elapsed()),
        Err(e) => {
            eprintln!("fixture generation failed: {e}");
            std::process::exit(1);
        }
    }
}
