//! Regenerates paper fig2 (see EXPERIMENTS.md). Flags: --quick | --full |
//! --train N | --test N | --epochs N | --seeds N | --eval N.

fn main() -> ibrar_bench::ExpResult<()> {
    let scale = ibrar_bench::Scale::from_args();
    eprintln!("[fig2] running at {scale:?}");
    let started = std::time::Instant::now();
    let out = ibrar_bench::experiments::fig2::run(&scale)?;
    ibrar_bench::write_output("fig2", &out);
    eprintln!("[fig2] done in {:.1?}", started.elapsed());
    Ok(())
}
