//! Inference-server driver: smoke-test, throughput comparison, or a real
//! listening server backed by a freshly checkpointed model.
//!
//! ```sh
//! cargo run --release --bin serve -- --smoke         # CI end-to-end check
//! cargo run --release --bin serve -- --throughput    # batched vs per-request
//! cargo run --release --bin serve -- --listen 127.0.0.1:7878
//! ```
//!
//! Set `IBRAR_LOG` / `IBRAR_TELEMETRY` to capture the serve.* counters,
//! gauges, and span timings (see README "Observability").

use ibrar_nn::{ImageModel, Mode, Session, VggConfig, VggMini, VibHead, VibHeadConfig};
use ibrar_serve::{
    save_to_path, BatchEngine, Client, DispatchPolicy, EngineConfig, Int8Vgg, MetricsFormat,
    ModelRegistry, ProbeSpec, ServeError, Server, ServerConfig,
};
use ibrar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

type DynResult<T> = Result<T, Box<dyn std::error::Error>>;

const MODEL_NAME: &str = "vgg";
const INT8_NAME: &str = "vgg-int8";
const VIB_NAME: &str = "VggMini-vib";
const NUM_CLASSES: usize = 10;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--smoke | --throughput [--requests N] | --listen ADDR | --drive ADDR]\n\
         \x20            [--replicas N] [--policy P] [--int8]\n\
         \n\
         --smoke       end-to-end check on an ephemeral port: classify,\n\
         \x20             robustness probe, queue-full + deadline backpressure,\n\
         \x20             metrics/health/flight endpoints, clean shutdown\n\
         \x20             (exits non-zero on any failure)\n\
         --throughput  compare batched vs per-request engine throughput\n\
         --requests N  wave size for --throughput / --drive (default 64)\n\
         --listen ADDR serve checkpointed models on ADDR until killed\n\
         --drive ADDR  send N traced classify requests at a --listen server\n\
         \x20             (load for the ibrar-top dashboard)\n\
         --replicas N  replicas per model pool (default 1); with --smoke and\n\
         \x20             N > 1, run the fleet smoke instead: dispatch across\n\
         \x20             replicas plus one live checkpoint rollout\n\
         --policy P    fleet dispatch: least-depth (default) or consistent-hash\n\
         --int8        also register the post-training-quantized int8 model\n\
         \x20             ('vgg-int8'); with --smoke, run the int8 differential\n\
         \x20             checks; with --throughput, compare f32 vs int8"
    );
    std::process::exit(2);
}

fn image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], |idx| {
        ((idx[0] * 29 + idx[1] * 5 + idx[2] * 11 + i * 3) % 23) as f32 / 23.0
    })
}

fn build_model(seed: u64) -> DynResult<VggMini> {
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(VggMini::new(VggConfig::tiny(NUM_CLASSES), &mut rng)?)
}

/// Saves a checkpoint for the reference model and registers a builder that
/// starts from *different* weights, so every correct answer proves the
/// checkpoint round-trip actually happened.
fn checkpointed_registry() -> DynResult<(Arc<ModelRegistry>, PathBuf, VggMini)> {
    let model = build_model(42)?;
    let path = std::env::temp_dir().join(format!("ibrar-serve-bin-{}.ibsc", std::process::id()));
    save_to_path(&model, &path)?;

    let registry = Arc::new(ModelRegistry::new());
    registry.register(MODEL_NAME, path.clone(), move || {
        let mut rng = StdRng::seed_from_u64(999);
        Ok(Box::new(VggMini::new(
            VggConfig::tiny(NUM_CLASSES),
            &mut rng,
        )?))
    });
    Ok((registry, path, model))
}

/// Registers the int8 post-training-quantized view of the same checkpoint
/// under [`INT8_NAME`]: the loader builds a fresh f32 `VggMini`, restores
/// the weights, then snapshots them into an [`Int8Vgg`].
fn register_int8(registry: &ModelRegistry, path: &std::path::Path) {
    registry.register_loader(INT8_NAME, path.to_path_buf(), |path| {
        let mut rng = StdRng::seed_from_u64(999);
        let model = VggMini::new(VggConfig::tiny(NUM_CLASSES), &mut rng)?;
        ibrar_serve::load_from_path(&model, path)?;
        Ok(Arc::new(Int8Vgg::from_model(&model)?))
    });
}

fn build_vib(seed: u64) -> DynResult<VibHead<VggMini>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let inner = VggMini::new(VggConfig::tiny(NUM_CLASSES), &mut rng)?;
    Ok(VibHead::new(
        inner,
        VibHeadConfig::paper_default(),
        &mut rng,
    )?)
}

/// Checkpoints a VIB donor and registers the architecture under
/// [`VIB_NAME`]. Like [`checkpointed_registry`], the builder starts from
/// different weights, so correct answers prove the round-trip; serving
/// always runs the deterministic μ-only eval path.
fn register_vib(registry: &ModelRegistry) -> DynResult<(PathBuf, VibHead<VggMini>)> {
    let donor = build_vib(43)?;
    let path =
        std::env::temp_dir().join(format!("ibrar-serve-bin-vib-{}.ibsc", std::process::id()));
    save_to_path(&donor, &path)?;
    registry.register(VIB_NAME, path.clone(), || {
        Ok(Box::new(build_vib(998).map_err(|e| {
            ibrar_nn::NnError::Config(format!("vib builder: {e}"))
        })?))
    });
    Ok((path, donor))
}

fn local_logits(model: &dyn ImageModel, img: &Tensor) -> DynResult<Vec<f32>> {
    let tape = ibrar_autograd::Tape::new();
    let sess = Session::new(&tape);
    let x = tape.leaf(Tensor::stack(std::slice::from_ref(img))?);
    let out = model.forward(&sess, x, Mode::Eval)?;
    Ok(out.logits.value().row(0)?.data().to_vec())
}

fn check(ok: bool, what: &str) -> DynResult<()> {
    if ok {
        println!("ok: {what}");
        Ok(())
    } else {
        Err(format!("FAILED: {what}").into())
    }
}

/// End-to-end smoke used by `scripts/ci.sh`: exercises the full stack
/// (checkpoint load, TCP framing, batching, attacks, backpressure) and the
/// clean-shutdown path on an ephemeral port.
fn run_smoke() -> DynResult<()> {
    // The metrics endpoint serves the global recorder's snapshot; enable it
    // so the stage histograms below have observations even without
    // IBRAR_TELEMETRY set.
    ibrar_telemetry::global().enable();
    let (registry, path, model) = checkpointed_registry()?;
    let (vib_path, vib_donor) = register_vib(&registry)?;
    // Tiny queue so backpressure is reachable deterministically.
    let mut server = Server::start(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            engine: EngineConfig {
                max_batch: 2,
                max_wait: Duration::from_millis(1),
                queue_capacity: 3,
                workers: 1,
            },
            ..ServerConfig::default()
        },
    )?;
    println!("serving on {}", server.addr());
    let mut client = Client::connect(server.addr())?;

    client.ping()?;
    check(true, "ping")?;

    // Classification must match a local forward of the donor weights bitwise.
    let img = image(0);
    let want = local_logits(&model, &img)?;
    let (label, logits) = client.classify_with_logits(MODEL_NAME, &img, 0)?;
    let bitwise = logits
        .iter()
        .zip(&want)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    check(
        bitwise,
        "classify_with_logits bitwise-matches local forward",
    )?;
    let mut best = 0;
    for (j, &v) in want.iter().enumerate() {
        if v > want[best] {
            best = j;
        }
    }
    check(label as usize == best, "label is argmax of logits")?;
    check(
        client.classify(MODEL_NAME, &img, 0)? == label,
        "classify agrees with classify_with_logits",
    )?;

    // Robustness probes run the real attacks and must be deterministic.
    for spec in [ProbeSpec::fgsm_default(), ProbeSpec::pgd_default()] {
        let a = client.robustness_probe(MODEL_NAME, &img, label, spec)?;
        let b = client.robustness_probe(MODEL_NAME, &img, label, spec)?;
        check(a == b, "robustness probe is deterministic")?;
        check(a.clean_correct, "probe clean prediction is correct")?;
    }

    // The VIB head serves through the same registry. Wire logits must
    // bitwise-match a local μ-only forward of the donor weights — the
    // builder starts from different weights, so a match proves the
    // checkpoint round-trip covered every VibHead parameter (priors
    // included). The gradient-based probes then run against that same
    // deterministic eval path.
    let vib_want = local_logits(&vib_donor, &img)?;
    let (vib_label, vib_logits) = client.classify_with_logits(VIB_NAME, &img, 0)?;
    check(
        vib_logits
            .iter()
            .zip(&vib_want)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "vib logits bitwise-match local mu-only forward",
    )?;
    for spec in [ProbeSpec::fgsm_default(), ProbeSpec::pgd_default()] {
        let a = client.robustness_probe(VIB_NAME, &img, vib_label, spec)?;
        let b = client.robustness_probe(VIB_NAME, &img, vib_label, spec)?;
        check(a == b, "vib probe on mu-only eval path is deterministic")?;
    }

    // Backpressure: park the batcher, fill the queue, and observe the typed
    // queue-full and deadline errors cross the wire.
    let engine = server
        .engine(MODEL_NAME)
        .ok_or("engine missing after first request")?;
    let gate = engine.pause();
    let _sacrificial = engine.submit(image(1), None)?;
    wait_until(
        || engine.queue_depth() == 0,
        "batcher holds sacrificial job",
    )?;
    let held: Vec<_> = (0..2)
        .map(|i| engine.submit(image(i + 2), None))
        .collect::<Result<_, _>>()?;

    let addr = server.addr();
    let doomed = std::thread::spawn(move || -> Result<u32, ServeError> {
        let mut c = Client::connect(addr)?;
        c.classify(MODEL_NAME, &image(7), 5)
    });
    wait_until(|| engine.queue_depth() == 3, "doomed request queued")?;

    check(
        matches!(
            client.classify(MODEL_NAME, &image(9), 0),
            Err(ServeError::QueueFull)
        ),
        "queue-full is a typed error over TCP",
    )?;
    std::thread::sleep(Duration::from_millis(50));
    drop(gate);
    check(
        matches!(doomed.join().unwrap(), Err(ServeError::DeadlineExceeded)),
        "expired deadline is a typed error over TCP",
    )?;
    for p in held {
        p.wait()?;
    }
    check(true, "held requests drained after release")?;

    // The server stays healthy after rejections, then shuts down cleanly.
    client.ping()?;
    client.classify(MODEL_NAME, &image(3), 0)?;

    // Observability plane: health, Prometheus exposition with stage
    // families, typed JSON snapshot, and the flight recorder.
    let health = client.health()?;
    check(
        health.engines == 2 && health.queue_depth == 0,
        "health reports both lazily-created engines",
    )?;
    let prom = client.metrics(MetricsFormat::Prometheus)?;
    for family in [
        "ibrar_serve_stage_queue_ms",
        "ibrar_serve_stage_batch_ms",
        "ibrar_serve_stage_forward_ms",
        "ibrar_serve_stage_encode_ms",
        "ibrar_serve_requests",
    ] {
        check(
            prom.contains(family),
            &format!("prometheus exposition contains {family}"),
        )?;
    }
    let parseable = prom
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .all(|l| {
            l.rsplit_once(' ').is_some_and(|(_, v)| {
                v.parse::<f64>().is_ok() || matches!(v, "NaN" | "+Inf" | "-Inf")
            })
        });
    check(parseable, "every prometheus sample line parses")?;
    let snap = ibrar_telemetry::Snapshot::from_json(&client.metrics(MetricsFormat::Json)?)?;
    check(
        snap.histogram("serve.stage.forward_ms")
            .is_some_and(|h| h.count > 0),
        "json snapshot carries populated stage histograms",
    )?;
    let (_, trace) = client.classify_traced(MODEL_NAME, &image(4), 0, None)?;
    check(
        client
            .metrics(MetricsFormat::Flight)?
            .contains(&trace.to_string()),
        "traced request lands in the flight recorder",
    )?;

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(vib_path);
    check(true, "clean shutdown")?;

    if ibrar_telemetry::enabled() {
        eprint!("\n== telemetry ==\n{}", ibrar_telemetry::report());
        ibrar_telemetry::flush();
    }
    println!("smoke: PASS");
    Ok(())
}

/// Fleet smoke (`--smoke --replicas N`, N > 1): the checkpointed registry
/// served by an N-replica pool over the real wire, plus the one behavior a
/// single engine cannot show — a live rollout to a second checkpoint with
/// bitwise proof that the new weights are serving afterwards.
fn run_fleet_smoke(replicas: usize, policy: DispatchPolicy) -> DynResult<()> {
    ibrar_telemetry::global().enable();
    let (registry, path, model) = checkpointed_registry()?;
    // A second same-architecture checkpoint to roll the fleet onto.
    let next = build_model(4242)?;
    let next_path =
        std::env::temp_dir().join(format!("ibrar-serve-bin-next-{}.ibsc", std::process::id()));
    save_to_path(&next, &next_path)?;

    let mut server = Server::start(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            replicas,
            policy,
            ..ServerConfig::default()
        },
    )?;
    println!(
        "serving fleet of {replicas} ({policy}) on {}",
        server.addr()
    );
    let mut client = Client::connect(server.addr())?;
    client.ping()?;
    check(true, "ping")?;

    // Generation 1 answers bitwise like a local forward of the donor
    // weights, whichever replica served it.
    let img = image(0);
    let want = local_logits(&model, &img)?;
    let (_, logits) = client.classify_with_logits(MODEL_NAME, &img, 0)?;
    check(
        logits
            .iter()
            .zip(&want)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "fleet logits bitwise-match local forward",
    )?;

    // A traced wave through the fleet; every answer is a valid label.
    let all_valid = (0..16).try_fold(true, |acc, i| -> DynResult<bool> {
        let (label, _) = client.classify_traced(MODEL_NAME, &image(i), 0, None)?;
        Ok(acc && (label as usize) < NUM_CLASSES)
    })?;
    check(all_valid, "traced wave served by the fleet")?;
    check(
        client.health()?.engines as usize == replicas,
        "health counts every replica",
    )?;

    // Live rollout to the second checkpoint, then bitwise proof the fleet
    // now serves the new weights.
    let ack = client.rollout(MODEL_NAME, next_path.to_str().ok_or("non-utf8 temp path")?)?;
    check(ack.version == 2, "rollout bumps the checkpoint generation")?;
    let want2 = local_logits(&next, &img)?;
    let (_, logits2) = client.classify_with_logits(MODEL_NAME, &img, 0)?;
    check(
        logits2
            .iter()
            .zip(&want2)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "post-rollout logits bitwise-match the new checkpoint",
    )?;

    // The fleet is visible on the metrics plane.
    let json = client.metrics(MetricsFormat::Json)?;
    check(
        json.contains("serve.pool.swap"),
        "swap event lands in metrics",
    )?;
    check(
        json.contains("serve.pool.dispatch.r"),
        "per-replica dispatch counters land in metrics",
    )?;

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(next_path);
    check(true, "clean shutdown")?;
    println!("fleet smoke: PASS");
    Ok(())
}

/// Int8 end-to-end smoke (`--smoke --int8`): the quantized model is served
/// through the same registry/engine/protocol stack as f32, its logits stay
/// inside the documented drift tier, batching stays invisible, and
/// gradient-based probes are rejected with a typed error.
fn run_int8_smoke() -> DynResult<()> {
    ibrar_telemetry::global().enable();
    let (registry, path, model) = checkpointed_registry()?;
    register_int8(&registry, &path);
    let mut server = Server::start("127.0.0.1:0", registry, ServerConfig::default())?;
    println!("serving f32 + int8 on {}", server.addr());
    let mut client = Client::connect(server.addr())?;

    // Wire-level int8 logits must bitwise-match a local quantized forward
    // of the donor weights (proves the registry loader quantized the
    // round-tripped checkpoint, not some other weights).
    let img = image(0);
    let local = Int8Vgg::from_model(&model)?;
    let want = local
        .forward_logits(&Tensor::stack(std::slice::from_ref(&img))?)?
        .row(0)?
        .data()
        .to_vec();
    let (_, logits) = client.classify_with_logits(INT8_NAME, &img, 0)?;
    check(
        logits
            .iter()
            .zip(&want)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "int8 wire logits bitwise-match local quantized forward",
    )?;

    // Differential against the f32 twin: inside the INT8 tolerance tier.
    let f32_logits = local_logits(&model, &img)?;
    let worst = logits
        .iter()
        .zip(&f32_logits)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    let scale = f32_logits.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let bound = ibrar_serve::int8_logit_bound(scale);
    check(
        worst < bound,
        &format!("int8 logit drift {worst:.4} < tier bound {bound:.4}"),
    )?;

    // Batching invisibility holds for int8 too: a coalesced wave answers
    // bitwise-identically to lone requests.
    let engine = server
        .engine(INT8_NAME)
        .ok_or("int8 engine missing after first request")?;
    let lone: Vec<Vec<u32>> = (0..4)
        .map(|i| -> DynResult<Vec<u32>> {
            let row = engine.submit(image(i), None)?.wait()?;
            Ok(row.data().iter().map(|v| v.to_bits()).collect())
        })
        .collect::<DynResult<_>>()?;
    let wave: Vec<_> = (0..4)
        .map(|i| engine.submit(image(i), None))
        .collect::<Result<_, _>>()?;
    for (i, p) in wave.into_iter().enumerate() {
        let got: Vec<u32> = p.wait()?.data().iter().map(|v| v.to_bits()).collect();
        check(
            got == lone[i],
            &format!("int8 batching invisible (row {i})"),
        )?;
    }

    // Gradient-based probes cannot run against the tape-free int8 forward:
    // the server must reject with the typed Unsupported error, and the f32
    // twin must keep answering probes on the same connection.
    let label = client.classify(INT8_NAME, &img, 0)?;
    check(
        matches!(
            client.robustness_probe(INT8_NAME, &img, label, ProbeSpec::fgsm_default()),
            Err(ServeError::Unsupported(_))
        ),
        "robustness probe on int8 model is a typed Unsupported error",
    )?;
    client.robustness_probe(MODEL_NAME, &img, label, ProbeSpec::fgsm_default())?;
    check(true, "f32 probe still served on the same connection")?;

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(path);
    check(true, "clean shutdown")?;
    println!("int8 smoke: PASS");
    Ok(())
}

fn wait_until(cond: impl Fn() -> bool, what: &str) -> DynResult<()> {
    for _ in 0..5000 {
        if cond() {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    Err(format!("timed out waiting for: {what}").into())
}

/// Drives `requests` classifications through a per-request engine
/// (`max_batch = 1`) and a batching engine, and reports the speedup. The
/// batched engine amortises dispatch overhead *and* lets the row-parallel
/// kernels use multiple cores, so the gap widens with core count.
fn run_throughput(requests: usize, int8: bool) -> DynResult<()> {
    let f32_model = build_model(42)?;
    let model: Arc<dyn ImageModel> = if int8 {
        Arc::new(Int8Vgg::from_model(&f32_model)?)
    } else {
        Arc::new(f32_model)
    };
    let images: Vec<Tensor> = (0..requests).map(image).collect();

    let time_engine = |label: &str, max_batch: usize| -> DynResult<f64> {
        let engine = BatchEngine::new(
            Arc::clone(&model),
            EngineConfig {
                max_batch,
                max_wait: Duration::from_millis(5),
                queue_capacity: requests.max(64),
                workers: 1,
            },
        )?;
        // Warm-up wave so thread spawn and first-touch costs are excluded.
        for p in images
            .iter()
            .take(8)
            .map(|img| engine.submit(img.clone(), None))
            .collect::<Result<Vec<_>, _>>()?
        {
            p.wait()?;
        }
        let start = Instant::now();
        let pending = images
            .iter()
            .map(|img| engine.submit(img.clone(), None))
            .collect::<Result<Vec<_>, _>>()?;
        for p in pending {
            p.wait()?;
        }
        let secs = start.elapsed().as_secs_f64();
        engine.shutdown();
        let rps = requests as f64 / secs;
        println!(
            "{label:<24} {rps:>10.1} req/s  ({:.1} ms total)",
            secs * 1e3
        );
        Ok(rps)
    };

    println!(
        "throughput over {requests} requests ({} tiny, 3x16x16):",
        model.name()
    );
    let single = time_engine("per-request (batch=1)", 1)?;
    let batched = time_engine("batched (batch=8)", 8)?;
    println!("speedup: {:.2}x", batched / single);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if cores < 2 {
        println!(
            "note: only {cores} core available — batching can only amortise \
             dispatch overhead here. The conv/matmul kernels parallelise \
             across batch rows, so the batched engine needs >=2 cores to \
             show its real (>=2x) advantage."
        );
    }

    if ibrar_telemetry::enabled() {
        eprint!("\n== telemetry ==\n{}", ibrar_telemetry::report());
        ibrar_telemetry::flush();
    }
    Ok(())
}

/// Serves until the process is killed. Checkpoints a fresh model first so
/// the registry exercises the real load path.
fn run_listen(addr: &str, int8: bool, replicas: usize, policy: DispatchPolicy) -> DynResult<()> {
    // A listening server exists to be observed: turn metric collection on
    // so the Metrics opcode (and `ibrar-top`) has data without requiring
    // IBRAR_TELEMETRY in the environment.
    ibrar_telemetry::global().enable();
    let (registry, _path, _model) = checkpointed_registry()?;
    let (_vib_path, _) = register_vib(&registry)?;
    if int8 {
        register_int8(&registry, &_path);
    }
    let server = Server::start(
        addr,
        registry,
        ServerConfig {
            replicas,
            policy,
            ..ServerConfig::default()
        },
    )?;
    println!(
        "serving models {MODEL_NAME:?} + {VIB_NAME:?}{} on {} (ctrl-c to stop)",
        if int8 {
            format!(" + {INT8_NAME:?}")
        } else {
            String::new()
        },
        server.addr()
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Fires `requests` traced classifications at a remote `--listen` server —
/// load for the `ibrar-top` dashboard and a quick latency readout.
fn run_drive(addr: &str, requests: usize) -> DynResult<()> {
    let mut client = Client::connect(addr)?;
    let start = Instant::now();
    let mut first_trace = None;
    for i in 0..requests {
        let (_, trace) = client.classify_traced(MODEL_NAME, &image(i), 0, None)?;
        first_trace.get_or_insert(trace);
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "drove {requests} requests in {:.1} ms ({:.1} req/s); first trace id {}",
        secs * 1e3,
        requests as f64 / secs,
        first_trace.map(|t| t.to_string()).unwrap_or_default()
    );
    Ok(())
}

fn main() -> DynResult<()> {
    ibrar_telemetry::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = String::from("--throughput");
    let mut requests = 64usize;
    let mut addr = String::new();
    let mut int8 = false;
    let mut replicas = 1usize;
    let mut policy = DispatchPolicy::LeastQueueDepth;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" | "--throughput" => mode = args[i].clone(),
            "--listen" | "--drive" => {
                mode = args[i].clone();
                i += 1;
                addr = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--requests" => {
                i += 1;
                requests = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--replicas" => {
                i += 1;
                replicas = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--policy" => {
                i += 1;
                policy = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--int8" => int8 = true,
            _ => usage(),
        }
        i += 1;
    }
    match mode.as_str() {
        "--smoke" if int8 => run_int8_smoke(),
        "--smoke" if replicas > 1 => run_fleet_smoke(replicas, policy),
        "--smoke" => run_smoke(),
        "--listen" => run_listen(&addr, int8, replicas, policy),
        "--drive" => run_drive(&addr, requests),
        _ => run_throughput(requests, int8),
    }
}
