//! Performance trajectory report: wall-clock medians for the hot paths the
//! training/attack/serving loops live in, written as `BENCH_PR7.json`.
//!
//! ```sh
//! # At the pre-optimization base commit: record the reference timings.
//! cargo run --release -p ibrar-bench --bin perf_report -- --phase baseline
//! # At the optimized head: merge in current timings + speedups + counters.
//! cargo run --release -p ibrar-bench --bin perf_report -- --phase head
//! # CI: schema sanity check at tiny scale, no timing assertions.
//! cargo run --release -p ibrar-bench --bin perf_report -- --smoke
//! # CI: regression gate — re-time train_step/serve_batch and compare the
//! # fresh medians to every committed BENCH_*.json reference.
//! cargo run --release -p ibrar-bench --bin perf_report -- --check
//! ```
//!
//! The report is two-phase so the baseline numbers in the committed file are
//! *measured*, not remembered: `--phase baseline` runs this same harness
//! against the pre-PR kernels and writes `baseline_ms` per workload;
//! `--phase head` re-times the identical workloads on the optimized kernels,
//! merges `optimized_ms` and `speedup` into the same file, and attaches the
//! scratch-pool and HSIC-cache counters (`alloc.pool.*`, `hsic.cache.*`)
//! collected from an extra untimed pass with telemetry enabled. Counters
//! that the running build does not emit (e.g. at the baseline commit) are
//! reported as `null`. `--smoke` exercises both phases at tiny scale
//! against a temporary file and only checks the schema, never the timings.
//!
//! Head-only workloads (the baseline binary predates the code they time)
//! cannot be measured in the baseline phase. Instead of emitting no
//! `baseline_ms` at all — which let them escape both the speedup column and
//! the `--check` gate through PR 9 — the head phase now *carries forward*
//! the best committed median from the prior `BENCH_PR*.json` trajectory
//! files as their baseline, tagged with a `baseline_source` field naming
//! the report it came from. A head-only workload with no committed history
//! (a genuinely new workload) still reports `optimized_ms` alone, and earns
//! its carried baseline the first time its report is committed.

use ibrar::{IbLoss, IbLossConfig, TrainMethod, Trainer, TrainerConfig};
use ibrar_attacks::{Attack, Pgd, DEFAULT_ALPHA, DEFAULT_EPS};
use ibrar_autograd::Tape;
use ibrar_data::{Dataset, SynthVision, SynthVisionConfig};
use ibrar_nn::{ImageModel, Mode, Session, VggConfig, VggMini, VibHead, VibHeadConfig};
use ibrar_serve::{BatchEngine, EngineConfig, PoolConfig, ReplicaPool};
use ibrar_telemetry::{self as tel, json::Json};
use ibrar_tensor::qgemm::{gemm_i8_packed, PackedQuantB};
use ibrar_tensor::{parallel, Conv2dSpec, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

type DynResult<T> = Result<T, Box<dyn std::error::Error>>;

const SCHEMA: &str = "ibrar-perf-report/v1";
const NUM_CLASSES: usize = 10;

/// Workload names, in report order. The acceptance gate reads
/// `conv_forward`, `pgd_step`, and `ibrar_regularizer`.
const WORKLOADS: [&str; 7] = [
    "conv_forward",
    "conv_fwd_bwd",
    "pgd_step",
    "ibrar_regularizer",
    "train_step",
    "vib_train_step",
    "serve_batch",
];

/// Workloads that only exist at the head commit (the baseline binary
/// predates the code they time). They get `optimized_ms` in the head phase,
/// plus a `baseline_ms`/`speedup` carried forward from the best committed
/// median in [`COMMITTED_REPORTS`] (tagged `baseline_source`) when any
/// prior report carries one.
const HEAD_ONLY_WORKLOADS: [&str; 2] = ["serve_batch_int8", "qgemm"];

/// Workloads the `--check` regression gate re-times. `serve_fleet` is not
/// in [`WORKLOADS`] (committed PR7-era reports predate the pool); its
/// reference lives in the loadgen report, `BENCH_PR8.json`.
/// `vib_train_step`'s reference lives in `BENCH_PR9.json`;
/// `serve_batch_int8`'s and `qgemm`'s live in `BENCH_PR9.json` /
/// `BENCH_PR10.json` — head-only workloads are gated like everything else
/// once a committed report carries a median for them.
const CHECK_WORKLOADS: [&str; 6] = [
    "train_step",
    "vib_train_step",
    "serve_batch",
    "serve_batch_int8",
    "qgemm",
    "serve_fleet",
];

/// The committed performance-trajectory files, newest first. `--check`
/// requires every one of them to exist and parse; the head phase scans the
/// same list (minus the file being written) for carried-forward baselines.
const COMMITTED_REPORTS: [&str; 5] = [
    "BENCH_PR10.json",
    "BENCH_PR9.json",
    "BENCH_PR8.json",
    "BENCH_PR7.json",
    "BENCH_PR5.json",
];

/// `--check` threshold: a fresh median may be at most this multiple of a
/// committed reference before the gate fails. Sub-100ms wall-clock medians
/// on shared CI hosts jitter ±30–50% run to run; 2× sits above that noise
/// floor while still catching structural regressions (a lost parallel
/// gate, a cold scratch pool, a serial fallback) which cost 3–7× here.
const REGRESSION_FACTOR: f64 = 2.0;

fn usage() -> ! {
    eprintln!(
        "usage: perf_report [--phase baseline|head] [--out PATH] [--reps N] [--smoke] [--check]\n\
         \n\
         --phase baseline  time the workloads and write baseline_ms entries\n\
         --phase head      time the workloads, merge optimized_ms + speedups\n\
         \x20                 and pool/cache counters into the existing file\n\
         --out PATH        report path (default <repo root>/BENCH_PR7.json)\n\
         --reps N          timed repetitions per workload (default 15)\n\
         --smoke           tiny-scale two-phase run against a temp file that\n\
         \x20                 only validates the schema\n\
         --check           re-time the gated workloads (incl. the int8 serve\n\
         \x20                 tier and raw qgemm) and fail if a median exceeds\n\
         \x20                 any committed BENCH_*.json reference by more\n\
         \x20                 than the documented regression factor"
    );
    std::process::exit(2);
}

fn repo_root() -> PathBuf {
    // crates/bench -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn default_out() -> PathBuf {
    repo_root().join("BENCH_PR7.json")
}

/// Median wall time of `reps` runs, in milliseconds. One untimed warmup run
/// precedes the timed ones so first-touch effects (pool fills, lazy init)
/// do not land in the median.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn model(seed: u64) -> VggMini {
    let mut rng = StdRng::seed_from_u64(seed);
    VggMini::new(VggConfig::tiny(NUM_CLASSES), &mut rng).expect("model construction")
}

fn image_batch(n: usize) -> Tensor {
    Tensor::from_fn(&[n, 3, 16, 16], |i| {
        ((i[0] * 37 + i[1] * 29 + i[2] * 5 + i[3] * 11) % 23) as f32 / 23.0
    })
}

fn labels(n: usize) -> Vec<usize> {
    (0..n).map(|i| (i * 7 + 3) % NUM_CLASSES).collect()
}

/// Workload sizes; `--smoke` shrinks everything to schema-check scale.
#[derive(Clone)]
struct Sizes {
    conv_batch: usize,
    pgd_batch: usize,
    pgd_steps: usize,
    reg_batch: usize,
    train: usize,
    test: usize,
    serve_wave: usize,
    /// `(m, k, n)` for the raw packed-qgemm workload.
    qgemm: (usize, usize, usize),
    reps: usize,
}

impl Sizes {
    fn full(reps: usize) -> Self {
        Sizes {
            conv_batch: 8,
            pgd_batch: 8,
            pgd_steps: 1,
            reg_batch: 16,
            train: 32,
            test: 8,
            serve_wave: 64,
            qgemm: (64, 1152, 256),
            reps,
        }
    }

    fn smoke() -> Self {
        Sizes {
            conv_batch: 2,
            pgd_batch: 2,
            pgd_steps: 1,
            reg_batch: 4,
            train: 8,
            test: 4,
            serve_wave: 8,
            qgemm: (3, 8, 5),
            reps: 1,
        }
    }
}

/// `conv_forward` / `conv_fwd_bwd`: one mid-network convolution
/// (16→32 channels, 3×3, pad 1) over a 16×16 batch — the im2col + matmul_nt
/// (and matmul_tn + col2im on the way back) workhorse of every model here.
fn time_conv(sizes: &Sizes, backward: bool) -> f64 {
    let spec = Conv2dSpec::new(16, 32, 3, 1, 1);
    let x = Tensor::from_fn(&[sizes.conv_batch, 16, 16, 16], |i| {
        ((i[0] * 131 + i[1] * 37 + i[2] * 11 + i[3] * 3) % 23) as f32 * 0.17 - 1.5
    });
    let w = Tensor::from_fn(&[32, 16, 3, 3], |i| {
        ((i[0] * 13 + i[1] * 7 + i[2] * 3 + i[3]) % 11) as f32 * 0.05 - 0.25
    });
    median_ms(sizes.reps, || {
        let tape = Tape::new();
        let xv = tape.var(x.clone());
        let wv = tape.var(w.clone());
        let out = xv.conv2d(wv, None, spec).expect("conv2d");
        if backward {
            let loss = out.sum().expect("sum");
            tape.backward(loss).expect("backward");
        } else {
            std::hint::black_box(out.value());
        }
    })
}

/// `pgd_step`: a PGD iteration (full forward + input-gradient backward) on a
/// VggMini batch — the inner loop of adversarial example generation.
fn time_pgd(sizes: &Sizes) -> f64 {
    let m = model(11);
    let attack = Pgd::new(DEFAULT_EPS, DEFAULT_ALPHA, sizes.pgd_steps).without_random_start();
    let x = image_batch(sizes.pgd_batch);
    let y = labels(sizes.pgd_batch);
    median_ms(sizes.reps, || {
        std::hint::black_box(attack.perturb(&m, &x, &y).expect("pgd"));
    })
}

/// `ibrar_regularizer`: `α Σ_l I(X,T_l) − β Σ_l I(Y,T_l)` on the robust
/// layers of a VggMini forward. The forward pass runs untimed inside each
/// repetition; only the regularizer build (σ prepass + kernels + trace
/// terms) is on the clock.
fn time_regularizer(sizes: &Sizes) -> f64 {
    let m = model(12);
    let x = image_batch(sizes.reg_batch);
    let y = labels(sizes.reg_batch);
    let cfg = IbLossConfig::substrate_vgg();
    let run = |times: Option<&mut Vec<f64>>| {
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let xv = tape.leaf(x.clone());
        let out = m.forward(&sess, xv, Mode::Eval).expect("forward");
        let t0 = Instant::now();
        let reg = IbLoss::regularizer_with_terms(&sess, xv, &out.hidden, &y, NUM_CLASSES, &cfg)
            .expect("regularizer");
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(reg.0.value());
        if let Some(times) = times {
            times.push(dt);
        }
    };
    run(None); // warmup
    let mut times = Vec::new();
    for _ in 0..sizes.reps {
        run(Some(&mut times));
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn synth(sizes: &Sizes) -> (Dataset, Dataset) {
    let data = SynthVision::generate(
        &SynthVisionConfig::cifar10_like().with_sizes(sizes.train, sizes.test),
        5,
    )
    .expect("synth data");
    (data.train, data.test)
}

/// `train_step`: one full Standard+IB-RAR epoch (forward, regularizer,
/// backward, SGD) over a small synthetic set — the composite loop every
/// experiment binary spends its time in.
fn time_train(sizes: &Sizes) -> f64 {
    let (train, test) = synth(sizes);
    let cfg = TrainerConfig::new(TrainMethod::Standard)
        .with_epochs(1)
        .with_batch_size(16)
        .with_ib(IbLossConfig::substrate_vgg())
        .with_seed(7)
        .with_sequential_batches();
    median_ms(sizes.reps.min(5), || {
        let m = model(13);
        let trainer = Trainer::new(cfg.clone());
        std::hint::black_box(trainer.train(&m, &train, &test).expect("train"));
    })
}

/// `vib_train_step`: one Standard epoch through the VIB-wrapped model —
/// frozen-noise reparameterized forward, rsample/kl_gauss backward, SGD —
/// the per-step cost of the variational bottleneck next to `train_step`'s
/// HSIC path.
fn time_vib_train(sizes: &Sizes) -> f64 {
    let (train, test) = synth(sizes);
    let cfg = TrainerConfig::new(TrainMethod::Standard)
        .with_epochs(1)
        .with_batch_size(16)
        .with_seed(7)
        .with_sequential_batches();
    median_ms(sizes.reps.min(5), || {
        let mut rng = StdRng::seed_from_u64(13);
        let inner = VggMini::new(VggConfig::tiny(NUM_CLASSES), &mut rng).expect("backbone");
        let m = VibHead::new(inner, VibHeadConfig::paper_default(), &mut rng).expect("vib head");
        let trainer = Trainer::new(cfg.clone());
        std::hint::black_box(trainer.train(&m, &train, &test).expect("train"));
    })
}

/// `serve_batch`: a wave of concurrent single-image requests through the
/// micro-batching engine (batch assembly = the `Tensor::stack` path, then
/// one stacked Eval forward per batch).
fn time_serve(sizes: &Sizes) -> f64 {
    time_serve_with(Arc::new(model(14)), sizes)
}

/// `serve_batch_int8`: the identical request wave against the post-training-
/// quantized twin of the same model — the i8×i8→i32 GEMM inference tier.
fn time_serve_int8(sizes: &Sizes) -> f64 {
    let q = ibrar_serve::Int8Vgg::from_model(&model(14)).expect("int8 quantization");
    time_serve_with(Arc::new(q), sizes)
}

/// `qgemm`: the raw packed i8×i8→i32 GEMM on serve-shaped operands — B
/// packed once outside the clock (exactly like `Int8Vgg`'s cached panels),
/// so the timed region is what `serve_batch_int8` pays per batch: quantized
/// activation rows against the k-major panels.
fn time_qgemm(sizes: &Sizes) -> f64 {
    let (m, k, n) = sizes.qgemm;
    let a: Vec<i8> = (0..m * k)
        .map(|i| (((i * 37 + 11) % 255) as i32 - 127) as i8)
        .collect();
    let b: Vec<i8> = (0..n * k)
        .map(|i| (((i * 53 + 7) % 255) as i32 - 127) as i8)
        .collect();
    let packed = PackedQuantB::pack(&b, n, k).expect("pack");
    median_ms(sizes.reps, || {
        std::hint::black_box(gemm_i8_packed(&a, &packed, m).expect("qgemm"));
    })
}

/// `serve_fleet`: the `serve_batch` wave through a two-replica
/// [`ReplicaPool`] under least-depth dispatch — times fleet routing and
/// per-replica batch assembly on top of the single-engine path. Matches
/// the closed-loop saturation wave the `loadgen` bin records into
/// `BENCH_PR8.json`, which is the committed reference the `--check` gate
/// compares against.
fn time_serve_fleet(sizes: &Sizes) -> f64 {
    let pool = ReplicaPool::new(
        Arc::new(model(14)),
        PoolConfig {
            replicas: 2,
            engine: EngineConfig {
                max_batch: 8,
                max_wait: std::time::Duration::from_millis(1),
                queue_capacity: sizes.serve_wave.max(8) * 2,
                workers: 1,
            },
            ..PoolConfig::default()
        },
    )
    .expect("pool");
    let images: Vec<Tensor> = (0..sizes.serve_wave)
        .map(|i| {
            Tensor::from_fn(&[3, 16, 16], |idx| {
                ((idx[0] * 29 + idx[1] * 5 + idx[2] * 11 + i * 3) % 23) as f32 / 23.0
            })
        })
        .collect();
    let ms = median_ms(sizes.reps.min(5), || {
        let pending: Vec<_> = images
            .iter()
            .map(|img| pool.submit(img.clone(), None).expect("submit"))
            .collect();
        for p in pending {
            p.wait().expect("response");
        }
    });
    pool.shutdown();
    ms
}

fn time_serve_with(m: Arc<dyn ImageModel>, sizes: &Sizes) -> f64 {
    let engine = BatchEngine::new(
        Arc::clone(&m),
        EngineConfig {
            max_batch: 8,
            max_wait: std::time::Duration::from_millis(1),
            queue_capacity: sizes.serve_wave.max(8) * 2,
            workers: 1,
        },
    )
    .expect("engine");
    let images: Vec<Tensor> = (0..sizes.serve_wave)
        .map(|i| {
            Tensor::from_fn(&[3, 16, 16], |idx| {
                ((idx[0] * 29 + idx[1] * 5 + idx[2] * 11 + i * 3) % 23) as f32 / 23.0
            })
        })
        .collect();
    let ms = median_ms(sizes.reps.min(5), || {
        let pending: Vec<_> = images
            .iter()
            .map(|img| engine.submit(img.clone(), None).expect("submit"))
            .collect();
        for p in pending {
            p.wait().expect("response");
        }
    });
    engine.shutdown();
    ms
}

fn time_workload(name: &str, sizes: &Sizes) -> f64 {
    match name {
        "conv_forward" => time_conv(sizes, false),
        "conv_fwd_bwd" => time_conv(sizes, true),
        "pgd_step" => time_pgd(sizes),
        "ibrar_regularizer" => time_regularizer(sizes),
        "train_step" => time_train(sizes),
        "vib_train_step" => time_vib_train(sizes),
        "serve_batch" => time_serve(sizes),
        "serve_batch_int8" => time_serve_int8(sizes),
        "qgemm" => time_qgemm(sizes),
        "serve_fleet" => time_serve_fleet(sizes),
        other => unreachable!("unknown workload {other}"),
    }
}

/// Runs the train-step + regularizer workloads once more with the metric
/// recorder enabled and returns the allocation-pool and HSIC-cache counters
/// (None where the running build does not emit them — e.g. the baseline
/// commit predates the counters).
fn collect_counters(sizes: &Sizes) -> Vec<(String, Option<u64>)> {
    let rec = tel::global();
    let was_enabled = rec.is_enabled();
    rec.enable();
    rec.reset_metrics();
    let once = Sizes {
        reps: 1,
        ..sizes.clone()
    };
    time_train(&once);
    time_regularizer(&once);
    let snap = rec.snapshot();
    let out = [
        "alloc.pool.hit",
        "alloc.pool.miss",
        "hsic.cache.hit",
        "hsic.cache.miss",
    ]
    .iter()
    .map(|name| (name.to_string(), snap.counter(name)))
    .collect();
    rec.reset_metrics();
    if !was_enabled {
        rec.disable();
    }
    out
}

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn opt_u64(v: Option<u64>) -> Json {
    match v {
        Some(n) => Json::Num(n as f64),
        None => Json::Null,
    }
}

fn render(root: &Json) -> String {
    let mut out = String::new();
    write_json(root, 0, &mut out);
    out.push('\n');
    out
}

fn write_json(v: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => tel::json::write_f64(*n, out),
        Json::Str(s) => tel::json::write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_json(item, indent, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                tel::json::write_string(k, out);
                out.push_str(": ");
                write_json(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Schema validation shared by `--smoke` and the head phase: every workload
/// entry exists and carries a numeric `baseline_ms` (plus `optimized_ms` and
/// `speedup`, and the pool/cache counter objects, when `optimized`).
fn validate(report: &Json, optimized: bool) -> Result<(), String> {
    if report.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema field != {SCHEMA}"));
    }
    let workloads = report.get("workloads").ok_or("missing workloads object")?;
    let mut required = vec!["baseline_ms"];
    if optimized {
        required.extend(["optimized_ms", "speedup"]);
    }
    for name in WORKLOADS {
        let w = workloads
            .get(name)
            .ok_or_else(|| format!("missing workload {name}"))?;
        for key in &required {
            let v = w
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("workload {name} missing numeric {key}"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("workload {name} {key} not positive: {v}"));
            }
        }
    }
    if optimized {
        // Head-only workloads never require a baseline — the baseline
        // binary predates them — but the head phase must time them.
        for name in HEAD_ONLY_WORKLOADS {
            let v = workloads
                .get(name)
                .and_then(|w| w.get("optimized_ms"))
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("head-only workload {name} missing numeric optimized_ms"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("workload {name} optimized_ms not positive: {v}"));
            }
        }
        for obj in ["pool", "hsic_cache"] {
            let o = report
                .get(obj)
                .ok_or_else(|| format!("missing {obj} object"))?;
            for key in ["hit", "miss", "hit_rate"] {
                o.get(key).ok_or_else(|| format!("{obj} missing {key}"))?;
            }
        }
    }
    Ok(())
}

fn run(phase: &str, out_path: &PathBuf, sizes: &Sizes) -> DynResult<()> {
    eprintln!(
        "[perf_report] phase={phase} reps={} out={}",
        sizes.reps,
        out_path.display()
    );
    let mut names: Vec<&str> = WORKLOADS.to_vec();
    if phase == "head" {
        names.extend(HEAD_ONLY_WORKLOADS);
    }
    let mut timings = Vec::new();
    for name in names {
        let ms = time_workload(name, sizes);
        eprintln!("[perf_report]   {name}: {ms:.3} ms");
        timings.push((name.to_string(), ms));
    }

    let report = if phase == "baseline" {
        let workloads = timings
            .iter()
            .map(|(name, ms)| {
                (
                    name.clone(),
                    Json::Obj(vec![("baseline_ms".into(), num(*ms))]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("phase".into(), Json::Str("baseline".into())),
            ("threads".into(), num(parallel::num_threads() as f64)),
            ("reps".into(), num(sizes.reps as f64)),
            ("workloads".into(), Json::Obj(workloads)),
        ])
    } else {
        // Head phase: merge with the recorded baseline.
        let base_text = std::fs::read_to_string(out_path).map_err(|e| {
            format!(
                "head phase needs a baseline report at {} (run --phase baseline at the \
                 pre-optimization commit first): {e}",
                out_path.display()
            )
        })?;
        let base = Json::parse(&base_text).map_err(|e| format!("bad baseline JSON: {e}"))?;
        validate(&base, false).map_err(|e| format!("baseline report invalid: {e}"))?;
        let counters = collect_counters(sizes);
        let counter = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, v)| *v)
        };
        let rate = |hit: Option<u64>, miss: Option<u64>| match (hit, miss) {
            (Some(h), Some(m)) if h + m > 0 => num(h as f64 / (h + m) as f64),
            _ => Json::Null,
        };
        let workloads = timings
            .iter()
            .map(|(name, ms)| {
                // Head-only workloads have no baseline entry (the baseline
                // binary predates them); carry forward the best committed
                // median instead so they still get a speedup column and the
                // `--check` gate. Everything else was validated above.
                let measured = base
                    .get("workloads")
                    .and_then(|w| w.get(name))
                    .and_then(|w| w.get("baseline_ms"))
                    .and_then(Json::as_f64);
                let carried = match measured {
                    Some(_) => None,
                    None => carried_baseline(name, out_path),
                };
                let baseline = measured.or(carried.map(|(b, _)| b));
                let mut fields = Vec::new();
                if let Some(b) = baseline {
                    fields.push(("baseline_ms".into(), num(b)));
                }
                if let Some((_, src)) = carried {
                    fields.push(("baseline_source".into(), Json::Str(src.into())));
                }
                fields.push(("optimized_ms".into(), num(*ms)));
                if let Some(b) = baseline {
                    fields.push(("speedup".into(), num(b / ms)));
                }
                (name.clone(), Json::Obj(fields))
            })
            .collect();
        let (ph, pm) = (counter("alloc.pool.hit"), counter("alloc.pool.miss"));
        let (ch, cm) = (counter("hsic.cache.hit"), counter("hsic.cache.miss"));
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("phase".into(), Json::Str("head".into())),
            ("threads".into(), num(parallel::num_threads() as f64)),
            ("reps".into(), num(sizes.reps as f64)),
            ("workloads".into(), Json::Obj(workloads)),
            (
                "pool".into(),
                Json::Obj(vec![
                    ("hit".into(), opt_u64(ph)),
                    ("miss".into(), opt_u64(pm)),
                    ("hit_rate".into(), rate(ph, pm)),
                ]),
            ),
            (
                "hsic_cache".into(),
                Json::Obj(vec![
                    ("hit".into(), opt_u64(ch)),
                    ("miss".into(), opt_u64(cm)),
                    ("hit_rate".into(), rate(ch, cm)),
                ]),
            ),
        ])
    };

    let text = render(&report);
    // The writer must round-trip through the parser (the head phase and any
    // external consumer rely on it).
    let reparsed = Json::parse(&text).map_err(|e| format!("rendered JSON invalid: {e}"))?;
    validate(&reparsed, phase == "head")?;
    std::fs::write(out_path, text)?;
    eprintln!("[perf_report] wrote {}", out_path.display());
    Ok(())
}

/// The baseline to carry forward for a head-only workload: the best
/// committed median for `name` across [`COMMITTED_REPORTS`], with the file
/// it came from. The file currently being written is skipped (the head
/// phase must not reference itself), and unreadable files are skipped too —
/// carry-forward is best-effort, unlike `--check` which demands every file.
fn carried_baseline(name: &str, out_path: &std::path::Path) -> Option<(f64, &'static str)> {
    let out_name = out_path.file_name();
    let mut best: Option<(f64, &'static str)> = None;
    for file in COMMITTED_REPORTS {
        if out_name.is_some_and(|o| o == file) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(repo_root().join(file)) else {
            continue;
        };
        let Ok(report) = Json::parse(&text) else {
            continue;
        };
        if let Some(v) = committed_reference(&report, name) {
            if best.is_none_or(|(b, _)| v < b) {
                best = Some((v, file));
            }
        }
    }
    best
}

/// The committed reference median for `name` in a report: the smaller of
/// `baseline_ms` and `optimized_ms` (whichever are present), i.e. the best
/// wall-clock this workload has ever been recorded at in that file.
fn committed_reference(report: &Json, name: &str) -> Option<f64> {
    let w = report.get("workloads")?.get(name)?;
    ["baseline_ms", "optimized_ms"]
        .iter()
        .filter_map(|key| w.get(key).and_then(Json::as_f64))
        .filter(|v| v.is_finite() && *v > 0.0)
        .fold(None, |best: Option<f64>, v| {
            Some(best.map_or(v, |b| b.min(v)))
        })
}

/// `--check`: the CI regression gate. Re-times [`CHECK_WORKLOADS`] on the
/// current binary and fails if any fresh median exceeds
/// [`REGRESSION_FACTOR`] × a committed reference from *any* of the
/// `BENCH_PR*.json` trajectory files — so a regression against PR 5's or
/// PR 7's recorded medians fails even if the latest baseline got slower.
fn run_check(sizes: &Sizes) -> DynResult<()> {
    let mut current = Vec::new();
    for name in CHECK_WORKLOADS {
        let ms = time_workload(name, sizes);
        eprintln!("[perf_report]   {name}: {ms:.3} ms (current)");
        current.push((name, ms));
    }
    let mut failures = Vec::new();
    // Each committed file gates only the workloads it carries (the fleet
    // appears first in BENCH_PR8.json, the PR7-era files predate it), but
    // every CHECK workload must find a reference in at least one file —
    // otherwise the gate would silently stop covering it.
    let mut matched = vec![false; current.len()];
    for file in COMMITTED_REPORTS {
        let path = repo_root().join(file);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("missing committed report {}: {e}", path.display()))?;
        let report =
            Json::parse(&text).map_err(|e| format!("bad JSON in {}: {e}", path.display()))?;
        for (slot, (name, ms)) in current.iter().enumerate() {
            let Some(reference) = committed_reference(&report, name) else {
                continue;
            };
            matched[slot] = true;
            let limit = reference * REGRESSION_FACTOR;
            let verdict = if *ms <= limit { "ok" } else { "REGRESSION" };
            eprintln!(
                "[perf_report]   {name} vs {file}: {ms:.3} ms <= {limit:.3} ms \
                 ({reference:.3} x {REGRESSION_FACTOR}) .. {verdict}"
            );
            if *ms > limit {
                failures.push(format!(
                    "{name}: {ms:.3} ms > {limit:.3} ms ({file} reference {reference:.3} ms \
                     x {REGRESSION_FACTOR})"
                ));
            }
        }
    }
    for (slot, (name, _)) in current.iter().enumerate() {
        if !matched[slot] {
            return Err(format!("no committed report carries a reference for {name}").into());
        }
    }
    if !failures.is_empty() {
        return Err(format!("regression gate failed:\n  {}", failures.join("\n  ")).into());
    }
    println!("perf_report check PASS");
    Ok(())
}

/// `--smoke`: both phases at tiny scale against a temp file; asserts the
/// schema round-trips but never judges the timings.
fn run_smoke() -> DynResult<()> {
    let tmp = std::env::temp_dir().join(format!("ibrar-perf-smoke-{}.json", std::process::id()));
    let sizes = Sizes::smoke();
    let result = run("baseline", &tmp, &sizes).and_then(|()| run("head", &tmp, &sizes));
    let _ = std::fs::remove_file(&tmp);
    result?;
    println!("perf_report smoke PASS");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut phase = String::from("head");
    let mut out_path = default_out();
    let mut reps = 15usize;
    let mut smoke = false;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--phase" => {
                i += 1;
                phase = args.get(i).cloned().unwrap_or_else(|| usage());
                if phase != "baseline" && phase != "head" {
                    usage();
                }
            }
            "--out" => {
                i += 1;
                out_path = PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--smoke" => smoke = true,
            "--check" => check = true,
            _ => usage(),
        }
        i += 1;
    }
    tel::init_from_env();
    let result = if smoke {
        run_smoke()
    } else if check {
        run_check(&Sizes::full(reps))
    } else {
        run(&phase, &out_path, &Sizes::full(reps))
    };
    if let Err(e) = result {
        eprintln!("[perf_report] FAILED: {e}");
        std::process::exit(1);
    }
}
