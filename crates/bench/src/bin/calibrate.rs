//! Diagnostic: measures the CE-baseline clean and PGD accuracy on every
//! SynthVision preset, optionally sweeping the dataset contrast. Used to
//! keep the synthetic tasks in the paper's difficulty regime (high natural
//! accuracy, near-zero CE robustness).
//!
//! ```sh
//! cargo run --release -p ibrar-bench --bin calibrate -- --contrast-sweep
//! ```

use ibrar::{TrainMethod, Trainer, TrainerConfig};
use ibrar_analysis::TextTable;
use ibrar_attacks::{clean_accuracy, robust_accuracy, Pgd};
use ibrar_bench::{Arch, ExpResult, Scale};
use ibrar_data::{SynthVision, SynthVisionConfig};

fn measure(config: &SynthVisionConfig, arch: Arch, scale: &Scale) -> ExpResult<(f32, f32)> {
    let data = SynthVision::generate(config, 7)?;
    let model = arch.build(config.num_classes, 0)?;
    let cfg = TrainerConfig::new(TrainMethod::Standard)
        .with_epochs(scale.epochs)
        .with_batch_size(scale.batch);
    Trainer::new(cfg).train(model.as_ref(), &data.train, &data.test)?;
    let natural = clean_accuracy(model.as_ref(), &data.test, 64)? * 100.0;
    let eval = data.test.take(scale.eval)?;
    let adv = robust_accuracy(model.as_ref(), &Pgd::paper_default(), &eval, 32)? * 100.0;
    Ok((natural, adv))
}

fn main() -> ExpResult<()> {
    let scale = Scale::from_args();
    let sweep = std::env::args().any(|a| a == "--contrast-sweep");
    ibrar_bench::run_binary("calibrate", &scale, |scale| {
        let mut table = TextTable::new(vec!["Dataset", "Contrast", "Natural %", "PGD^10 %"]);
        if sweep {
            for contrast in [1.0f32, 0.6, 0.45, 0.35, 0.25, 0.18] {
                let config = SynthVisionConfig::cifar10_like()
                    .with_sizes(scale.train, scale.test)
                    .with_contrast(contrast);
                let (nat, adv) = measure(&config, Arch::Vgg, scale)?;
                table.row(vec![
                    config.name.clone(),
                    format!("{contrast}"),
                    format!("{nat:.2}"),
                    format!("{adv:.2}"),
                ]);
            }
        } else {
            let presets = [
                (SynthVisionConfig::cifar10_like(), Arch::Vgg),
                (SynthVisionConfig::cifar100_like(), Arch::Wrn),
                (SynthVisionConfig::svhn_like(), Arch::Vgg),
                (SynthVisionConfig::tiny_imagenet_like(), Arch::Vgg32),
            ];
            for (config, arch) in presets {
                let config = config.with_sizes(scale.train, scale.test);
                let (nat, adv) = measure(&config, arch, scale)?;
                table.row(vec![
                    config.name.clone(),
                    format!("{}", config.contrast),
                    format!("{nat:.2}"),
                    format!("{adv:.2}"),
                ]);
            }
        }
        Ok(table.to_string())
    })
}
