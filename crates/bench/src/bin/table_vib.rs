//! Runs the {CE, HSIC-IB, VIB} x attack-suite comparison matrix (see
//! EXPERIMENTS.md "VIB three-way comparison"). Flags: --quick | --full |
//! --train N | --test N | --epochs N | --seeds N | --eval N.
//!
//! Set `IBRAR_LOG` / `IBRAR_TELEMETRY` to capture telemetry (see README
//! "Observability"); a run manifest is written next to the output table.

fn main() -> ibrar_bench::ExpResult<()> {
    let scale = ibrar_bench::Scale::from_args();
    ibrar_bench::run_binary(
        "table_vib",
        &scale,
        ibrar_bench::experiments::table_vib::run,
    )
}
