//! Diagnostic: grid over SGD hyperparameters (weight decay × learning rate
//! × epochs) for CE training on `synth_cifar10`, to pick a stable training
//! recipe for the reproduction's scale. The paper's recipe (lr 0.01, wd
//! 1e-2, 60 epochs) is tuned for full CIFAR training and is unstable at
//! minutes-scale budgets.
//!
//! ```sh
//! cargo run --release -p ibrar-bench --bin tune_sgd
//! ```

use ibrar::{TrainMethod, Trainer, TrainerConfig};
use ibrar_analysis::TextTable;
use ibrar_attacks::{clean_accuracy, robust_accuracy, Pgd};
use ibrar_bench::{Arch, ExpResult, Scale};
use ibrar_data::{SynthVision, SynthVisionConfig};
use ibrar_nn::{SgdConfig, StepLr};

fn main() -> ExpResult<()> {
    let scale = Scale::from_args();
    ibrar_bench::run_binary("tune_sgd", &scale, run)
}

fn run(scale: &Scale) -> ExpResult<String> {
    let config = SynthVisionConfig::cifar10_like().with_sizes(scale.train, scale.test);
    let data = SynthVision::generate(&config, 7)?;
    let mut table = TextTable::new(vec!["wd", "lr", "epochs", "Natural %", "PGD %"]);
    for wd in [1e-2f32, 1e-3, 5e-4] {
        for lr in [0.01f32, 0.03] {
            for epochs in [6usize, 10] {
                let model = Arch::Vgg.build(10, 0)?;
                let mut cfg = TrainerConfig::new(TrainMethod::Standard)
                    .with_epochs(epochs)
                    .with_batch_size(scale.batch);
                cfg.sgd = SgdConfig {
                    lr,
                    momentum: 0.9,
                    weight_decay: wd,
                };
                cfg.schedule = StepLr::new(lr, 20, 0.2);
                Trainer::new(cfg).train(model.as_ref(), &data.train, &data.test)?;
                let natural = clean_accuracy(model.as_ref(), &data.test, 64)? * 100.0;
                let eval = data.test.take(scale.eval)?;
                let adv =
                    robust_accuracy(model.as_ref(), &Pgd::paper_default(), &eval, 32)? * 100.0;
                table.row(vec![
                    format!("{wd}"),
                    format!("{lr}"),
                    format!("{epochs}"),
                    format!("{natural:.2}"),
                    format!("{adv:.2}"),
                ]);
            }
        }
    }
    Ok(table.to_string())
}
