//! **Table 4**: ablation study. Six rows per architecture:
//! (1) CE only, (2) the MI loss `L`, (3) compression term only,
//! (4) relevance term only, (5) CE + feature mask (`FC`), (6) `L + FC`
//! (full IB-RAR). Columns: Natural / PGD / NIFGSM / FGSM.

use crate::{train_and_eval, Arch, EvalResult, ExpResult, Scale};
use ibrar::{IbLossConfig, TrainMethod};
use ibrar_analysis::TextTable;
use ibrar_data::{SynthVision, SynthVisionConfig};

fn ablation_row(name: &str, r: &EvalResult) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{:.2}", r.natural),
        r.attack_acc("PGD")
            .map(|a| format!("{a:.2}"))
            .unwrap_or_default(),
        r.attack_acc("NIFGSM")
            .map(|a| format!("{a:.2}"))
            .unwrap_or_default(),
        r.attack_acc("FGSM")
            .map(|a| format!("{a:.2}"))
            .unwrap_or_default(),
    ]
}

/// Runs the experiment and renders the table.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run(scale: &Scale) -> ExpResult<String> {
    let config = SynthVisionConfig::cifar10_like().with_sizes(scale.train, scale.test);
    let data = SynthVision::generate(&config, 44)?;
    let k = config.num_classes;
    let mut out = String::from("Table 4: ablation (synth_cifar10, no adversarial training)\n\n");
    for arch in [Arch::Vgg, Arch::Resnet] {
        let ib = arch.paper_ib();
        // (name, ib-config, mask)
        let rows: Vec<(&str, Option<IbLossConfig>, bool)> = vec![
            ("(1) CE", None, false),
            ("(2) L", Some(ib.clone()), false),
            (
                "(3) CE + a*I(X,T)",
                Some(ib.clone().compression_only()),
                false,
            ),
            (
                "(4) CE - b*I(Y,T)",
                Some(ib.clone().relevance_only()),
                false,
            ),
            ("(5) CE + FC", None, true),
            ("(6) L + FC (IB-RAR)", Some(ib.clone()), true),
        ];
        let mut table = TextTable::new(vec!["Inputs", "Natural", "PGD", "NIFGSM", "FGSM"]);
        for (name, ib_cfg, mask) in rows {
            let result = train_and_eval(
                arch,
                TrainMethod::Standard,
                ib_cfg,
                mask,
                &data.train,
                &data.test,
                scale,
                k,
            )?;
            table.row(ablation_row(name, &result));
        }
        out.push_str(&format!("--- {} ---\n", arch.name()));
        out.push_str(&table.render());
        out.push('\n');
    }
    Ok(out)
}
