//! **Table 3**: per-layer IB robustness for VGG16 on CIFAR-10 — train one
//! network per hidden layer with single-layer IB loss, plus "All Layers" and
//! "Rob. Layers" rows, and report PGD and clean accuracy.

use crate::{train_and_eval, Arch, ExpResult, Scale};
use ibrar::{
    discover_robust_layers, robust_indices, IbLossConfig, LayerPolicy, RobustLayerConfig,
    TrainMethod,
};
use ibrar_analysis::TextTable;
use ibrar_data::{SynthVision, SynthVisionConfig};
use ibrar_nn::ImageModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment and renders the table.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run(scale: &Scale) -> ExpResult<String> {
    let config = SynthVisionConfig::cifar10_like().with_sizes(scale.train, scale.test);
    let data = SynthVision::generate(&config, 33)?;
    let k = config.num_classes;

    let factory = move |seed: u64| -> ibrar::Result<Box<dyn ImageModel>> {
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(Box::new(
            ibrar_nn::VggMini::new(ibrar_nn::VggConfig::tiny(k), &mut rng)
                .map_err(ibrar::IbrarError::from)?,
        ))
    };
    let discovery_cfg = RobustLayerConfig {
        epochs: scale.epochs,
        batch_size: scale.batch,
        eval_samples: scale.eval,
        ..RobustLayerConfig::default()
    };
    let reports = discover_robust_layers(&factory, &data.train, &data.test, &discovery_cfg)?;

    let mut table = TextTable::new(vec!["Layer", "Adv. acc.", "Test acc.", "Robust?"]);
    for report in &reports {
        table.row(vec![
            report.name.clone(),
            format!("{:.2}", report.adv_acc * 100.0),
            format!("{:.2}", report.test_acc * 100.0),
            if report.layer.is_none() {
                "-".to_string()
            } else if report.robust {
                "yes".to_string()
            } else {
                "no".to_string()
            },
        ]);
    }

    // "All Layers" and "Rob. Layers" rows: full IB training.
    for (label, policy) in [
        ("All Layers", LayerPolicy::All),
        ("Rob. Layers", LayerPolicy::Robust),
    ] {
        let result = train_and_eval(
            Arch::Vgg,
            TrainMethod::Standard,
            Some(IbLossConfig::substrate_vgg().with_policy(policy)),
            true,
            &data.train,
            &data.test,
            scale,
            k,
        )?;
        table.row(vec![
            label.to_string(),
            format!("{:.2}", result.attack_acc("PGD").unwrap_or(0.0)),
            format!("{:.2}", result.natural),
            "-".to_string(),
        ]);
    }

    let discovered = robust_indices(&reports);
    let mut out =
        String::from("Table 3: single-layer IB robustness (VGG16, synth_cifar10, PGD^10 eval)\n\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nDiscovered robust layers (margin {:.1}pp over CE): {:?}\n",
        discovery_cfg.margin * 100.0,
        discovered
    ));
    Ok(out)
}
