//! **Figure 2**: IB-based baselines without adversarial training, evaluated
//! under increasing attack strength. Five methods — CE, VIB, HBaR,
//! IB-RAR(all), IB-RAR(rob) — trained on clean `synth_cifar10`, then swept
//! over PGD / CW / NIFGSM optimization steps, plus the clean-accuracy
//! comparison of panel (d).

use crate::{Arch, ExpResult, Scale};
use ibrar::{
    IbLossConfig, LayerPolicy, MaskConfig, TrainMethod, Trainer, TrainerConfig, VibBaseline,
};
use ibrar_analysis::{render_series, Series};
use ibrar_attacks::{robust_accuracy, Attack, CwL2, NiFgsm, Pgd, DEFAULT_ALPHA, DEFAULT_EPS};
use ibrar_data::{SynthVision, SynthVisionConfig};
use ibrar_nn::{ImageModel, VggConfig, VggMini};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment and renders the three sweeps plus clean accuracies.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run(scale: &Scale) -> ExpResult<String> {
    let config = SynthVisionConfig::cifar10_like().with_sizes(scale.train, scale.test);
    let data = SynthVision::generate(&config, 77)?;
    let k = config.num_classes;

    // Build and train the five methods.
    let mut models: Vec<(String, Box<dyn ImageModel>)> = Vec::new();
    let trainer_base = |ib: Option<IbLossConfig>, mask: bool| {
        let mut cfg = TrainerConfig::new(TrainMethod::Standard)
            .with_epochs(scale.epochs)
            .with_batch_size(scale.batch);
        if let Some(ib) = ib {
            cfg = cfg.with_ib(ib);
        }
        if mask {
            cfg = cfg.with_mask(MaskConfig::default());
        }
        cfg
    };

    // CE only.
    {
        let model = Arch::Vgg.build(k, 10)?;
        Trainer::new(trainer_base(None, false)).train(model.as_ref(), &data.train, &data.test)?;
        models.push(("CE only".into(), model));
    }
    // VIB.
    {
        let mut rng = StdRng::seed_from_u64(11);
        let inner = VggMini::new(VggConfig::tiny(k), &mut rng)?;
        let fc_width = inner.config().fc_width;
        let vib = VibBaseline::new(inner, fc_width, fc_width / 2, 0.01, &mut rng)?;
        Trainer::new(trainer_base(None, false)).train(&vib, &data.train, &data.test)?;
        models.push(("VIB".into(), Box::new(vib)));
    }
    // HBaR (HSIC bottleneck on all layers).
    {
        let model = Arch::Vgg.build(k, 12)?;
        Trainer::new(trainer_base(Some(IbLossConfig::hbar()), false)).train(
            model.as_ref(),
            &data.train,
            &data.test,
        )?;
        models.push(("HBaR".into(), model));
    }
    // IB-RAR(all).
    {
        let model = Arch::Vgg.build(k, 13)?;
        Trainer::new(trainer_base(
            Some(IbLossConfig::substrate_vgg().with_policy(LayerPolicy::All)),
            true,
        ))
        .train(model.as_ref(), &data.train, &data.test)?;
        models.push(("IB-RAR(all)".into(), model));
    }
    // IB-RAR(rob).
    {
        let model = Arch::Vgg.build(k, 14)?;
        Trainer::new(trainer_base(
            Some(IbLossConfig::substrate_vgg().with_policy(LayerPolicy::Robust)),
            true,
        ))
        .train(model.as_ref(), &data.train, &data.test)?;
        models.push(("IB-RAR(rob)".into(), model));
    }

    let eval_set = data.test.take(scale.eval)?;
    let steps = [1usize, 2, 5, 10, 20];
    let steps: Vec<usize> = if scale.epochs <= 2 {
        vec![1, 5, 10]
    } else {
        steps.to_vec()
    };
    let sweep = |attack_for: &dyn Fn(usize) -> Box<dyn Attack>| -> ExpResult<Vec<Series>> {
        let mut all = Vec::new();
        for (name, model) in &models {
            let mut points = Vec::new();
            for &s in &steps {
                let attack = attack_for(s);
                let acc = robust_accuracy(model.as_ref(), attack.as_ref(), &eval_set, 32)? * 100.0;
                points.push((s as f32, acc));
            }
            all.push(Series::new(name.clone(), points));
        }
        Ok(all)
    };

    let mut out = String::from("Figure 2: IB baselines under increasing attack strength\n\n");
    out.push_str("(a) PGD steps sweep (accuracy %)\n");
    out.push_str(&render_series(
        "steps",
        &sweep(&|s| Box::new(Pgd::new(DEFAULT_EPS, DEFAULT_ALPHA, s)) as Box<dyn Attack>)?,
    ));
    out.push_str("\n(b) CW steps sweep (accuracy %)\n");
    out.push_str(&render_series(
        "steps",
        &sweep(&|s| Box::new(CwL2::new(1.0, 0.0, s * 2, 0.01)) as Box<dyn Attack>)?,
    ));
    out.push_str("\n(c) NIFGSM steps sweep (accuracy %)\n");
    out.push_str(&render_series(
        "steps",
        &sweep(&|s| Box::new(NiFgsm::new(DEFAULT_EPS, DEFAULT_ALPHA, s)) as Box<dyn Attack>)?,
    ));

    out.push_str("\n(d) clean accuracy at the last epoch (%)\n");
    for (name, model) in &models {
        let acc = ibrar_attacks::clean_accuracy(model.as_ref(), &data.test, 64)? * 100.0;
        out.push_str(&format!("  {name:<12} {acc:.2}\n"));
    }
    Ok(out)
}
