//! **Table 2**: PGD / TRADES / MART ± IB-RAR with ResNet-18 on CIFAR-10 and
//! WRN-28-10 on CIFAR-100 (here: `ResNetMini` on `synth_cifar10`,
//! `WideResNetMini` on `synth_cifar100`).

use crate::{attack_row, scaled_method, train_and_eval, Arch, ExpResult, Scale};
use ibrar::{LayerPolicy, TrainMethod};
use ibrar_analysis::TextTable;
use ibrar_data::{SynthVision, SynthVisionConfig};

/// Runs the experiment and renders the table.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run(scale: &Scale) -> ExpResult<String> {
    let mut out =
        String::from("Table 2: adversarial training benchmarks ± IB-RAR (residual nets)\n\n");
    let datasets = [
        (
            SynthVisionConfig::cifar10_like(),
            Arch::Resnet,
            "synth_cifar10 (CIFAR-10 stand-in)",
        ),
        (
            SynthVisionConfig::cifar100_like(),
            Arch::Wrn,
            "synth_cifar100 (CIFAR-100 stand-in)",
        ),
    ];
    for (config, arch, label) in datasets {
        let config = config.with_sizes(scale.train, scale.test);
        let data = SynthVision::generate(&config, 22)?;
        let k = config.num_classes;
        let mut table = TextTable::new(vec![
            "Inputs", "Natural", "PGD", "CW", "FGSM", "FAB", "NIFGSM",
        ]);
        for method in [
            TrainMethod::pgd_at_default(),
            TrainMethod::trades_default(),
            TrainMethod::mart_default(),
        ] {
            let method = scaled_method(method, scale);
            let plain =
                train_and_eval(arch, method, None, false, &data.train, &data.test, scale, k)?;
            table.row(attack_row(method.name(), &plain));
            let ib = arch.paper_ib().with_policy(LayerPolicy::Robust);
            let ours = train_and_eval(
                arch,
                method,
                Some(ib),
                true,
                &data.train,
                &data.test,
                scale,
                k,
            )?;
            table.row(attack_row(&format!("{} (IB-RAR)", method.name()), &ours));
        }
        out.push_str(&format!("--- {label}, {} ---\n", arch.name()));
        out.push_str(&table.render());
        out.push('\n');
    }
    Ok(out)
}
