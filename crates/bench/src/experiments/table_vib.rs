//! **VIB comparison matrix**: the three-way {CE, HSIC-IB, VIB} robustness
//! comparison under the full five-attack suite — the study "A Closer Look
//! at the Adversarial Robustness of Information Bottleneck Models"
//! (PAPERS.md) runs, at this repo's scale.
//!
//! All three heads share the same `VggMini` backbone, training method
//! (Standard — the IB families are the defense under test, not AT), data,
//! and evaluation budget; only the bottleneck mechanism differs:
//!
//! * **CE** — plain cross-entropy, no bottleneck;
//! * **HSIC-IB** — the paper's own HSIC regularizer on the robust layers;
//! * **VIB** — the deterministic variational head (`VibConfig`), whose
//!   frozen per-batch noise makes this whole table bitwise reproducible
//!   at any `IBRAR_THREADS` (the seed policy is documented in
//!   EXPERIMENTS.md).

use crate::{attack_row, eval_model, Arch, ExpResult, Scale};
use ibrar::{LayerPolicy, TrainMethod, Trainer, TrainerConfig, VibConfig};
use ibrar_analysis::TextTable;
use ibrar_data::{SynthVision, SynthVisionConfig};
use ibrar_nn::{ImageModel, VggConfig, VggMini};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment and renders the comparison table.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run(scale: &Scale) -> ExpResult<String> {
    let config = SynthVisionConfig::cifar10_like().with_sizes(scale.train, scale.test);
    let data = SynthVision::generate(&config, 77)?;
    let k = config.num_classes;

    let trainer = |ib: bool| {
        let mut cfg = TrainerConfig::new(TrainMethod::Standard)
            .with_epochs(scale.epochs)
            .with_batch_size(scale.batch)
            .with_seed(0);
        if ib {
            cfg = cfg.with_ib(Arch::Vgg.paper_ib().with_policy(LayerPolicy::Robust));
        }
        cfg
    };

    let mut models: Vec<(&str, Box<dyn ImageModel>)> = Vec::new();
    {
        let model = Arch::Vgg.build(k, 20)?;
        Trainer::new(trainer(false)).train(model.as_ref(), &data.train, &data.test)?;
        models.push(("CE", model));
    }
    {
        let model = Arch::Vgg.build(k, 21)?;
        Trainer::new(trainer(true)).train(model.as_ref(), &data.train, &data.test)?;
        models.push(("HSIC-IB", model));
    }
    {
        let mut rng = StdRng::seed_from_u64(22);
        let inner = VggMini::new(VggConfig::tiny(k), &mut rng)?;
        let vib = VibConfig::paper_default().wrap(inner, &mut rng)?;
        Trainer::new(trainer(false)).train(&vib, &data.train, &data.test)?;
        models.push(("VIB", Box::new(vib)));
    }

    let mut table = TextTable::new(
        ["Head", "Natural", "PGD", "CW", "FGSM", "FAB", "NIFGSM"]
            .iter()
            .map(ToString::to_string)
            .collect(),
    );
    for (name, model) in &models {
        let result = eval_model(model.as_ref(), &data.test, scale)?;
        table.row(attack_row(name, &result));
    }

    let mut out = String::from(
        "VIB matrix: {CE, HSIC-IB, VIB} x {clean + 5 attacks} (VGG16/synth_cifar10, Standard training)\n\n",
    );
    out.push_str(&table.render());
    out.push_str("\nAll heads share one backbone/seed budget; VIB eval runs the deterministic mu-only path.\n");
    Ok(out)
}
