//! **Figure 5**: the information plane. Track `I(X;T)` and `I(Y;T)` of the
//! fourth conv block while training with the MI loss versus CE only. The
//! paper's observation: the MI-loss network compresses (`I(X;T)` shrinks)
//! while staying label-informative; the CE network never compresses.

use crate::{Arch, ExpResult, Scale};
use ibrar::{IbLoss, IbLossConfig, LayerPolicy};
use ibrar_analysis::{render_series, Series};
use ibrar_data::{SynthVision, SynthVisionConfig};
use ibrar_infotheory::{BinningConfig, InfoPlane};
use ibrar_nn::{Mode, Session, Sgd, SgdConfig};
use ibrar_tensor::{normal, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Projects `[n, ...]` features onto `dims` fixed random directions.
///
/// The pattern-hash MI estimator saturates at `log2(n)` when every sample's
/// binned activation vector is unique — inevitable for raw conv features.
/// A coarse random projection (the standard remedy in the information-plane
/// literature) restores sensitivity to compression.
fn project(features: &Tensor, directions: &Tensor) -> Tensor {
    let n = features.shape()[0];
    let d = features.len() / n;
    features
        .reshape(&[n, d])
        .expect("volume preserved")
        .matmul(directions)
        .expect("projection dims agree")
}

/// Runs the experiment with a hand-rolled loop (the per-iteration recording
/// hook is specific to this figure) and renders both trajectories.
///
/// # Errors
///
/// Propagates training/recording errors.
pub fn run(scale: &Scale) -> ExpResult<String> {
    let config = SynthVisionConfig::cifar10_like().with_sizes(scale.train, scale.test);
    let data = SynthVision::generate(&config, 111)?;
    let k = config.num_classes;
    let record_every = 4usize;
    let probe = data.train.take(128.min(data.train.len()))?;
    let probe_batch = probe.as_batch();
    // Fixed random projection for the MI probe (see `project`).
    let mut proj_rng = StdRng::seed_from_u64(999);
    // conv block 4 of VggMini: 48 channels at 2x2 = 192 dims.
    let feature_dim = {
        let tape = ibrar_autograd::Tape::new();
        let sess = Session::new(&tape);
        let probe_model = Arch::Vgg.build(k, 0)?;
        let xp = tape.leaf(probe_batch.images.clone());
        let out = probe_model.forward(&sess, xp, Mode::Eval)?;
        let t = out.hidden[3].var.value();
        t.len() / t.shape()[0]
    };
    let directions = normal(
        &[feature_dim, 6],
        0.0,
        (1.0 / feature_dim as f32).sqrt(),
        &mut proj_rng,
    );

    let mut out =
        String::from("Figure 5: information plane of conv block 4 (VGG16, synth_cifar10)\n\n");
    let mut all_series = Vec::new();
    for (name, use_mi_loss) in [("MI loss", true), ("CE only", false)] {
        let model = Arch::Vgg.build(k, 40)?;
        let mut opt = Sgd::new(model.params(), SgdConfig::substrate());
        let mut plane = InfoPlane::new(k, BinningConfig::new(4));
        let ib_cfg = IbLossConfig::substrate_vgg().with_policy(LayerPolicy::Robust);
        let mut iteration = 0usize;
        for epoch in 0..scale.epochs {
            for batch in data.train.batches(scale.batch, epoch as u64) {
                if batch.len() < 2 {
                    continue;
                }
                let tape = ibrar_autograd::Tape::new();
                let sess = Session::new(&tape);
                let x = tape.leaf(batch.images.clone());
                let out_fwd = model.forward(&sess, x, Mode::Train)?;
                let mut loss = out_fwd.logits.cross_entropy(&batch.labels)?;
                if use_mi_loss {
                    let reg =
                        IbLoss::regularizer(&sess, x, &out_fwd.hidden, &batch.labels, k, &ib_cfg)?;
                    loss = loss.add(reg)?;
                }
                sess.backward(loss)?;
                opt.step();
                if iteration.is_multiple_of(record_every) {
                    // Probe conv block 4 (tap index 3) on a fixed batch.
                    let tape2 = ibrar_autograd::Tape::new();
                    let sess2 = Session::new(&tape2);
                    let xp = tape2.leaf(probe_batch.images.clone());
                    let probe_out = model.forward(&sess2, xp, Mode::Eval)?;
                    let t4 = project(&probe_out.hidden[3].var.value(), &directions);
                    plane.record(iteration, &t4, &probe_batch.labels)?;
                }
                iteration += 1;
            }
        }
        let ixt = Series::new(
            format!("{name} I(X;T)"),
            plane
                .points()
                .iter()
                .map(|p| (p.iteration as f32, p.i_xt))
                .collect(),
        );
        let iyt = Series::new(
            format!("{name} I(Y;T)"),
            plane
                .points()
                .iter()
                .map(|p| (p.iteration as f32, p.i_yt))
                .collect(),
        );
        let first = plane.points().first().copied();
        let last = plane.points().last().copied();
        if let (Some(first), Some(last)) = (first, last) {
            out.push_str(&format!(
                "{name}: I(X;T) {:.2} -> {:.2} bits, I(Y;T) {:.2} -> {:.2} bits\n",
                first.i_xt, last.i_xt, first.i_yt, last.i_yt
            ));
        }
        all_series.push(ixt);
        all_series.push(iyt);
    }
    out.push('\n');
    out.push_str(&render_series("iteration", &all_series));
    Ok(out)
}
