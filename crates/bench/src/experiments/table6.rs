//! **Table 6**: adaptive white-box attack (Appendix A.2). The adversary
//! runs PGD on the full IB-RAR loss (`PGD_AD`) instead of cross-entropy.
//! Rows: plain IB-RAR (no adversarial training), AT, AT + IB-RAR.
//! Columns: `PGD_AD^10`, `PGD^10`, `PGD_AD^40`, `PGD^40` (the paper uses
//! 100-step attacks; 40 steps are converged at this scale).

use crate::{scaled_method, Arch, ExpResult, Scale};
use ibrar::{
    AdaptiveIbObjective, IbLossConfig, LayerPolicy, MaskConfig, TrainMethod, Trainer, TrainerConfig,
};
use ibrar_analysis::TextTable;
use ibrar_attacks::{robust_accuracy, Pgd, DEFAULT_ALPHA, DEFAULT_EPS};
use ibrar_data::{Dataset, SynthVision, SynthVisionConfig};
use ibrar_nn::ImageModel;
use std::sync::Arc;

fn train_model(
    scale: &Scale,
    train: &Dataset,
    test: &Dataset,
    k: usize,
    method: TrainMethod,
    ib: bool,
    seed: u64,
) -> ExpResult<Box<dyn ImageModel>> {
    let model = Arch::Vgg.build(k, seed)?;
    let mut cfg = TrainerConfig::new(method)
        .with_epochs(scale.epochs)
        .with_batch_size(scale.batch)
        .with_seed(seed);
    if ib {
        cfg = cfg
            .with_ib(IbLossConfig::substrate_vgg().with_policy(LayerPolicy::Robust))
            .with_mask(MaskConfig::default());
    }
    Trainer::new(cfg).train(model.as_ref(), train, test)?;
    Ok(model)
}

/// Runs the experiment and renders the table.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run(scale: &Scale) -> ExpResult<String> {
    let config = SynthVisionConfig::cifar10_like().with_sizes(scale.train, scale.test);
    let data = SynthVision::generate(&config, 66)?;
    let k = config.num_classes;
    let at = scaled_method(TrainMethod::pgd_at_default(), scale);

    let rows: Vec<(&str, Box<dyn ImageModel>)> = vec![
        (
            "plain (IB-RAR)",
            train_model(
                scale,
                &data.train,
                &data.test,
                k,
                TrainMethod::Standard,
                true,
                1,
            )?,
        ),
        (
            "AT",
            train_model(scale, &data.train, &data.test, k, at, false, 2)?,
        ),
        (
            "AT (IB-RAR)",
            train_model(scale, &data.train, &data.test, k, at, true, 3)?,
        ),
    ];

    let eval_set = data.test.take(scale.eval)?;
    let long_steps = 40;
    let mut table = TextTable::new(vec![
        "Method".to_string(),
        "PGD_AD^10".to_string(),
        "PGD^10".to_string(),
        format!("PGD_AD^{long_steps}"),
        format!("PGD^{long_steps}"),
    ]);
    for (name, model) in &rows {
        let mut cells = vec![name.to_string()];
        for steps in [10usize, long_steps] {
            let adaptive = Pgd::new(DEFAULT_EPS, DEFAULT_ALPHA, steps).with_objective(Arc::new(
                AdaptiveIbObjective::new(
                    IbLossConfig::substrate_vgg().with_policy(LayerPolicy::Robust),
                    k,
                ),
            ));
            let standard = Pgd::new(DEFAULT_EPS, DEFAULT_ALPHA, steps);
            let a = robust_accuracy(model.as_ref(), &adaptive, &eval_set, 32)? * 100.0;
            let s = robust_accuracy(model.as_ref(), &standard, &eval_set, 32)? * 100.0;
            cells.push(format!("{a:.2}"));
            cells.push(format!("{s:.2}"));
        }
        table.row(cells);
    }
    let mut out = String::from(
        "Table 6: adaptive white-box attack (PGD on the IB-RAR loss, VGG16/synth_cifar10)\n\n",
    );
    out.push_str(&table.render());
    Ok(out)
}
