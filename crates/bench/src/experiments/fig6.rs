//! **Figure 6**: regularizer-weight sweep. The x-axis is β with
//! α = 0.1·β (the paper's coupling). Panel (a): PGD-AT VGG16 evaluated by
//! PGD/CW/FGSM; panel (b): TRADES ResNet-18 evaluated by PGD/FAB/FGSM.

use crate::{scaled_method, train_and_eval, Arch, ExpResult, Scale};
use ibrar::{IbLossConfig, LayerPolicy, TrainMethod};
use ibrar_analysis::{render_series, Series};
use ibrar_data::{SynthVision, SynthVisionConfig};

/// Runs the sweep and renders both panels.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run(scale: &Scale) -> ExpResult<String> {
    let config = SynthVisionConfig::cifar10_like().with_sizes(scale.train, scale.test);
    let data = SynthVision::generate(&config, 123)?;
    let k = config.num_classes;
    // The paper sweeps β ∈ {4.0 … 0.0}; shrink the grid at quick scale.
    let betas: Vec<f32> = if scale.epochs <= 2 {
        vec![0.0, 0.1, 1.0]
    } else {
        vec![0.0, 0.02, 0.1, 0.5, 1.0, 2.0, 4.0]
    };

    let panels = [
        (
            "(a) PGD-AT, VGG16, synth_cifar10",
            Arch::Vgg,
            scaled_method(TrainMethod::pgd_at_default(), scale),
            ["PGD", "CW", "FGSM"],
        ),
        (
            "(b) TRADES, ResNet-18, synth_cifar10",
            Arch::Resnet,
            scaled_method(TrainMethod::trades_default(), scale),
            ["PGD", "FAB", "FGSM"],
        ),
    ];

    let mut out = String::from("Figure 6: accuracy vs regularizer weight (alpha = 0.1*beta)\n\n");
    for (label, arch, method, attack_names) in panels {
        let mut series: Vec<Series> = attack_names
            .iter()
            .map(|n| Series::new(n.to_string(), Vec::new()))
            .collect();
        let mut natural = Series::new("Natural", Vec::new());
        for &beta in &betas {
            let ib = (beta > 0.0)
                .then(|| IbLossConfig::new(0.1 * beta, beta).with_policy(LayerPolicy::Robust));
            let result = train_and_eval(
                arch,
                method,
                ib,
                beta > 0.0,
                &data.train,
                &data.test,
                scale,
                k,
            )?;
            natural.points.push((beta, result.natural));
            for (series, name) in series.iter_mut().zip(attack_names.iter()) {
                if let Some(acc) = result.attack_acc(name) {
                    series.points.push((beta, acc));
                }
            }
        }
        let mut all = vec![natural];
        all.extend(series);
        out.push_str(&format!("{label}\n"));
        out.push_str(&render_series("beta", &all));
        out.push('\n');
    }
    Ok(out)
}
