//! **Table 5**: adversarial misclassification tendency. Train VGG16 with CE
//! on `synth_cifar10`, attack the test set with PGD, and count which class
//! each adversarial example is predicted as (top 4 per true class). The
//! planted shared-feature pairs (car↔truck, cat↔dog, plane↔ship, …) should
//! dominate, reproducing the paper's bidirectional confusions.

use crate::{Arch, ExpResult, Scale};
use ibrar::{TrainMethod, Trainer, TrainerConfig};
use ibrar_analysis::{tendency_table, TextTable};
use ibrar_attacks::Pgd;
use ibrar_data::{SynthVision, SynthVisionConfig};

/// Runs the experiment and renders the table.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run(scale: &Scale) -> ExpResult<String> {
    let config = SynthVisionConfig::cifar10_like().with_sizes(scale.train, scale.test);
    let data = SynthVision::generate(&config, 55)?;
    let model = Arch::Vgg.build(config.num_classes, 5)?;
    let trainer_cfg = TrainerConfig::new(TrainMethod::Standard)
        .with_epochs(scale.epochs)
        .with_batch_size(scale.batch);
    Trainer::new(trainer_cfg).train(model.as_ref(), &data.train, &data.test)?;

    let names: Vec<String> = (0..config.num_classes)
        .map(|i| data.class_name(i))
        .collect();
    let table = tendency_table(
        model.as_ref(),
        &Pgd::paper_default(),
        &data.test,
        &names,
        4,
        32,
    )?;

    let mut text = TextTable::new(vec!["Target class", "Top-1", "Top-2", "Top-3", "Top-4"]);
    for row in &table.rows {
        let mut cells = vec![format!("{} :", row.name)];
        for (name, count) in row.top.iter().take(4) {
            cells.push(format!("{name}-{count}"));
        }
        text.row(cells);
    }

    // Check the planted shared pairs appear in the top confusions.
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut pair_lines = String::new();
    for pair in &config.shared_pairs {
        for (a, b) in [(pair.a, pair.b), (pair.b, pair.a)] {
            total += 1;
            let partner = names[b].clone();
            let hit = table.partner_in_top(a, &partner, 4);
            hits += hit as usize;
            pair_lines.push_str(&format!(
                "  {} -> {} in top-4: {}\n",
                names[a],
                partner,
                if hit { "yes" } else { "no" }
            ));
        }
    }

    let mut out =
        String::from("Table 5: adversarial misclassification tendency (VGG16 + CE, PGD^10)\n\n");
    out.push_str(&text.render());
    out.push_str(&format!(
        "\nPlanted shared-feature pairs found in top-4 confusions: {hits}/{total}\n{pair_lines}"
    ));
    Ok(out)
}
