//! **Figure 4**: convergence on SVHN. The paper observes MART on
//! VGG16/SVHN stalling in an under-fitting loop, which training with the MI
//! loss for just the first epoch breaks; PGD-AT converges either way but
//! faster with IB-RAR. Here the four panels become four per-epoch accuracy
//! series on `synth_svhn`.

use crate::{scaled_method, Arch, ExpResult, Scale};
use ibrar::{IbLossConfig, LayerPolicy, TrainMethod, Trainer, TrainerConfig};
use ibrar_analysis::{render_series, Series};
use ibrar_data::{SynthVision, SynthVisionConfig};

/// Runs the experiment and renders the per-epoch accuracy series.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run(scale: &Scale) -> ExpResult<String> {
    let config = SynthVisionConfig::svhn_like().with_sizes(scale.train, scale.test);
    let data = SynthVision::generate(&config, 99)?;
    let k = config.num_classes;
    let epochs = scale.epochs.max(4);
    let mart = scaled_method(TrainMethod::mart_default(), scale);
    let at = scaled_method(TrainMethod::pgd_at_default(), scale);

    let variants: Vec<(&str, TrainMethod, bool)> = vec![
        ("MART+IB(first epoch)", mart, true),
        ("MART plain", mart, false),
        ("AT+IB-RAR", at, true),
        ("AT plain", at, false),
    ];

    let mut natural_series = Vec::new();
    let mut adv_series = Vec::new();
    for (i, (name, method, ib_first)) in variants.iter().enumerate() {
        let model = Arch::Vgg.build(k, 30 + i as u64)?;
        let mut cfg = TrainerConfig::new(*method)
            .with_epochs(epochs)
            .with_batch_size(scale.batch)
            .with_adversarial_tracking();
        if *ib_first {
            cfg = cfg.with_ib(IbLossConfig::substrate_vgg().with_policy(LayerPolicy::Robust));
            if name.contains("first epoch") {
                cfg = cfg.with_ib_first_epoch_only();
            }
        }
        let report = Trainer::new(cfg).train(model.as_ref(), &data.train, &data.test)?;
        natural_series.push(Series::new(
            format!("{name} [nat]"),
            report
                .epochs
                .iter()
                .map(|e| (e.epoch as f32, e.natural_acc * 100.0))
                .collect(),
        ));
        adv_series.push(Series::new(
            format!("{name} [adv]"),
            report
                .epochs
                .iter()
                .map(|e| (e.epoch as f32, e.adversarial_acc.unwrap_or(0.0) * 100.0))
                .collect(),
        ));
    }

    let mut out =
        String::from("Figure 4: convergence on synth_svhn (VGG16, accuracy % per epoch)\n\n");
    out.push_str("Natural accuracy:\n");
    out.push_str(&render_series("epoch", &natural_series));
    out.push_str("\nAdversarial (PGD^10) accuracy:\n");
    out.push_str(&render_series("epoch", &adv_series));
    Ok(out)
}
