//! One module per paper table/figure. Each exposes
//! `run(scale) -> ExpResult<String>` returning the rendered result block
//! that the corresponding binary prints and saves.

pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table_vib;
