//! **Figure 3**: t-SNE of penultimate features for four networks — CE,
//! IB-RAR (clean training), TRADES, TRADES + IB-RAR. The paper shows the
//! clusters visually; here the geometry is quantified with the
//! inter/intra-cluster separation ratio (larger = cleaner clusters), and a
//! coarse ASCII scatter is printed for inspection.

use crate::{scaled_method, Arch, ExpResult, Scale};
use ibrar::{IbLossConfig, LayerPolicy, MaskConfig, TrainMethod, Trainer, TrainerConfig};
use ibrar_analysis::{cluster_separation, tsne, TsneConfig};
use ibrar_data::{SynthVision, SynthVisionConfig};
use ibrar_nn::{ImageModel, Mode, Session};
use ibrar_tensor::Tensor;

/// Extracts penultimate (last hidden tap) features for a test subset.
fn penultimate_features(model: &dyn ImageModel, images: &Tensor) -> ExpResult<Tensor> {
    let tape = ibrar_autograd::Tape::new();
    let sess = Session::new(&tape);
    let x = tape.leaf(images.clone());
    let out = model.forward(&sess, x, Mode::Eval)?;
    let tap = out
        .hidden
        .last()
        .ok_or("model exposes no hidden taps")?
        .var
        .value();
    let n = tap.shape()[0];
    let d = tap.len() / n;
    Ok(tap.reshape(&[n, d])?)
}

/// Coarse ASCII scatter of a 2-D embedding (class id mod 10 as glyph).
fn ascii_scatter(embedding: &Tensor, labels: &[usize], rows: usize, cols: usize) -> String {
    let n = labels.len();
    let xs: Vec<f32> = (0..n).map(|i| embedding.get(&[i, 0])).collect();
    let ys: Vec<f32> = (0..n).map(|i| embedding.get(&[i, 1])).collect();
    let (xmin, xmax) = xs
        .iter()
        .fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let (ymin, ymax) = ys
        .iter()
        .fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let mut grid = vec![vec![' '; cols]; rows];
    for i in 0..n {
        let cx = (((xs[i] - xmin) / (xmax - xmin).max(1e-6)) * (cols - 1) as f32) as usize;
        let cy = (((ys[i] - ymin) / (ymax - ymin).max(1e-6)) * (rows - 1) as f32) as usize;
        grid[cy][cx] = char::from_digit((labels[i] % 10) as u32, 10).unwrap_or('?');
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs the experiment: trains the four networks, embeds features, and
/// reports separation ratios.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run(scale: &Scale) -> ExpResult<String> {
    let config = SynthVisionConfig::cifar10_like().with_sizes(scale.train, scale.test);
    let data = SynthVision::generate(&config, 88)?;
    let k = config.num_classes;
    let trades = scaled_method(TrainMethod::trades_default(), scale);

    let variants: Vec<(&str, TrainMethod, bool)> = vec![
        ("(a) CE", TrainMethod::Standard, false),
        ("(b) IB-RAR", TrainMethod::Standard, true),
        ("(c) TRADES", trades, false),
        ("(d) TRADES + IB-RAR", trades, true),
    ];

    let subset = data.test.take(scale.eval.max(60))?;
    let tsne_cfg = TsneConfig {
        perplexity: 10.0,
        iterations: 200,
        ..TsneConfig::default()
    };

    let mut out =
        String::from("Figure 3: t-SNE cluster geometry (penultimate features, synth_cifar10)\n\n");
    let mut seps = Vec::new();
    for (i, (name, method, ib)) in variants.iter().enumerate() {
        let model = Arch::Vgg.build(k, 20 + i as u64)?;
        let mut cfg = TrainerConfig::new(*method)
            .with_epochs(scale.epochs)
            .with_batch_size(scale.batch);
        if *ib {
            cfg = cfg
                .with_ib(IbLossConfig::substrate_vgg().with_policy(LayerPolicy::Robust))
                .with_mask(MaskConfig::default());
        }
        Trainer::new(cfg).train(model.as_ref(), &data.train, &data.test)?;
        let features = penultimate_features(model.as_ref(), subset.images())?;
        let embedding = tsne(&features, &tsne_cfg)?;
        let sep = cluster_separation(&embedding, subset.labels())?;
        seps.push((name.to_string(), sep));
        out.push_str(&format!("{name}: separation ratio {sep:.3}\n"));
        out.push_str(&ascii_scatter(&embedding, subset.labels(), 14, 48));
        out.push_str("\n\n");
    }
    out.push_str("Expected shape (paper): IB-RAR > CE and TRADES+IB-RAR > TRADES.\n");
    out.push_str(&format!(
        "Measured: IB-RAR {:.3} vs CE {:.3}; TRADES+IB-RAR {:.3} vs TRADES {:.3}\n",
        seps[1].1, seps[0].1, seps[3].1, seps[2].1
    ));
    Ok(out)
}
