//! Shared train/evaluate plumbing for the experiment binaries.

use crate::{ExpResult, Scale};
use ibrar::{IbLossConfig, MaskConfig, TrainMethod, Trainer, TrainerConfig};
use ibrar_attacks::{
    clean_accuracy, robust_accuracy, Attack, CwL2, Fab, Fgsm, NiFgsm, Pgd, DEFAULT_ALPHA,
    DEFAULT_EPS,
};
use ibrar_data::Dataset;
use ibrar_nn::{
    ImageModel, ResNetConfig, ResNetMini, VggConfig, VggMini, WideResNetConfig, WideResNetMini,
};
use ibrar_telemetry as tel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Which architecture an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// `VggMini` on 16×16 inputs.
    Vgg,
    /// `VggMini` on 32×32 inputs (the Tiny-ImageNet stand-in).
    Vgg32,
    /// `ResNetMini` (single-block stages for speed).
    Resnet,
    /// `WideResNetMini`.
    Wrn,
}

impl Arch {
    /// Builds a fresh, randomly initialized model.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors.
    pub fn build(&self, num_classes: usize, seed: u64) -> ExpResult<Box<dyn ImageModel>> {
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(match self {
            Arch::Vgg => Box::new(VggMini::new(VggConfig::tiny(num_classes), &mut rng)?),
            Arch::Vgg32 => Box::new(VggMini::new(VggConfig::small32(num_classes), &mut rng)?),
            Arch::Resnet => Box::new(ResNetMini::new(
                ResNetConfig::tiny_fast(num_classes),
                &mut rng,
            )?),
            Arch::Wrn => Box::new(WideResNetMini::new(
                WideResNetConfig::tiny(num_classes),
                &mut rng,
            )?),
        })
    }

    /// The IB hyperparameters used for this family's experiments — the
    /// substrate-tuned values (see `sweep_ib` and DESIGN.md §6); the paper's
    /// own values are available as `IbLossConfig::paper_vgg/paper_resnet`.
    pub fn paper_ib(&self) -> IbLossConfig {
        match self {
            Arch::Vgg | Arch::Vgg32 => IbLossConfig::substrate_vgg(),
            Arch::Resnet | Arch::Wrn => IbLossConfig::substrate_resnet(),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Arch::Vgg => "VGG16",
            Arch::Vgg32 => "VGG16",
            Arch::Resnet => "ResNet-18",
            Arch::Wrn => "WRN-28-10",
        }
    }
}

/// The paper's five evaluation attacks, at the scale's budgets.
pub fn attack_suite(scale: &Scale) -> Vec<Box<dyn Attack>> {
    vec![
        Box::new(Pgd::paper_default()),
        Box::new(CwL2::paper_default().with_steps(scale.cw_steps)),
        Box::new(Fgsm::new(DEFAULT_EPS)),
        Box::new(Fab::paper_default()),
        Box::new(NiFgsm::new(DEFAULT_EPS, DEFAULT_ALPHA, 10)),
    ]
}

/// Natural accuracy plus adversarial accuracy per attack (in %).
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Clean test accuracy in percent.
    pub natural: f32,
    /// `(attack_name, accuracy %)` in suite order.
    pub attacks: Vec<(String, f32)>,
}

impl EvalResult {
    /// Accuracy for an attack by name (None if not evaluated).
    pub fn attack_acc(&self, name: &str) -> Option<f32> {
        self.attacks
            .iter()
            .find(|(n, _)| n.starts_with(name))
            .map(|(_, a)| *a)
    }
}

/// Evaluates a model on clean data and under the standard attack suite.
///
/// # Errors
///
/// Propagates attack/evaluation errors.
pub fn eval_model(model: &dyn ImageModel, test: &Dataset, scale: &Scale) -> ExpResult<EvalResult> {
    let natural = clean_accuracy(model, test, 64)? * 100.0;
    let eval_set = test.take(scale.eval)?;
    let mut attacks = Vec::new();
    for attack in attack_suite(scale) {
        let acc = robust_accuracy(model, attack.as_ref(), &eval_set, 32)? * 100.0;
        attacks.push((attack.name(), acc));
    }
    Ok(EvalResult { natural, attacks })
}

/// Trains a fresh `arch` model with `method` (± IB-RAR) and evaluates it,
/// averaging over `scale.seeds` runs.
///
/// # Errors
///
/// Propagates training/evaluation errors.
#[allow(clippy::too_many_arguments)]
pub fn train_and_eval(
    arch: Arch,
    method: TrainMethod,
    ib: Option<IbLossConfig>,
    mask: bool,
    train: &Dataset,
    test: &Dataset,
    scale: &Scale,
    num_classes: usize,
) -> ExpResult<EvalResult> {
    let mut natural = 0.0f32;
    let mut attack_accs: Vec<(String, f32)> = Vec::new();
    for seed in 0..scale.seeds as u64 {
        let model = arch.build(num_classes, 1000 + seed)?;
        let mut config = TrainerConfig::new(method)
            .with_epochs(scale.epochs)
            .with_batch_size(scale.batch)
            .with_seed(seed);
        if let Some(ib_cfg) = ib.clone() {
            config = config.with_ib(ib_cfg);
        }
        if mask {
            config = config.with_mask(MaskConfig::default());
        }
        Trainer::new(config).train(model.as_ref(), train, test)?;
        let result = eval_model(model.as_ref(), test, scale)?;
        natural += result.natural;
        if attack_accs.is_empty() {
            attack_accs = result.attacks;
        } else {
            for (acc, (_, new)) in attack_accs.iter_mut().zip(result.attacks) {
                acc.1 += new;
            }
        }
    }
    let n = scale.seeds as f32;
    Ok(EvalResult {
        natural: natural / n,
        attacks: attack_accs
            .into_iter()
            .map(|(name, a)| (name, a / n))
            .collect(),
    })
}

/// Formats a full attack-suite table row: name, natural, then the five
/// attack accuracies in paper column order.
pub fn attack_row(name: &str, result: &EvalResult) -> Vec<String> {
    let get = |attack: &str| {
        result
            .attack_acc(attack)
            .map(|a| format!("{a:.2}"))
            .unwrap_or_default()
    };
    vec![
        name.to_string(),
        format!("{:.2}", result.natural),
        get("PGD"),
        get("CW"),
        get("FGSM"),
        get("FAB"),
        get("NIFGSM"),
    ]
}

/// Directory where experiment outputs are written.
pub fn output_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Prints `content` and writes it to `target/experiments/<name>.txt`.
pub fn write_output(name: &str, content: &str) {
    println!("{content}");
    let path = output_dir().join(format!("{name}.txt"));
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("[saved {}]", path.display());
    }
}

/// Standard wrapper for experiment binaries.
///
/// Initializes telemetry from the `IBRAR_LOG` / `IBRAR_TELEMETRY` /
/// `IBRAR_TRACE` environment variables, runs the experiment inside a
/// top-level span named
/// after it, writes its output via [`write_output`], and finishes a
/// [`tel::RunManifest`] (scale as config, wall time as metric) — emitted to
/// the JSONL sink and, when telemetry is on, written next to the output as
/// `target/experiments/<name>.manifest.json` together with the timing
/// report on stderr.
///
/// # Errors
///
/// Propagates the experiment's error (no output or manifest is written in
/// that case).
pub fn run_binary(
    name: &str,
    scale: &Scale,
    run: impl FnOnce(&Scale) -> ExpResult<String>,
) -> ExpResult<()> {
    tel::init_from_env();
    eprintln!("[{name}] running at {scale:?}");
    let started = std::time::Instant::now();
    let mut manifest = tel::RunManifest::new(name);
    manifest
        .config("train", scale.train)
        .config("test", scale.test)
        .config("eval", scale.eval)
        .config("epochs", scale.epochs)
        .config("at_steps", scale.at_steps)
        .config("cw_steps", scale.cw_steps)
        .config("seeds", scale.seeds)
        .config("batch", scale.batch);
    let out = {
        let _s = tel::span!(name);
        run(scale)?
    };
    write_output(name, &out);
    manifest.metric("output_lines", out.lines().count());
    let json = manifest.finish();
    if tel::enabled() {
        let report = tel::report();
        if !report.is_empty() {
            eprintln!("== telemetry [{name}] ==");
            eprint!("{report}");
        }
        let path = output_dir().join(format!("{name}.manifest.json"));
        if std::fs::write(&path, &json).is_ok() {
            eprintln!("[manifest {}]", path.display());
        }
    }
    // IBRAR_TRACE=<path>: dump the captured span tree as chrome trace-event
    // JSON (open at chrome://tracing) on the way out.
    match tel::global().write_chrome_trace() {
        Ok(Some(path)) => eprintln!("[chrome trace {path}]"),
        Ok(None) => {}
        Err(e) => eprintln!("[chrome trace failed: {e}]"),
    }
    eprintln!("[{name}] done in {:.1?}", started.elapsed());
    Ok(())
}

/// Lowers the training method's inner-PGD cost to the scale's budget.
pub fn scaled_method(method: TrainMethod, scale: &Scale) -> TrainMethod {
    match method {
        TrainMethod::PgdAt { eps, alpha, .. } => TrainMethod::PgdAt {
            eps,
            alpha,
            steps: scale.at_steps,
        },
        TrainMethod::Trades {
            beta, eps, alpha, ..
        } => TrainMethod::Trades {
            beta,
            eps,
            alpha,
            steps: scale.at_steps,
        },
        TrainMethod::Mart {
            beta, eps, alpha, ..
        } => TrainMethod::Mart {
            beta,
            eps,
            alpha,
            steps: scale.at_steps,
        },
        TrainMethod::Standard => TrainMethod::Standard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_builds_all_families() {
        for arch in [Arch::Vgg, Arch::Vgg32, Arch::Resnet, Arch::Wrn] {
            let model = arch.build(10, 0).unwrap();
            assert_eq!(model.num_classes(), 10);
        }
    }

    #[test]
    fn attack_suite_has_five_attacks() {
        let suite = attack_suite(&Scale::quick());
        assert_eq!(suite.len(), 5);
        let names: Vec<String> = suite.iter().map(|a| a.name()).collect();
        assert!(names.iter().any(|n| n.contains("PGD")));
        assert!(names.iter().any(|n| n.contains("CW")));
        assert!(names.iter().any(|n| n.contains("FGSM")));
        assert!(names.iter().any(|n| n.contains("FAB")));
        assert!(names.iter().any(|n| n.contains("NIFGSM")));
    }

    #[test]
    fn scaled_method_rewrites_steps() {
        let scale = Scale::quick();
        let m = scaled_method(TrainMethod::pgd_at_default(), &scale);
        assert!(matches!(m, TrainMethod::PgdAt { steps, .. } if steps == scale.at_steps));
    }

    #[test]
    fn eval_result_lookup() {
        let r = EvalResult {
            natural: 90.0,
            attacks: vec![("PGD10".into(), 40.0), ("CW".into(), 35.0)],
        };
        assert_eq!(r.attack_acc("PGD"), Some(40.0));
        assert_eq!(r.attack_acc("AutoAttack"), None);
    }
}
