//! Finite-difference gradient auditing.
//!
//! Central differences against an arbitrary scalar loss closure over a
//! flat parameter slice. The full variant perturbs every coordinate; the
//! sampled variant walks a deterministic coordinate subset so expensive
//! losses (a whole model forward per evaluation) stay tractable while the
//! subset itself stays reproducible.

use crate::gen::Gen;

/// Central-difference gradient of `f` at `x`, all coordinates.
pub fn fd_gradient(f: &mut dyn FnMut(&[f32]) -> f32, x: &[f32], eps: f32) -> Vec<f32> {
    let mut probe = x.to_vec();
    let mut grad = vec![0.0f32; x.len()];
    for i in 0..x.len() {
        let orig = probe[i];
        probe[i] = orig + eps;
        let plus = f(&probe);
        probe[i] = orig - eps;
        let minus = f(&probe);
        probe[i] = orig;
        grad[i] = (plus - minus) / (2.0 * eps);
    }
    grad
}

/// Central-difference gradient at selected coordinates only.
///
/// Returns `(coordinate, derivative)` pairs in the order given.
pub fn fd_gradient_sampled(
    f: &mut dyn FnMut(&[f32]) -> f32,
    x: &[f32],
    eps: f32,
    coords: &[usize],
) -> Vec<(usize, f32)> {
    let mut probe = x.to_vec();
    coords
        .iter()
        .map(|&i| {
            let orig = probe[i];
            probe[i] = orig + eps;
            let plus = f(&probe);
            probe[i] = orig - eps;
            let minus = f(&probe);
            probe[i] = orig;
            (i, (plus - minus) / (2.0 * eps))
        })
        .collect()
}

/// Deterministically samples up to `max` distinct coordinates of a
/// `len`-element vector (all of them when `len ≤ max`).
pub fn sample_coords(len: usize, max: usize, seed: u64) -> Vec<usize> {
    if len <= max {
        return (0..len).collect();
    }
    let mut g = Gen::new(seed);
    let mut picked = Vec::with_capacity(max);
    let mut seen = vec![false; len];
    while picked.len() < max {
        let i = g.usize_in(0, len - 1);
        if !seen[i] {
            seen[i] = true;
            picked.push(i);
        }
    }
    picked
}

/// Outcome of a gradient audit.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Largest absolute analytic-vs-numeric error.
    pub max_abs_err: f32,
    /// Largest relative error (w.r.t. `max(|analytic|, |numeric|)`).
    pub max_rel_err: f32,
    /// Coordinate where the worst error occurred.
    pub worst_coord: usize,
    /// Analytic value there.
    pub analytic: f32,
    /// Numeric value there.
    pub numeric: f32,
    /// Number of coordinates checked.
    pub checked: usize,
}

impl AuditReport {
    /// Whether every coordinate met the absolute **or** relative bound.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Audits an analytic gradient against central differences of `f`.
///
/// Checks the coordinates in `coords` (use [`sample_coords`] or
/// `(0..len).collect()`); `analytic` must hold the full-length analytic
/// gradient.
///
/// # Panics
///
/// Panics when `analytic` is shorter than a sampled coordinate — that is
/// a bug in the test, not a gradient failure.
pub fn audit_gradient(
    f: &mut dyn FnMut(&[f32]) -> f32,
    x: &[f32],
    analytic: &[f32],
    eps: f32,
    coords: &[usize],
) -> AuditReport {
    assert_eq!(
        x.len(),
        analytic.len(),
        "analytic gradient length must match input"
    );
    let numeric = fd_gradient_sampled(f, x, eps, coords);
    let mut report = AuditReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
        worst_coord: 0,
        analytic: 0.0,
        numeric: 0.0,
        checked: numeric.len(),
    };
    for (i, num) in numeric {
        let ana = analytic[i];
        let abs_err = (ana - num).abs();
        let scale = ana.abs().max(num.abs()).max(1e-12);
        let rel_err = abs_err / scale;
        // Track the coordinate whose *joint* criterion is worst: a
        // coordinate only threatens `passes` through min(abs, rel).
        let joint = abs_err.min(rel_err);
        let prev_joint = report.max_abs_err.min(report.max_rel_err);
        if joint > prev_joint || !joint.is_finite() {
            report.max_abs_err = abs_err;
            report.max_rel_err = rel_err;
            report.worst_coord = i;
            report.analytic = ana;
            report.numeric = num;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_matches_quadratic() {
        // f(x) = Σ xᵢ² → ∇f = 2x.
        let x = [0.5f32, -1.5, 2.0];
        let mut f = |v: &[f32]| v.iter().map(|a| a * a).sum::<f32>();
        let g = fd_gradient(&mut f, &x, 1e-3);
        for (gi, xi) in g.iter().zip(&x) {
            assert!((gi - 2.0 * xi).abs() < 1e-3, "{gi} vs {}", 2.0 * xi);
        }
    }

    #[test]
    fn sampled_subset_of_full() {
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let mut f = |v: &[f32]| v.iter().product::<f32>();
        let full = fd_gradient(&mut f, &x, 1e-3);
        let sampled = fd_gradient_sampled(&mut f, &x, 1e-3, &[1, 3]);
        assert_eq!(sampled.len(), 2);
        assert_eq!(sampled[0].0, 1);
        assert!((sampled[0].1 - full[1]).abs() < 1e-6);
        assert!((sampled[1].1 - full[3]).abs() < 1e-6);
    }

    #[test]
    fn sample_coords_distinct_and_deterministic() {
        let a = sample_coords(100, 10, 5);
        let b = sample_coords(100, 10, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "coordinates must be distinct");
        // small vectors are covered exhaustively
        assert_eq!(sample_coords(5, 10, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn audit_passes_correct_gradient() {
        let x = [0.3f32, -0.7, 1.1];
        let analytic: Vec<f32> = x.iter().map(|v| 2.0 * v).collect();
        let mut f = |v: &[f32]| v.iter().map(|a| a * a).sum::<f32>();
        let coords: Vec<usize> = (0..x.len()).collect();
        let report = audit_gradient(&mut f, &x, &analytic, 1e-3, &coords);
        assert!(report.passes(1e-3), "{report:?}");
        assert_eq!(report.checked, 3);
    }

    #[test]
    fn audit_flags_wrong_gradient() {
        let x = [0.3f32, -0.7, 1.1];
        let mut wrong: Vec<f32> = x.iter().map(|v| 2.0 * v).collect();
        wrong[1] = 5.0;
        let mut f = |v: &[f32]| v.iter().map(|a| a * a).sum::<f32>();
        let coords: Vec<usize> = (0..x.len()).collect();
        let report = audit_gradient(&mut f, &x, &wrong, 1e-3, &coords);
        assert!(!report.passes(1e-3));
        assert_eq!(report.worst_coord, 1);
    }
}
