//! Reference oracles for the IB-RAR reproduction's numeric kernels.
//!
//! Every optimized kernel in the hot path — the matmul family, im2col
//! convolution, pairwise distances, Gaussian kernels, HSIC, softmax
//! cross-entropy, and the attack step rules — has a deliberately naive
//! counterpart here, written as the most direct transcription of its
//! mathematical definition. The naive versions make no attempt at speed:
//! no blocking, no parallel splits, no zero-skipping, no algebraic
//! rewrites. Their only job is to be obviously correct so the optimized
//! kernels can be tested *differentially* against them on seeded random
//! inputs.
//!
//! The crate is a dev-dependency almost everywhere. The one production
//! consumer is `ibrar-nn`, which uses [`Gen`]'s SplitMix64 stream as the
//! noise source for the VIB head's frozen per-batch Gaussian draws
//! (DESIGN.md §16): the same rand-independence that makes differential
//! tests bit-stable makes VIB training replayable for goldens.
//!
//! Submodules:
//!
//! - [`kernels`] — the naive reference implementations themselves.
//! - [`gen`] — a SplitMix64-based deterministic input generator. It is
//!   intentionally independent of the `rand` crate so differential and
//!   golden tests produce identical inputs in every build environment.
//! - [`diff`] — tolerance policy (absolute / relative / ULP) and tensor
//!   comparison with a worst-element report.
//! - [`fd`] — central-difference gradient checking against arbitrary
//!   scalar closures, with full and sampled-coordinate variants.
//! - [`golden`] — bitwise-exact JSON snapshots (floats stored as their
//!   `f32::to_bits` patterns) with the `IBRAR_BLESS=1` regeneration flow.
//!
//! # Tolerance policy
//!
//! Differential tests compare against the oracle with explicit
//! tolerances; an element passes when **any** of the absolute, relative,
//! or ULP criteria holds (see [`diff::Tolerance`]). The optimized kernels
//! reorder f32 accumulation (blocked loops, per-chunk partial sums), so
//! exact equality is not expected; what is expected — and enforced — is
//! agreement to within a few ULPs per accumulated term. The per-call
//! tolerances are documented at each differential test site, and
//! DESIGN.md §10 records the policy.

pub mod diff;
pub mod fd;
pub mod gen;
pub mod golden;
pub mod kernels;

pub use diff::{compare, compare_scalar, ulp_distance, DiffError, Tolerance};
pub use fd::{audit_gradient, fd_gradient, fd_gradient_sampled, sample_coords, AuditReport};
pub use gen::Gen;
pub use golden::{bless_requested, check_snapshot, hash_bits, Snapshot};
