//! Naive reference implementations of every numeric kernel in the hot path.
//!
//! Each function is the most direct transcription of the defining formula:
//! plain nested loops in row-major order, one accumulator per output
//! element, no blocking, no parallelism, no zero-skipping, no algebraic
//! shortcuts (HSIC really builds `K_x`, `H`, `K_y` and multiplies them).
//! Shape errors are programming errors in a test, so the functions assert
//! rather than returning `Result`.

use ibrar_tensor::{Conv2dSpec, Tensor};

/// `[m, k] × [k, n] → [m, n]`, one dot product per output element.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimensions disagree");
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for t in 0..k {
                acc += ad[i * k + t] * bd[t * n + j];
            }
            od[i * n + j] = acc;
        }
    }
    out
}

/// `A × Bᵀ`: `[m, k] × [n, k] → [m, n]`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_nt lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_nt rhs must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimensions disagree");
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for t in 0..k {
                acc += ad[i * k + t] * bd[j * k + t];
            }
            od[i * n + j] = acc;
        }
    }
    out
}

/// `Aᵀ × B`: `[k, m] × [k, n] → [m, n]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_tn lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_tn rhs must be rank 2");
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimensions disagree");
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for t in 0..k {
                acc += ad[t * m + i] * bd[t * n + j];
            }
            od[i * n + j] = acc;
        }
    }
    out
}

/// Exact integer GEMM twin of `ibrar_tensor::qgemm::gemm_i8_nt`:
/// `[m, k]i8 × [n, k]ᵀi8 → [m, n]`, accumulated in `i64` so the reference
/// is exact regardless of depth — comparisons against the production
/// kernel's `i32` results must therefore hold bit-for-bit whenever
/// `k ≤ ibrar_tensor::qgemm::MAX_K`.
pub fn gemm_i8_nt(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i64> {
    assert_eq!(a.len(), m * k, "lhs length disagrees with [m, k]");
    assert_eq!(b.len(), n * k, "rhs length disagrees with [n, k]");
    let mut out = vec![0i64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i64;
            for t in 0..k {
                acc += a[i * k + t] as i64 * b[j * k + t] as i64;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Padded input lookup: 0 outside the image.
#[allow(clippy::too_many_arguments)]
fn at(x: &[f32], c: usize, h: usize, w: usize, ni: usize, ci: usize, iy: isize, ix: isize) -> f32 {
    if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
        0.0
    } else {
        x[((ni * c + ci) * h + iy as usize) * w + ix as usize]
    }
}

/// Direct 2-D convolution: `[n, c, h, w] ⊛ [oc, c, k, k] → [n, oc, oh, ow]`.
///
/// Seven nested loops straight from the definition; `bias` (length `oc`)
/// is added per output channel when given.
pub fn conv2d(x: &Tensor, weight: &Tensor, bias: Option<&Tensor>, spec: &Conv2dSpec) -> Tensor {
    assert_eq!(x.rank(), 4, "conv2d input must be rank 4");
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    assert_eq!(
        weight.shape(),
        &[
            spec.out_channels,
            spec.in_channels,
            spec.kernel,
            spec.kernel
        ],
        "weight shape does not match spec"
    );
    assert_eq!(c, spec.in_channels, "input channels do not match spec");
    let (oh, ow) = spec.out_hw(h, w).expect("valid geometry");
    let (oc, k, s, p) = (spec.out_channels, spec.kernel, spec.stride, spec.padding);
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let (xd, wd) = (x.data(), weight.data());
    let od = out.data_mut();
    for ni in 0..n {
        for co in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * s + ky) as isize - p as isize;
                                let ix = (ox * s + kx) as isize - p as isize;
                                acc += at(xd, c, h, w, ni, ci, iy, ix)
                                    * wd[((co * c + ci) * k + ky) * k + kx];
                            }
                        }
                    }
                    if let Some(b) = bias {
                        acc += b.data()[co];
                    }
                    od[((ni * oc + co) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    out
}

/// Direct convolution backward: returns `(dx, dw, db)` for an upstream
/// gradient `grad` of shape `[n, oc, oh, ow]`.
///
/// Accumulates `∂L/∂x` and `∂L/∂w` by walking the forward loops and
/// scattering `grad · partner` into each operand — the transpose of the
/// forward computation, with no im2col/col2im detour.
pub fn conv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    grad: &Tensor,
    spec: &Conv2dSpec,
) -> (Tensor, Tensor, Tensor) {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = spec.out_hw(h, w).expect("valid geometry");
    let (oc, k, s, p) = (spec.out_channels, spec.kernel, spec.stride, spec.padding);
    assert_eq!(grad.shape(), &[n, oc, oh, ow], "grad shape mismatch");
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let mut dw = Tensor::zeros(&[oc, c, k, k]);
    let mut db = Tensor::zeros(&[oc]);
    let (xd, wd, gd) = (x.data(), weight.data(), grad.data());
    {
        let dxd = dx.data_mut();
        for ni in 0..n {
            for co in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gd[((ni * oc + co) * oh + oy) * ow + ox];
                        for ci in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * s + ky) as isize - p as isize;
                                    let ix = (ox * s + kx) as isize - p as isize;
                                    if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                        continue;
                                    }
                                    dxd[((ni * c + ci) * h + iy as usize) * w + ix as usize] +=
                                        g * wd[((co * c + ci) * k + ky) * k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    {
        let dwd = dw.data_mut();
        let dbd = db.data_mut();
        for ni in 0..n {
            for co in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gd[((ni * oc + co) * oh + oy) * ow + ox];
                        dbd[co] += g;
                        for ci in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * s + ky) as isize - p as isize;
                                    let ix = (ox * s + kx) as isize - p as isize;
                                    dwd[((co * c + ci) * k + ky) * k + kx] +=
                                        g * at(xd, c, h, w, ni, ci, iy, ix);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    (dx, dw, db)
}

/// Pairwise squared Euclidean distances of the rows of `[m, d]`: `[m, m]`.
pub fn pairwise_sqdist(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 2, "pairwise_sqdist input must be rank 2");
    let (m, d) = (x.shape()[0], x.shape()[1]);
    let mut out = Tensor::zeros(&[m, m]);
    let xd = x.data();
    let od = out.data_mut();
    for i in 0..m {
        for j in 0..m {
            let mut acc = 0.0f32;
            for t in 0..d {
                let diff = xd[i * d + t] - xd[j * d + t];
                acc += diff * diff;
            }
            od[i * m + j] = acc;
        }
    }
    out
}

/// Gaussian kernel matrix `K_ij = exp(−‖x_i − x_j‖² / (2σ²))`.
pub fn gaussian_kernel(x: &Tensor, sigma: f32) -> Tensor {
    assert!(sigma > 0.0, "sigma must be positive");
    let d2 = pairwise_sqdist(x);
    let denom = 2.0 * sigma * sigma;
    d2.map(|v| (-v / denom).exp())
}

/// The centering matrix `H = I − (1/m) 𝟙𝟙ᵀ`.
pub fn centering(m: usize) -> Tensor {
    let mut out = Tensor::full(&[m, m], -1.0 / m as f32);
    let od = out.data_mut();
    for i in 0..m {
        od[i * m + i] += 1.0;
    }
    out
}

/// Biased HSIC estimator, computed literally:
/// `tr(K_x H K_y H) / (m − 1)²` with explicit matrix products.
pub fn hsic(x: &Tensor, y: &Tensor, sigma_x: f32, sigma_y: f32) -> f32 {
    let m = x.shape()[0];
    assert_eq!(m, y.shape()[0], "HSIC batch sizes disagree");
    assert!(m >= 2, "HSIC needs at least 2 samples");
    let kx = gaussian_kernel(x, sigma_x);
    let ky = gaussian_kernel(y, sigma_y);
    let h = centering(m);
    let prod = matmul(&matmul(&matmul(&kx, &h), &ky), &h);
    let mut trace = 0.0f32;
    for i in 0..m {
        trace += prod.data()[i * m + i];
    }
    trace / ((m - 1) as f32 * (m - 1) as f32)
}

/// Median-of-pairwise-distances kernel width, with the same 1e-3 floor and
/// `m < 2 → 1.0` fallback as the optimized implementation.
///
/// Each squared distance uses the fixed 8-lane accumulation order of
/// DESIGN.md §12 (8 lane accumulators over `chunks_exact(8)`, the
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` reduction tree, serial tail added
/// last), transcribed literally here so the differential test against the
/// optimized `median_sigma` stays **bitwise** with unchanged tolerance. The
/// order is part of the documented numeric contract, not an accident of the
/// optimized code.
pub fn median_sigma(x: &Tensor) -> f32 {
    let m = x.shape().first().copied().unwrap_or(0);
    if m < 2 {
        return 1.0;
    }
    let d = x.len() / m;
    let xd = x.data();
    let mut dists = Vec::new();
    for i in 0..m {
        for j in (i + 1)..m {
            let (a, b) = (&xd[i * d..(i + 1) * d], &xd[j * d..(j + 1) * d]);
            let mut lanes = [0.0f32; 8];
            let chunks = d / 8;
            for c in 0..chunks {
                for l in 0..8 {
                    let diff = a[c * 8 + l] - b[c * 8 + l];
                    lanes[l] += diff * diff;
                }
            }
            let mut tail = 0.0f32;
            for t in chunks * 8..d {
                let diff = a[t] - b[t];
                tail += diff * diff;
            }
            let acc = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
                + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
                + tail;
            dists.push(acc.sqrt());
        }
    }
    dists.sort_by(f32::total_cmp);
    dists[dists.len() / 2].max(1e-3)
}

/// Row-wise softmax of `[n, k]` logits (max-shifted for stability).
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.rank(), 2, "softmax input must be rank 2");
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    let mut out = Tensor::zeros(&[n, k]);
    let ld = logits.data();
    let od = out.data_mut();
    for i in 0..n {
        let row = &ld[i * k..(i + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - max).exp();
        }
        for (j, &v) in row.iter().enumerate() {
            od[i * k + j] = (v - max).exp() / denom;
        }
    }
    out
}

/// Row-wise log-softmax of `[n, k]` logits.
pub fn log_softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.rank(), 2, "log_softmax input must be rank 2");
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    let mut out = Tensor::zeros(&[n, k]);
    let ld = logits.data();
    let od = out.data_mut();
    for i in 0..n {
        let row = &ld[i * k..(i + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - max).exp();
        }
        let log_denom = denom.ln();
        for (j, &v) in row.iter().enumerate() {
            od[i * k + j] = v - max - log_denom;
        }
    }
    out
}

/// Mean cross-entropy of `[n, k]` logits against integer labels.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> f32 {
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(n, labels.len(), "label count mismatch");
    let lsm = log_softmax(logits);
    let mut acc = 0.0f32;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < k, "label out of range");
        acc += -lsm.data()[i * k + y];
    }
    acc / n as f32
}

/// Gradient of [`cross_entropy`] w.r.t. the logits: `(softmax − onehot) / n`.
pub fn cross_entropy_grad(logits: &Tensor, labels: &[usize]) -> Tensor {
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    let mut out = softmax(logits);
    let od = out.data_mut();
    for (i, &y) in labels.iter().enumerate() {
        od[i * k + y] -= 1.0;
    }
    for v in od.iter_mut() {
        *v /= n as f32;
    }
    out
}

/// Zero-preserving sign, matching `Tensor::signum`.
fn sign(v: f32) -> f32 {
    if v > 0.0 {
        1.0
    } else if v < 0.0 {
        -1.0
    } else {
        0.0
    }
}

/// One FGSM step: `clip₍₀,₁₎(x + ε · sign(g))`.
///
/// Takes the input gradient as an argument so the step rule can be tested
/// in isolation from the model that produced the gradient.
pub fn fgsm_step(x: &Tensor, grad: &Tensor, eps: f32) -> Tensor {
    assert_eq!(x.shape(), grad.shape(), "gradient shape mismatch");
    let mut out = x.clone();
    let gd = grad.data();
    for (o, &g) in out.data_mut().iter_mut().zip(gd) {
        *o = (*o + eps * sign(g)).clamp(0.0, 1.0);
    }
    out
}

/// One PGD step from iterate `x`: ascend by `α · sign(g)`, project onto the
/// ε-ball around `x_orig`, clip to `[0, 1]`.
pub fn pgd_step(x: &Tensor, x_orig: &Tensor, grad: &Tensor, alpha: f32, eps: f32) -> Tensor {
    assert_eq!(x.shape(), grad.shape(), "gradient shape mismatch");
    assert_eq!(x.shape(), x_orig.shape(), "origin shape mismatch");
    let mut out = x.clone();
    let gd = grad.data();
    let od_orig = x_orig.data();
    for ((o, &g), &orig) in out.data_mut().iter_mut().zip(gd).zip(od_orig) {
        let stepped = *o + alpha * sign(g);
        *o = stepped.max(orig - eps).min(orig + eps).clamp(0.0, 1.0);
    }
    out
}

/// Elementwise softplus `ln(1 + e^x)`, transcribed literally.
///
/// The optimized op uses the overflow-safe rewrite
/// `max(x, 0) + ln(1 + e^{-|x|})`; differential tests keep inputs in a
/// range where the literal form stays finite.
pub fn softplus(x: &Tensor) -> Tensor {
    let data: Vec<f32> = x.data().iter().map(|&v| v.exp().ln_1p()).collect();
    Tensor::from_vec(data, x.shape()).expect("same shape")
}

/// Gradient of [`softplus`]: `∂/∂x ln(1 + e^x) = σ(x)`, scaled by the
/// upstream gradient.
pub fn softplus_grad(x: &Tensor, grad: &Tensor) -> Tensor {
    assert_eq!(x.shape(), grad.shape(), "gradient shape mismatch");
    let data: Vec<f32> = x
        .data()
        .iter()
        .zip(grad.data())
        .map(|(&v, &g)| g / (1.0 + (-v).exp()))
        .collect();
    Tensor::from_vec(data, x.shape()).expect("same shape")
}

/// Reparameterized Gaussian sample `z = μ + σ ⊙ ε` for frozen noise `ε`.
pub fn rsample(mu: &Tensor, sigma: &Tensor, noise: &Tensor) -> Tensor {
    assert_eq!(mu.shape(), sigma.shape(), "sigma shape mismatch");
    assert_eq!(mu.shape(), noise.shape(), "noise shape mismatch");
    let data: Vec<f32> = mu
        .data()
        .iter()
        .zip(sigma.data())
        .zip(noise.data())
        .map(|((&m, &s), &e)| m + s * e)
        .collect();
    Tensor::from_vec(data, mu.shape()).expect("same shape")
}

/// Gradients of [`rsample`] with respect to `(μ, σ)`: `∂z/∂μ = 1`,
/// `∂z/∂σ = ε` (the frozen noise is a constant, not a parent).
pub fn rsample_grads(noise: &Tensor, grad: &Tensor) -> (Tensor, Tensor) {
    assert_eq!(noise.shape(), grad.shape(), "gradient shape mismatch");
    let dsigma: Vec<f32> = noise
        .data()
        .iter()
        .zip(grad.data())
        .map(|(&e, &g)| g * e)
        .collect();
    (
        grad.clone(),
        Tensor::from_vec(dsigma, noise.shape()).expect("same shape"),
    )
}

/// Analytic KL divergence between the diagonal Gaussian `N(μ, σ²)` (one
/// row per batch element) and the shared prior `N(m, s²)`, summed over
/// dimensions and meaned over the batch:
///
/// `KL = (1/n) Σ_i Σ_j [ ln(s_j/σ_ij) + (σ_ij² + (μ_ij − m_j)²)/(2 s_j²) − ½ ]`
pub fn kl_gauss(mu: &Tensor, sigma: &Tensor, prior_mu: &Tensor, prior_sigma: &Tensor) -> f32 {
    assert_eq!(mu.shape(), sigma.shape(), "sigma shape mismatch");
    assert_eq!(mu.shape().len(), 2, "mu must be [n, d]");
    let (n, d) = (mu.shape()[0], mu.shape()[1]);
    assert_eq!(prior_mu.shape(), &[d], "prior_mu shape mismatch");
    assert_eq!(prior_sigma.shape(), &[d], "prior_sigma shape mismatch");
    let mut total = 0.0f32;
    for i in 0..n {
        for j in 0..d {
            let (q_mu, q_sd) = (mu.data()[i * d + j], sigma.data()[i * d + j]);
            let (p_mu, p_sd) = (prior_mu.data()[j], prior_sigma.data()[j]);
            total += (p_sd / q_sd).ln()
                + (q_sd * q_sd + (q_mu - p_mu) * (q_mu - p_mu)) / (2.0 * p_sd * p_sd)
                - 0.5;
        }
    }
    total / n as f32
}

/// Gradients of [`kl_gauss`] for upstream gradient `g`, in input order
/// `(∂μ, ∂σ, ∂m, ∂s)`.
pub fn kl_gauss_grads(
    mu: &Tensor,
    sigma: &Tensor,
    prior_mu: &Tensor,
    prior_sigma: &Tensor,
    g: f32,
) -> (Tensor, Tensor, Tensor, Tensor) {
    let (n, d) = (mu.shape()[0], mu.shape()[1]);
    let nf = n as f32;
    let mut dmu = vec![0.0f32; n * d];
    let mut dsigma = vec![0.0f32; n * d];
    let mut dpm = vec![0.0f32; d];
    let mut dps = vec![0.0f32; d];
    for i in 0..n {
        for j in 0..d {
            let (q_mu, q_sd) = (mu.data()[i * d + j], sigma.data()[i * d + j]);
            let (p_mu, p_sd) = (prior_mu.data()[j], prior_sigma.data()[j]);
            dmu[i * d + j] = g * (q_mu - p_mu) / (nf * p_sd * p_sd);
            dsigma[i * d + j] = g * (q_sd / (p_sd * p_sd) - 1.0 / q_sd) / nf;
            dpm[j] += g * (p_mu - q_mu) / (nf * p_sd * p_sd);
            dps[j] += g
                * (1.0 / p_sd - (q_sd * q_sd + (q_mu - p_mu) * (q_mu - p_mu)) / (p_sd.powi(3)))
                / nf;
        }
    }
    (
        Tensor::from_vec(dmu, mu.shape()).expect("same shape"),
        Tensor::from_vec(dsigma, mu.shape()).expect("same shape"),
        Tensor::from_vec(dpm, &[d]).expect("same shape"),
        Tensor::from_vec(dps, &[d]).expect("same shape"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_fn(&[3, 3], |i| (i[0] * 3 + i[1]) as f32);
        let id = Tensor::eye(3);
        assert_eq!(matmul(&a, &id), a);
    }

    #[test]
    fn matmul_variants_agree_on_transposed_operands() {
        let a = Tensor::from_fn(&[4, 3], |i| (i[0] * 3 + i[1]) as f32 * 0.5);
        let b = Tensor::from_fn(&[3, 5], |i| (i[0] + i[1] * 2) as f32 * 0.25);
        let plain = matmul(&a, &b);
        let nt = matmul_nt(&a, &b.transpose().unwrap());
        let tn = matmul_tn(&a.transpose().unwrap(), &b);
        assert_eq!(plain, nt);
        assert_eq!(plain, tn);
    }

    #[test]
    fn conv_identity_kernel() {
        let x = Tensor::from_fn(&[1, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f32);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let spec = Conv2dSpec::new(1, 1, 1, 1, 0);
        assert_eq!(conv2d(&x, &w, None, &spec), x);
    }

    #[test]
    fn conv_single_patch() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[1, 1, 2, 2]).unwrap();
        let spec = Conv2dSpec::new(1, 1, 2, 1, 0);
        assert_eq!(conv2d(&x, &w, None, &spec).data(), &[5.0]);
    }

    #[test]
    fn conv_bias_added_per_channel() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![1.5, -2.5], &[2]).unwrap();
        let spec = Conv2dSpec::new(1, 2, 1, 1, 0);
        let y = conv2d(&x, &w, Some(&b), &spec);
        assert_eq!(y.data()[0], 1.5);
        assert_eq!(y.data()[4], -2.5);
    }

    #[test]
    fn conv_backward_matches_sum_loss_hand_calc() {
        // L = sum(conv(x, w)) with a 1x1 all-ones kernel: dw = sum(x), dx = 1.
        let x = Tensor::from_fn(&[1, 1, 2, 2], |i| (i[2] * 2 + i[3] + 1) as f32);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let spec = Conv2dSpec::new(1, 1, 1, 1, 0);
        let grad = Tensor::ones(&[1, 1, 2, 2]);
        let (dx, dw, db) = conv2d_backward(&x, &w, &grad, &spec);
        assert_eq!(dw.data(), &[10.0]);
        assert_eq!(dx.data(), &[1.0; 4]);
        assert_eq!(db.data(), &[4.0]);
    }

    #[test]
    fn sqdist_diagonal_zero_and_symmetric() {
        let x = Tensor::from_fn(&[4, 3], |i| (i[0] * 2 + i[1]) as f32 * 0.7);
        let d = pairwise_sqdist(&x);
        for i in 0..4 {
            assert_eq!(d.data()[i * 4 + i], 0.0);
            for j in 0..4 {
                assert_eq!(d.data()[i * 4 + j], d.data()[j * 4 + i]);
            }
        }
    }

    #[test]
    fn gaussian_kernel_unit_diagonal() {
        let x = Tensor::from_fn(&[3, 2], |i| i[0] as f32);
        let k = gaussian_kernel(&x, 1.0);
        for i in 0..3 {
            assert_eq!(k.data()[i * 3 + i], 1.0);
        }
        // off-diagonal entries decay with distance
        assert!(k.data()[1] > k.data()[2]);
    }

    #[test]
    fn centering_rows_sum_to_zero() {
        let h = centering(5);
        for i in 0..5 {
            let row_sum: f32 = h.data()[i * 5..(i + 1) * 5].iter().sum();
            assert!(row_sum.abs() < 1e-6);
        }
    }

    #[test]
    fn hsic_zero_for_constant_input() {
        let x = Tensor::ones(&[6, 3]);
        let y = Tensor::from_fn(&[6, 2], |i| i[0] as f32);
        assert!(hsic(&x, &y, 1.0, 1.0).abs() < 1e-5);
    }

    #[test]
    fn median_sigma_hand_value() {
        let x = Tensor::from_vec(vec![0.0, 0.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert!((median_sigma(&x) - 5.0).abs() < 1e-5);
        assert_eq!(median_sigma(&Tensor::ones(&[1, 2])), 1.0);
        assert!(median_sigma(&Tensor::ones(&[4, 2])) >= 1e-3);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Tensor::from_fn(&[3, 4], |i| (i[0] * 4 + i[1]) as f32 * 0.3 - 1.0);
        let s = softmax(&l);
        for i in 0..3 {
            let sum: f32 = s.data()[i * 4..(i + 1) * 4].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let l = Tensor::from_fn(&[2, 5], |i| (i[1] as f32) * 0.9 - (i[0] as f32));
        let s = softmax(&l);
        let ls = log_softmax(&l);
        for (a, b) in s.data().iter().zip(ls.data()) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn uniform_logits_give_log_k_entropy() {
        let l = Tensor::zeros(&[4, 10]);
        let ce = cross_entropy(&l, &[0, 3, 7, 9]);
        assert!((ce - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_grad_rows_sum_to_zero() {
        let l = Tensor::from_fn(&[3, 4], |i| ((i[0] + i[1]) % 3) as f32);
        let g = cross_entropy_grad(&l, &[0, 1, 2]);
        for i in 0..3 {
            let sum: f32 = g.data()[i * 4..(i + 1) * 4].iter().sum();
            assert!(sum.abs() < 1e-6);
        }
    }

    #[test]
    fn fgsm_step_moves_by_eps_and_clips() {
        let x = Tensor::from_vec(vec![0.5, 0.99, 0.0], &[3]).unwrap();
        let g = Tensor::from_vec(vec![1.0, 1.0, -1.0], &[3]).unwrap();
        let y = fgsm_step(&x, &g, 0.1);
        assert_eq!(y.data(), &[0.6, 1.0, 0.0]);
    }

    #[test]
    fn fgsm_step_zero_eps_identity() {
        let x = Tensor::from_vec(vec![0.2, 0.8], &[2]).unwrap();
        let g = Tensor::from_vec(vec![3.0, -2.0], &[2]).unwrap();
        assert_eq!(fgsm_step(&x, &g, 0.0), x);
    }

    #[test]
    fn softplus_known_values() {
        let x = Tensor::from_vec(vec![0.0, 1.0, -1.0], &[3]).unwrap();
        let y = softplus(&x);
        assert!((y.data()[0] - 2.0f32.ln()).abs() < 1e-6);
        assert!((y.data()[1] - (1.0 + 1.0f32.exp()).ln()).abs() < 1e-6);
        // softplus(x) + softplus(-x) = x + 2·softplus(-x) ⇒ softplus(-1) = softplus(1) − 1.
        assert!((y.data()[2] - (y.data()[1] - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn softplus_grad_is_sigmoid() {
        let x = Tensor::from_vec(vec![0.0, 2.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let d = softplus_grad(&x, &g);
        assert!((d.data()[0] - 0.5).abs() < 1e-6);
        assert!((d.data()[1] - 1.0 / (1.0 + (-2.0f32).exp())).abs() < 1e-6);
    }

    #[test]
    fn rsample_is_affine_in_noise() {
        let mu = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let sigma = Tensor::from_vec(vec![0.5, 3.0], &[1, 2]).unwrap();
        let eps = Tensor::from_vec(vec![2.0, -1.0], &[1, 2]).unwrap();
        assert_eq!(rsample(&mu, &sigma, &eps).data(), &[2.0, -1.0]);
        let (dmu, dsigma) =
            rsample_grads(&eps, &Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap());
        assert_eq!(dmu.data(), &[1.0, 1.0]);
        assert_eq!(dsigma.data(), &[2.0, -1.0]);
    }

    #[test]
    fn kl_gauss_zero_for_matching_distributions() {
        let mu = Tensor::from_vec(vec![0.3, -0.7, 0.3, -0.7], &[2, 2]).unwrap();
        let sigma = Tensor::from_vec(vec![1.5, 0.5, 1.5, 0.5], &[2, 2]).unwrap();
        let pm = Tensor::from_vec(vec![0.3, -0.7], &[2]).unwrap();
        let ps = Tensor::from_vec(vec![1.5, 0.5], &[2]).unwrap();
        assert!(kl_gauss(&mu, &sigma, &pm, &ps).abs() < 1e-6);
    }

    #[test]
    fn kl_gauss_standard_normal_case() {
        // KL(N(μ, σ²) ‖ N(0, 1)) = −ln σ + (σ² + μ² − 1)/2.
        let (m, s) = (0.8f32, 0.6f32);
        let mu = Tensor::from_vec(vec![m], &[1, 1]).unwrap();
        let sigma = Tensor::from_vec(vec![s], &[1, 1]).unwrap();
        let pm = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        let ps = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let want = -s.ln() + (s * s + m * m - 1.0) / 2.0;
        assert!((kl_gauss(&mu, &sigma, &pm, &ps) - want).abs() < 1e-6);
    }

    #[test]
    fn kl_gauss_grads_match_finite_differences() {
        let mu = Tensor::from_vec(vec![0.4, -0.2], &[1, 2]).unwrap();
        let sigma = Tensor::from_vec(vec![0.9, 1.3], &[1, 2]).unwrap();
        let pm = Tensor::from_vec(vec![0.1, 0.0], &[2]).unwrap();
        let ps = Tensor::from_vec(vec![1.1, 0.8], &[2]).unwrap();
        let (dmu, dsigma, dpm, dps) = kl_gauss_grads(&mu, &sigma, &pm, &ps, 1.0);
        let eps = 1e-3f32;
        let fd = |f: &dyn Fn(f32) -> f32| (f(eps) - f(-eps)) / (2.0 * eps);
        let bump = |t: &Tensor, idx: usize, h: f32| {
            let mut v = t.data().to_vec();
            v[idx] += h;
            Tensor::from_vec(v, t.shape()).unwrap()
        };
        for j in 0..2 {
            let fd_mu = fd(&|h| kl_gauss(&bump(&mu, j, h), &sigma, &pm, &ps));
            assert!((dmu.data()[j] - fd_mu).abs() < 1e-3, "dmu[{j}]");
            let fd_sd = fd(&|h| kl_gauss(&mu, &bump(&sigma, j, h), &pm, &ps));
            assert!((dsigma.data()[j] - fd_sd).abs() < 1e-3, "dsigma[{j}]");
            let fd_pm = fd(&|h| kl_gauss(&mu, &sigma, &bump(&pm, j, h), &ps));
            assert!((dpm.data()[j] - fd_pm).abs() < 1e-3, "dpm[{j}]");
            let fd_ps = fd(&|h| kl_gauss(&mu, &sigma, &pm, &bump(&ps, j, h)));
            assert!((dps.data()[j] - fd_ps).abs() < 1e-3, "dps[{j}]");
        }
    }

    #[test]
    fn pgd_step_projects_onto_ball() {
        let orig = Tensor::from_vec(vec![0.5, 0.5], &[2]).unwrap();
        // iterate already at the ball edge; a further step must be projected
        let x = Tensor::from_vec(vec![0.58, 0.42], &[2]).unwrap();
        let g = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let y = pgd_step(&x, &orig, &g, 0.05, 0.08);
        assert!((y.data()[0] - 0.58).abs() < 1e-6);
        assert!((y.data()[1] - 0.42).abs() < 1e-6);
    }
}
