//! Tolerance policy and tensor comparison for differential tests.
//!
//! An element passes when **any** of the three criteria holds:
//!
//! - absolute: `|got − want| ≤ abs`
//! - relative: `|got − want| ≤ rel · |want|`
//! - ULP: the two bit patterns are within `ulp` representable floats
//!
//! The OR combination mirrors the gradcheck helper: absolute tolerance
//! covers values near zero where relative error blows up, relative/ULP
//! cover large magnitudes where a fixed absolute threshold is too strict.

use ibrar_tensor::Tensor;

/// Pass thresholds for a differential comparison.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Absolute error bound.
    pub abs: f32,
    /// Relative error bound (w.r.t. the oracle value).
    pub rel: f32,
    /// Units-in-the-last-place bound.
    pub ulp: u32,
}

impl Tolerance {
    /// Bitwise equality only.
    pub const EXACT: Tolerance = Tolerance {
        abs: 0.0,
        rel: 0.0,
        ulp: 0,
    };

    /// Absolute + relative bounds, no ULP allowance.
    pub fn abs_rel(abs: f32, rel: f32) -> Self {
        Tolerance { abs, rel, ulp: 0 }
    }

    /// Pure ULP bound.
    pub fn ulps(ulp: u32) -> Self {
        Tolerance {
            abs: 0.0,
            rel: 0.0,
            ulp,
        }
    }

    /// The workspace default for reduction kernels (matmul, conv, HSIC):
    /// accumulation reordering costs at most a few ULPs per term, so allow
    /// a small relative error plus an absolute floor for near-zero sums.
    pub fn reduction() -> Self {
        Tolerance {
            abs: 1e-5,
            rel: 1e-5,
            ulp: 16,
        }
    }

    /// Whether a single got/want pair is within tolerance.
    pub fn accepts(&self, got: f32, want: f32) -> bool {
        if got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()) {
            return true;
        }
        let abs_err = (got - want).abs();
        abs_err <= self.abs
            || abs_err <= self.rel * want.abs()
            || ulp_distance(got, want) <= self.ulp
    }
}

/// Distance between two floats in representable steps.
///
/// Returns `u32::MAX` for NaNs or opposite-sign pairs (other than the two
/// zeros, which are 0 apart by convention).
pub fn ulp_distance(a: f32, b: f32) -> u32 {
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    if a == b {
        return 0; // covers +0.0 vs -0.0
    }
    if (a < 0.0) != (b < 0.0) {
        return u32::MAX;
    }
    let (ia, ib) = (a.abs().to_bits(), b.abs().to_bits());
    ia.abs_diff(ib)
}

/// A failed comparison, pinpointing the worst element.
#[derive(Debug, Clone)]
pub struct DiffError {
    /// Comparison label (kernel + case id).
    pub label: String,
    /// Flat index of the worst element.
    pub index: usize,
    /// Optimized value at that index.
    pub got: f32,
    /// Oracle value at that index.
    pub want: f32,
    /// Absolute error there.
    pub abs_err: f32,
    /// ULP distance there.
    pub ulp: u32,
    /// How many elements failed in total.
    pub failures: usize,
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} element(s) out of tolerance; worst at [{}]: got {} (bits {:#010x}) vs oracle {} (bits {:#010x}), abs err {:e}, {} ulp",
            self.label,
            self.failures,
            self.index,
            self.got,
            self.got.to_bits(),
            self.want,
            self.want.to_bits(),
            self.abs_err,
            self.ulp,
        )
    }
}

/// Compares an optimized tensor against its oracle counterpart.
///
/// # Errors
///
/// Returns a [`DiffError`] naming the worst element when shapes disagree
/// or any element exceeds the tolerance.
pub fn compare(label: &str, got: &Tensor, want: &Tensor, tol: Tolerance) -> Result<(), DiffError> {
    if got.shape() != want.shape() {
        return Err(DiffError {
            label: format!(
                "{label}: shape mismatch {:?} vs oracle {:?}",
                got.shape(),
                want.shape()
            ),
            index: 0,
            got: f32::NAN,
            want: f32::NAN,
            abs_err: f32::NAN,
            ulp: u32::MAX,
            failures: 0,
        });
    }
    let mut worst: Option<DiffError> = None;
    let mut failures = 0usize;
    for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
        if tol.accepts(g, w) {
            continue;
        }
        failures += 1;
        let abs_err = (g - w).abs();
        let replace = worst
            .as_ref()
            .map(|prev| abs_err > prev.abs_err || !abs_err.is_finite())
            .unwrap_or(true);
        if replace {
            worst = Some(DiffError {
                label: label.to_string(),
                index: i,
                got: g,
                want: w,
                abs_err,
                ulp: ulp_distance(g, w),
                failures: 0,
            });
        }
    }
    match worst {
        Some(mut e) => {
            e.failures = failures;
            Err(e)
        }
        None => Ok(()),
    }
}

/// Scalar variant of [`compare`].
///
/// # Errors
///
/// Returns a [`DiffError`] when the pair is out of tolerance.
pub fn compare_scalar(label: &str, got: f32, want: f32, tol: Tolerance) -> Result<(), DiffError> {
    if tol.accepts(got, want) {
        return Ok(());
    }
    Err(DiffError {
        label: label.to_string(),
        index: 0,
        got,
        want,
        abs_err: (got - want).abs(),
        ulp: ulp_distance(got, want),
        failures: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(1.0, -1.0), u32::MAX);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u32::MAX);
    }

    #[test]
    fn exact_tolerance_requires_bit_equality() {
        let t = Tolerance::EXACT;
        assert!(t.accepts(0.1, 0.1));
        assert!(!t.accepts(0.1, 0.1 + 1e-7));
    }

    #[test]
    fn abs_tolerance_covers_near_zero() {
        let t = Tolerance::abs_rel(1e-6, 0.0);
        assert!(t.accepts(1e-7, 0.0));
        assert!(!t.accepts(1e-5, 0.0));
    }

    #[test]
    fn rel_tolerance_scales_with_magnitude() {
        let t = Tolerance::abs_rel(0.0, 1e-6);
        assert!(t.accepts(1e6, 1e6 + 0.5));
        assert!(!t.accepts(1.0, 1.1));
    }

    #[test]
    fn compare_reports_worst_element() {
        let got = Tensor::from_vec(vec![1.0, 2.0, 3.5], &[3]).unwrap();
        let want = Tensor::from_vec(vec![1.0, 2.1, 3.0], &[3]).unwrap();
        let err = compare("t", &got, &want, Tolerance::abs_rel(0.05, 0.0)).unwrap_err();
        assert_eq!(err.index, 2);
        assert_eq!(err.failures, 2);
        assert!(err.to_string().contains("worst at [2]"));
    }

    #[test]
    fn compare_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(compare("t", &a, &b, Tolerance::reduction()).is_err());
    }

    #[test]
    fn compare_accepts_identical() {
        let a = Tensor::from_fn(&[5], |i| i[0] as f32 * 0.3);
        assert!(compare("t", &a, &a.clone(), Tolerance::EXACT).is_ok());
    }

    #[test]
    fn nan_pairs_accepted_nan_mismatch_rejected() {
        let t = Tolerance::reduction();
        assert!(t.accepts(f32::NAN, f32::NAN));
        assert!(!t.accepts(f32::NAN, 1.0));
    }
}
