//! Deterministic input generation for differential tests.
//!
//! A small SplitMix64 stream, deliberately independent of the `rand`
//! crate: differential and golden tests must produce bit-identical inputs
//! regardless of which `rand` build (or stub) the workspace links, so the
//! oracle carries its own generator.

use ibrar_tensor::Tensor;

/// SplitMix64 pseudo-random stream (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform f32 in `[0, 1)` with 24 bits of precision.
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.unit_f32() * (hi - lo)
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }

    /// Tensor of the given shape filled with uniform values in `[lo, hi)`.
    pub fn tensor(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        let len: usize = shape.iter().product();
        let data: Vec<f32> = (0..len).map(|_| self.f32_in(lo, hi)).collect();
        Tensor::from_vec(data, shape).expect("length matches shape by construction")
    }

    /// `n` class labels drawn uniformly from `0..classes`.
    pub fn labels(&mut self, n: usize, classes: usize) -> Vec<usize> {
        (0..n).map(|_| self.usize_in(0, classes - 1)).collect()
    }

    /// Standard-normal f32 via the Box–Muller transform.
    ///
    /// Consumes exactly two `next_u64` draws per value (no cached spare),
    /// so the stream position after `k` calls is the same on every build —
    /// the property the VIB noise-freezing contract (DESIGN.md §16) relies
    /// on.
    pub fn normal_f32(&mut self) -> f32 {
        // u1 ∈ (0, 1] keeps the log argument strictly positive.
        let u1 = 1.0 - self.unit_f32();
        let u2 = self.unit_f32();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }

    /// Tensor of the given shape filled with standard-normal values.
    pub fn normal_tensor(&mut self, shape: &[usize]) -> Tensor {
        let len: usize = shape.iter().product();
        let data: Vec<f32> = (0..len).map(|_| self.normal_f32()).collect();
        Tensor::from_vec(data, shape).expect("length matches shape by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = Gen::new(42);
        let mut b = Gen::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(Gen::new(1).next_u64(), Gen::new(2).next_u64());
    }

    #[test]
    fn unit_range() {
        let mut g = Gen::new(7);
        for _ in 0..1000 {
            let v = g.unit_f32();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn tensor_shape_and_range() {
        let mut g = Gen::new(3);
        let t = g.tensor(&[4, 5], -2.0, 3.0);
        assert_eq!(t.shape(), &[4, 5]);
        assert!(t.min() >= -2.0 && t.max() < 3.0);
    }

    #[test]
    fn labels_in_range() {
        let mut g = Gen::new(9);
        let ls = g.labels(64, 10);
        assert_eq!(ls.len(), 64);
        assert!(ls.iter().all(|&l| l < 10));
    }

    #[test]
    fn normal_is_deterministic_and_plausible() {
        let mut a = Gen::new(123);
        let mut b = Gen::new(123);
        let n = 4096;
        let xs: Vec<f32> = (0..n).map(|_| a.normal_f32()).collect();
        let ys: Vec<f32> = (0..n).map(|_| b.normal_f32()).collect();
        assert!(xs.iter().zip(&ys).all(|(x, y)| x.to_bits() == y.to_bits()));
        let mean: f32 = xs.iter().sum::<f32>() / n as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn normal_tensor_shape() {
        let mut g = Gen::new(5);
        let t = g.normal_tensor(&[3, 7]);
        assert_eq!(t.shape(), &[3, 7]);
    }

    #[test]
    fn usize_covers_bounds() {
        let mut g = Gen::new(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[g.usize_in(0, 3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
