//! Bitwise-exact golden snapshots.
//!
//! A [`Snapshot`] is an ordered list of named values. Floats are stored
//! as their `f32::to_bits` patterns (with a human-readable `approx`
//! field alongside), so "matches the golden file" means *bit-identical*,
//! not approximately equal — decimal round-tripping never enters the
//! comparison. 64-bit hashes are stored as decimal strings because JSON
//! numbers cannot carry a full u64 exactly.
//!
//! Regeneration flow: run the golden tests with `IBRAR_BLESS=1` to
//! rewrite every snapshot from the current build, then commit the diff.
//! Without the variable a missing or mismatching snapshot is a test
//! failure that names the first divergent entry.

use ibrar_telemetry::json::{write_string, Json};
use std::fmt::Write as _;
use std::path::Path;

/// One recorded value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An f32, stored by bit pattern.
    F32(u32),
    /// A vector of f32 bit patterns.
    F32s(Vec<u32>),
    /// An unsigned 64-bit value (hashes, counts).
    U64(u64),
    /// A string (names, shapes).
    Str(String),
}

/// An ordered collection of named golden values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    name: String,
    entries: Vec<(String, Value)>,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new(name: impl Into<String>) -> Self {
        Snapshot {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// The snapshot name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The recorded entries in insertion order.
    pub fn entries(&self) -> &[(String, Value)] {
        &self.entries
    }

    /// Records an f32 by bit pattern.
    pub fn push_f32(&mut self, key: impl Into<String>, v: f32) {
        self.entries.push((key.into(), Value::F32(v.to_bits())));
    }

    /// Records a slice of f32s by bit pattern.
    pub fn push_f32s(&mut self, key: impl Into<String>, vs: &[f32]) {
        self.entries.push((
            key.into(),
            Value::F32s(vs.iter().map(|v| v.to_bits()).collect()),
        ));
    }

    /// Records a u64 (stored as a decimal string in JSON).
    pub fn push_u64(&mut self, key: impl Into<String>, v: u64) {
        self.entries.push((key.into(), Value::U64(v)));
    }

    /// Records a string.
    pub fn push_str(&mut self, key: impl Into<String>, v: impl Into<String>) {
        self.entries.push((key.into(), Value::Str(v.into())));
    }

    /// Serializes to the golden JSON format (stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"name\": ");
        write_string(&self.name, &mut out);
        out.push_str(",\n  \"entries\": [");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"key\": ");
            write_string(key, &mut out);
            match value {
                Value::F32(bits) => {
                    let _ = write!(
                        out,
                        ", \"type\": \"f32\", \"bits\": {bits}, \"approx\": \"{}\"",
                        f32::from_bits(*bits)
                    );
                }
                Value::F32s(bits) => {
                    out.push_str(", \"type\": \"f32s\", \"bits\": [");
                    for (j, b) in bits.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push(']');
                }
                Value::U64(v) => {
                    let _ = write!(out, ", \"type\": \"u64\", \"value\": \"{v}\"");
                }
                Value::Str(s) => {
                    out.push_str(", \"type\": \"str\", \"value\": ");
                    write_string(s, &mut out);
                }
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses the golden JSON format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed element.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let root = Json::parse(text)?;
        let name = root
            .get("name")
            .and_then(Json::as_str)
            .ok_or("snapshot missing \"name\"")?
            .to_string();
        let mut snap = Snapshot::new(name);
        let entries = root
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("snapshot missing \"entries\" array")?;
        for (i, entry) in entries.iter().enumerate() {
            let key = entry
                .get("key")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("entry {i} missing \"key\""))?
                .to_string();
            let ty = entry
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("entry {i} missing \"type\""))?;
            let value = match ty {
                "f32" => {
                    let bits = entry
                        .get("bits")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("entry {i} missing \"bits\""))?;
                    Value::F32(bits as u32)
                }
                "f32s" => {
                    let arr = entry
                        .get("bits")
                        .and_then(Json::as_array)
                        .ok_or_else(|| format!("entry {i} missing \"bits\" array"))?;
                    let bits = arr
                        .iter()
                        .map(|v| v.as_f64().map(|f| f as u32))
                        .collect::<Option<Vec<u32>>>()
                        .ok_or_else(|| format!("entry {i} has non-numeric bits"))?;
                    Value::F32s(bits)
                }
                "u64" => {
                    let s = entry
                        .get("value")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("entry {i} missing \"value\""))?;
                    Value::U64(
                        s.parse::<u64>()
                            .map_err(|e| format!("entry {i}: bad u64 {s:?}: {e}"))?,
                    )
                }
                "str" => Value::Str(
                    entry
                        .get("value")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("entry {i} missing \"value\""))?
                        .to_string(),
                ),
                other => return Err(format!("entry {i} has unknown type {other:?}")),
            };
            snap.entries.push((key, value));
        }
        Ok(snap)
    }

    /// First entry (by insertion order) where `self` and `other` disagree.
    fn first_divergence(&self, other: &Snapshot) -> Option<String> {
        if self.name != other.name {
            return Some(format!(
                "snapshot name {:?} vs golden {:?}",
                self.name, other.name
            ));
        }
        for (i, (mine, theirs)) in self.entries.iter().zip(&other.entries).enumerate() {
            if mine != theirs {
                return Some(format!(
                    "entry {i} diverges: computed {mine:?} vs golden {theirs:?}"
                ));
            }
        }
        if self.entries.len() != other.entries.len() {
            return Some(format!(
                "entry count {} vs golden {}",
                self.entries.len(),
                other.entries.len()
            ));
        }
        None
    }
}

/// FNV-1a hash of a float slice's bit patterns.
///
/// Collapses a large tensor into one golden entry; any single-bit change
/// in any element changes the digest.
pub fn hash_bits(vals: &[f32]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for v in vals {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Whether the `IBRAR_BLESS=1` regeneration flow is active.
pub fn bless_requested() -> bool {
    std::env::var("IBRAR_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Checks `snap` against the golden file at `path`, or rewrites it under
/// `IBRAR_BLESS=1`.
///
/// # Errors
///
/// Returns a message when the file is missing (with bless instructions),
/// unreadable, unparsable, or when any entry's bits diverge.
pub fn check_snapshot(path: &Path, snap: &Snapshot) -> Result<(), String> {
    if bless_requested() {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        std::fs::write(path, snap.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        return Ok(());
    }
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "golden snapshot {} unreadable ({e}); run the golden tests once with \
             IBRAR_BLESS=1 to (re)generate it, then commit the file",
            path.display()
        )
    })?;
    let golden = Snapshot::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    match snap.first_divergence(&golden) {
        None => Ok(()),
        Some(msg) => Err(format!(
            "{}: {msg}. If the change is intentional, rebless with IBRAR_BLESS=1",
            path.display()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new("sample");
        s.push_f32("loss", 0.125);
        s.push_f32s("row", &[1.0, -2.5, 0.0]);
        s.push_u64("hash", u64::MAX - 7);
        s.push_str("attack", "FGSM");
        s
    }

    #[test]
    fn json_round_trip_is_exact() {
        let s = sample();
        let parsed = Snapshot::parse(&s.to_json()).unwrap();
        assert_eq!(s, parsed);
    }

    #[test]
    fn round_trip_preserves_awkward_floats() {
        let mut s = Snapshot::new("awkward");
        for (i, v) in [
            f32::MIN_POSITIVE,
            -0.0,
            f32::NAN,
            f32::INFINITY,
            1.0 + f32::EPSILON,
            -3.4028235e38,
        ]
        .into_iter()
        .enumerate()
        {
            s.push_f32(format!("v{i}"), v);
        }
        let parsed = Snapshot::parse(&s.to_json()).unwrap();
        assert_eq!(s, parsed, "bit patterns must survive the round trip");
    }

    #[test]
    fn u64_survives_beyond_f64_precision() {
        let mut s = Snapshot::new("big");
        s.push_u64("h", (1 << 63) + 1); // not representable in f64
        let parsed = Snapshot::parse(&s.to_json()).unwrap();
        assert_eq!(s, parsed);
    }

    #[test]
    fn divergence_names_first_bad_entry() {
        let a = sample();
        let mut b = sample();
        b.entries[1].1 = Value::F32s(vec![1.0f32.to_bits()]);
        let msg = a.first_divergence(&b).unwrap();
        assert!(msg.contains("entry 1"), "{msg}");
    }

    #[test]
    fn check_snapshot_missing_file_mentions_bless() {
        let dir = std::env::temp_dir().join("ibrar-oracle-golden-missing");
        let _ = std::fs::remove_dir_all(&dir);
        let err = check_snapshot(&dir.join("nope.json"), &sample()).unwrap_err();
        assert!(err.contains("IBRAR_BLESS=1"), "{err}");
    }

    #[test]
    fn check_snapshot_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("ibrar-oracle-golden-rt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.json");
        let s = sample();
        std::fs::write(&path, s.to_json()).unwrap();
        assert!(check_snapshot(&path, &s).is_ok());
        let mut other = sample();
        other.push_f32("extra", 1.0);
        let err = check_snapshot(&path, &other).unwrap_err();
        assert!(err.contains("rebless"), "{err}");
    }

    #[test]
    fn hash_bits_is_bit_sensitive() {
        let base = vec![1.0f32, -2.5, 0.0];
        let mut tweaked = base.clone();
        tweaked[1] = f32::from_bits(tweaked[1].to_bits() ^ 1);
        assert_ne!(hash_bits(&base), hash_bits(&tweaked));
        assert_eq!(hash_bits(&base), hash_bits(&base.clone()));
        // +0.0 and -0.0 are different bit patterns, so different digests.
        assert_ne!(hash_bits(&[0.0]), hash_bits(&[-0.0]));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Snapshot::parse("{}").is_err());
        assert!(Snapshot::parse("{\"name\": \"x\"}").is_err());
        assert!(Snapshot::parse("{\"name\": \"x\", \"entries\": [{\"key\": \"k\"}]}").is_err());
    }
}
