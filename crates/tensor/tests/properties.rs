//! Property-based tests for the tensor substrate.

use ibrar_tensor::{col2im, im2col, Conv2dSpec, Tensor};
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]).unwrap())
    })
}

proptest! {
    #[test]
    fn add_is_commutative(a in small_matrix()) {
        let b = a.map(|v| v * 0.5 - 1.0);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(ab.max_abs_diff(&ba).unwrap() < 1e-6);
    }

    #[test]
    fn sub_then_add_roundtrips(a in small_matrix()) {
        let b = a.map(|v| v * 0.25 + 2.0);
        let back = a.sub(&b).unwrap().add(&b).unwrap();
        prop_assert!(back.max_abs_diff(&a).unwrap() < 1e-4);
    }

    #[test]
    fn transpose_preserves_sum(a in small_matrix()) {
        let t = a.transpose().unwrap();
        prop_assert!((a.sum() - t.sum()).abs() < 1e-3);
    }

    #[test]
    fn matmul_distributes_over_add(
        dims in (1usize..5, 1usize..5, 1usize..5),
        seed in 0u64..1000,
    ) {
        let (m, k, n) = dims;
        let gen = |s: u64, len: usize| -> Vec<f32> {
            (0..len).map(|i| (((i as u64 * 2654435761 + s * 40503) % 1000) as f32 / 500.0) - 1.0).collect()
        };
        let a = Tensor::from_vec(gen(seed, m * k), &[m, k]).unwrap();
        let b = Tensor::from_vec(gen(seed + 1, k * n), &[k, n]).unwrap();
        let c = Tensor::from_vec(gen(seed + 2, k * n), &[k, n]).unwrap();
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
    }

    #[test]
    fn reshape_preserves_data(a in small_matrix()) {
        let flat = a.flatten();
        prop_assert_eq!(flat.data(), a.data());
        let back = flat.reshape(a.shape()).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn relu_is_idempotent(a in small_matrix()) {
        let once = a.relu();
        let twice = once.relu();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn clamp_is_within_bounds(a in small_matrix()) {
        let c = a.clamp(-1.0, 1.0);
        prop_assert!(c.max() <= 1.0);
        prop_assert!(c.min() >= -1.0);
    }

    #[test]
    fn im2col_col2im_adjoint(
        hw in (3usize..7, 3usize..7),
        c in 1usize..3,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let (h, w) = hw;
        let spec = Conv2dSpec::new(c, 1, 3, stride, pad);
        if spec.out_hw(h, w).is_err() {
            return Ok(());
        }
        let x = Tensor::from_fn(&[1, c, h, w], |i| {
            ((i[1] * 13 + i[2] * 5 + i[3] * 3) % 17) as f32 * 0.3 - 1.5
        });
        let cols = im2col(&x, &spec).unwrap();
        let y = Tensor::from_fn(cols.shape(), |i| ((i[0] * 7 + i[1] * 11) % 9) as f32 * 0.2 - 0.8);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &spec, 1, h, w).unwrap();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2);
    }

    #[test]
    fn encode_decode_roundtrip(a in small_matrix()) {
        let mut bytes = a.encode();
        let back = Tensor::decode(&mut bytes).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn norms_per_sample_nonnegative(a in small_matrix()) {
        let norms = a.norms_per_sample().unwrap();
        prop_assert!(norms.min() >= 0.0);
    }
}
