//! Differential tests: optimized tensor kernels vs the `ibrar-oracle`
//! naive reference implementations.
//!
//! Every family runs ≥100 seeded random cases. The optimized kernels tile
//! and parallelize, which reorders floating-point accumulation, so
//! comparisons use [`Tolerance::reduction`] (small rel/abs + 16 ULP)
//! rather than bitwise equality. A handful of cases are sized past the
//! parallel-dispatch threshold and repeated under 1 and 4 threads so the
//! threaded paths are exercised too.

use ibrar_oracle::{compare, kernels, Gen, Tolerance};
use ibrar_tensor::{col2im, im2col, parallel, Conv2dSpec, Tensor};

const CASES: usize = 100;

/// Slightly looser absolute floor than `Tolerance::reduction()` for the
/// large parallel cases, where cancellation across a k≈128 reduction can
/// leave a near-zero result with O(1e-5) reordering noise.
fn large_case_tol() -> Tolerance {
    Tolerance {
        abs: 1e-4,
        rel: 1e-5,
        ulp: 16,
    }
}

#[test]
fn matmul_matches_oracle() {
    let mut g = Gen::new(0xA001);
    for case in 0..CASES {
        let (m, k, n) = (g.usize_in(1, 12), g.usize_in(1, 12), g.usize_in(1, 12));
        let a = g.tensor(&[m, k], -2.0, 2.0);
        let b = g.tensor(&[k, n], -2.0, 2.0);
        let got = a.matmul(&b).unwrap();
        let want = kernels::matmul(&a, &b);
        compare(
            &format!("matmul case {case} ({m}x{k}x{n})"),
            &got,
            &want,
            Tolerance::reduction(),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn matmul_nt_matches_oracle() {
    let mut g = Gen::new(0xA002);
    for case in 0..CASES {
        let (m, k, n) = (g.usize_in(1, 12), g.usize_in(1, 12), g.usize_in(1, 12));
        let a = g.tensor(&[m, k], -2.0, 2.0);
        let b = g.tensor(&[n, k], -2.0, 2.0); // rhs transposed layout
        let got = a.matmul_nt(&b).unwrap();
        let want = kernels::matmul_nt(&a, &b);
        compare(
            &format!("matmul_nt case {case} ({m}x{k}x{n})"),
            &got,
            &want,
            Tolerance::reduction(),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn matmul_tn_matches_oracle() {
    let mut g = Gen::new(0xA003);
    for case in 0..CASES {
        let (m, k, n) = (g.usize_in(1, 12), g.usize_in(1, 12), g.usize_in(1, 12));
        let a = g.tensor(&[k, m], -2.0, 2.0); // lhs transposed layout
        let b = g.tensor(&[k, n], -2.0, 2.0);
        let got = a.matmul_tn(&b).unwrap();
        let want = kernels::matmul_tn(&a, &b);
        compare(
            &format!("matmul_tn case {case} ({m}x{k}x{n})"),
            &got,
            &want,
            Tolerance::reduction(),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn matmul_large_cases_match_oracle_under_thread_configs() {
    // Big enough to clear the parallel-dispatch threshold; checked under
    // both a single worker and several so the chunked path is covered.
    let mut g = Gen::new(0xA004);
    let a = g.tensor(&[64, 128], -2.0, 2.0);
    let b = g.tensor(&[128, 48], -2.0, 2.0);
    let bt = g.tensor(&[48, 128], -2.0, 2.0);
    let want = kernels::matmul(&a, &b);
    let want_nt = kernels::matmul_nt(&a, &bt);
    for threads in [1usize, 4] {
        let _scope = parallel::with_threads(threads);
        let got = a.matmul(&b).unwrap();
        compare(
            &format!("matmul 64x128x48 threads={threads}"),
            &got,
            &want,
            large_case_tol(),
        )
        .unwrap_or_else(|e| panic!("{e}"));
        let got_nt = a.matmul_nt(&bt).unwrap();
        compare(
            &format!("matmul_nt 64x128x48 threads={threads}"),
            &got_nt,
            &want_nt,
            large_case_tol(),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn matvec_and_dot_match_oracle_matmul() {
    let mut g = Gen::new(0xA005);
    for case in 0..CASES {
        let (m, k) = (g.usize_in(1, 10), g.usize_in(1, 10));
        let a = g.tensor(&[m, k], -2.0, 2.0);
        let v = g.tensor(&[k], -2.0, 2.0);
        let got = a.matvec(&v).unwrap();
        let want = kernels::matmul(&a, &v.reshape(&[k, 1]).unwrap())
            .reshape(&[m])
            .unwrap();
        compare(
            &format!("matvec case {case}"),
            &got,
            &want,
            Tolerance::reduction(),
        )
        .unwrap_or_else(|e| panic!("{e}"));

        let u = g.tensor(&[k], -2.0, 2.0);
        let got_dot = v.dot(&u).unwrap();
        let want_dot =
            kernels::matmul(&v.reshape(&[1, k]).unwrap(), &u.reshape(&[k, 1]).unwrap()).data()[0];
        let tol = Tolerance::reduction();
        assert!(
            tol.accepts(got_dot, want_dot),
            "dot case {case}: {got_dot} vs oracle {want_dot}"
        );
    }
}

/// Random valid conv geometry: kernel always fits the padded input.
fn conv_case(g: &mut Gen) -> (Tensor, Tensor, Conv2dSpec, usize, usize, usize) {
    let n = g.usize_in(1, 3);
    let c = g.usize_in(1, 3);
    let oc = g.usize_in(1, 4);
    let k = g.usize_in(1, 3);
    let stride = g.usize_in(1, 2);
    let padding = g.usize_in(0, 1);
    let h = g.usize_in(k, 7);
    let w = g.usize_in(k, 7);
    let spec = Conv2dSpec::new(c, oc, k, stride, padding);
    let x = g.tensor(&[n, c, h, w], -1.0, 1.0);
    let weight = g.tensor(&[oc, c, k, k], -1.0, 1.0);
    (x, weight, spec, n, h, w)
}

#[test]
fn im2col_matmul_pipeline_matches_direct_conv_oracle() {
    // The optimized conv forward is im2col + matmul_nt; the oracle is a
    // direct 7-loop convolution. Verify the whole pipeline agrees,
    // accounting for the rows layout [(n·oh·ow), oc] vs NCHW.
    let mut g = Gen::new(0xA006);
    let tol = Tolerance::reduction();
    for case in 0..CASES {
        let (x, weight, spec, n, h, w) = conv_case(&mut g);
        let (oh, ow) = spec.out_hw(h, w).unwrap();
        let cols = im2col(&x, &spec).unwrap();
        let wmat = weight
            .reshape(&[spec.out_channels, spec.patch_len()])
            .unwrap();
        let rows = cols.matmul_nt(&wmat).unwrap();
        let want = kernels::conv2d(&x, &weight, None, &spec);
        for ni in 0..n {
            for co in 0..spec.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let got = rows.data()[((ni * oh + oy) * ow + ox) * spec.out_channels + co];
                        let wv = want.data()[((ni * spec.out_channels + co) * oh + oy) * ow + ox];
                        assert!(
                            tol.accepts(got, wv),
                            "conv case {case} at n={ni} co={co} oy={oy} ox={ox}: \
                             {got} vs oracle {wv}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn col2im_is_adjoint_of_im2col() {
    // col2im is used as the transpose of im2col in the conv backward pass:
    // ⟨im2col(x), C⟩ must equal ⟨x, col2im(C)⟩ for all x, C. Dot products
    // are accumulated in f64 so the identity is tested, not the summation.
    let mut g = Gen::new(0xA007);
    for case in 0..CASES {
        let (x, _weight, spec, n, h, w) = conv_case(&mut g);
        let cols = im2col(&x, &spec).unwrap();
        let c = g.tensor(cols.shape(), -1.0, 1.0);
        let back = col2im(&c, &spec, n, h, w).unwrap();
        let lhs: f64 = cols
            .data()
            .iter()
            .zip(c.data())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(back.data())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        assert!(
            (lhs - rhs).abs() / scale < 1e-5,
            "adjoint case {case}: ⟨im2col(x),C⟩={lhs} vs ⟨x,col2im(C)⟩={rhs}"
        );
    }
}
