//! Backend conformance suite: every [`Backend`] impl, swept against the
//! `ibrar-oracle` references through one generic harness.
//!
//! This is the gate DESIGN.md §17 describes: a backend ships only if every
//! trait method agrees with the oracle on seeded random cases. The sweep
//! runs over [`ALL_BACKENDS`], so a future SIMD/GPU backend joins the gate
//! by appearing in that list — no new test code required.
//!
//! Float kernels are compared under [`Tolerance::reduction`] (backends are
//! free to reorder accumulation); the integer qgemm is compared exactly
//! (i8×i8→i32 accumulation is associative and exact, so *any* conforming
//! backend must match the oracle bit for bit). The `Naive` backend
//! additionally pins *bitwise* equality against the oracle for the serial
//! float kernels — it transcribes the same loops, which is what makes it
//! the conformance reference.

use ibrar_oracle::{compare, kernels, Gen, Tolerance};
use ibrar_tensor::backend::{self, ConvGeom, Naive, ALL_BACKENDS};
use ibrar_tensor::{conv2d_forward, im2col, Conv2dSpec, Tensor};

const CASES: usize = 60;

fn to_tensor(data: Vec<f32>, shape: &[usize]) -> Tensor {
    Tensor::from_vec(data, shape).unwrap()
}

fn i8_vec(g: &mut Gen, len: usize) -> Vec<i8> {
    (0..len)
        .map(|_| (g.usize_in(0, 254) as i32 - 127) as i8)
        .collect()
}

#[test]
fn alloc_is_zeroed_for_all_backends() {
    for be in ALL_BACKENDS {
        for len in [0usize, 1, 7, 513] {
            let buf = be.alloc(len);
            assert_eq!(buf.len(), len, "{} alloc({len}) length", be.name());
            assert!(
                buf.iter().all(|v| v.to_bits() == 0),
                "{} alloc({len}) not zeroed",
                be.name()
            );
        }
    }
}

#[test]
fn gemm_family_matches_oracle_for_all_backends() {
    for be in ALL_BACKENDS {
        let mut g = Gen::new(0xB001);
        for case in 0..CASES {
            let (m, k, n) = (g.usize_in(1, 12), g.usize_in(1, 12), g.usize_in(1, 12));
            let a = g.tensor(&[m, k], -2.0, 2.0);
            let b = g.tensor(&[k, n], -2.0, 2.0);
            let bt = g.tensor(&[n, k], -2.0, 2.0);
            let at = g.tensor(&[k, m], -2.0, 2.0);

            let mut out = be.alloc(m * n);
            be.gemm(a.data(), b.data(), &mut out, m, k, n);
            compare(
                &format!("{} gemm case {case}", be.name()),
                &to_tensor(out, &[m, n]),
                &kernels::matmul(&a, &b),
                Tolerance::reduction(),
            )
            .unwrap_or_else(|e| panic!("{e}"));

            let mut out = be.alloc(m * n);
            be.gemm_nt(a.data(), bt.data(), &mut out, m, k, n);
            compare(
                &format!("{} gemm_nt case {case}", be.name()),
                &to_tensor(out, &[m, n]),
                &kernels::matmul_nt(&a, &bt),
                Tolerance::reduction(),
            )
            .unwrap_or_else(|e| panic!("{e}"));

            let mut out = be.alloc(m * n);
            be.gemm_tn(at.data(), b.data(), &mut out, m, k, n);
            compare(
                &format!("{} gemm_tn case {case}", be.name()),
                &to_tensor(out, &[m, n]),
                &kernels::matmul_tn(&at, &b),
                Tolerance::reduction(),
            )
            .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn matvec_and_reductions_match_oracle_for_all_backends() {
    for be in ALL_BACKENDS {
        let mut g = Gen::new(0xB002);
        let tol = Tolerance::reduction();
        for case in 0..CASES {
            let (m, k) = (g.usize_in(1, 10), g.usize_in(1, 33));
            let a = g.tensor(&[m, k], -2.0, 2.0);
            let v = g.tensor(&[k], -2.0, 2.0);
            let u = g.tensor(&[k], -2.0, 2.0);

            let mut out = be.alloc(m);
            be.matvec(a.data(), v.data(), &mut out, m, k);
            let want = kernels::matmul(&a, &v.reshape(&[k, 1]).unwrap());
            compare(
                &format!("{} matvec case {case}", be.name()),
                &to_tensor(out, &[m]),
                &want.reshape(&[m]).unwrap(),
                tol,
            )
            .unwrap_or_else(|e| panic!("{e}"));

            let got_dot = be.dot(v.data(), u.data());
            let want_dot: f32 =
                kernels::matmul(&v.reshape(&[1, k]).unwrap(), &u.reshape(&[k, 1]).unwrap()).data()
                    [0];
            assert!(
                tol.accepts(got_dot, want_dot),
                "{} dot case {case}: {got_dot} vs oracle {want_dot}",
                be.name()
            );

            let got_sq = be.sqdist(v.data(), u.data());
            let want_sq: f32 = v
                .data()
                .iter()
                .zip(u.data())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            assert!(
                tol.accepts(got_sq, want_sq),
                "{} sqdist case {case}: {got_sq} vs serial {want_sq}",
                be.name()
            );
        }
    }
}

#[test]
fn qgemm_is_exactly_oracle_for_all_backends() {
    // Integer accumulation is exact: every backend must reproduce the
    // oracle's i64 reference bit for bit, including shape edges.
    for be in ALL_BACKENDS {
        let mut g = Gen::new(0xB003);
        for case in 0..CASES {
            let (m, k, n) = (g.usize_in(1, 24), g.usize_in(0, 40), g.usize_in(1, 40));
            let a = i8_vec(&mut g, m * k);
            let b = i8_vec(&mut g, n * k);
            let mut got = vec![0i32; m * n];
            be.qgemm_nt(&a, &b, &mut got, m, k, n);
            let want = kernels::gemm_i8_nt(&a, &b, m, k, n);
            for (i, (&gv, &wv)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    gv as i64,
                    wv,
                    "{} qgemm case {case} ({m}x{k}x{n}) element {i}",
                    be.name()
                );
            }
        }
    }
}

#[test]
fn conv2d_forward_matches_oracle_for_all_backends() {
    for be in ALL_BACKENDS {
        let mut g = Gen::new(0xB004);
        let tol = Tolerance::reduction();
        for case in 0..CASES {
            let n = g.usize_in(1, 3);
            let c = g.usize_in(1, 3);
            let oc = g.usize_in(1, 4);
            let k = g.usize_in(1, 3);
            let stride = g.usize_in(1, 2);
            let padding = g.usize_in(0, 1);
            let h = g.usize_in(k, 7);
            let w = g.usize_in(k, 7);
            let spec = Conv2dSpec::new(c, oc, k, stride, padding);
            let x = g.tensor(&[n, c, h, w], -1.0, 1.0);
            let weight = g.tensor(&[oc, c, k, k], -1.0, 1.0);
            let (oh, ow) = spec.out_hw(h, w).unwrap();
            let geom = ConvGeom {
                n,
                h,
                w,
                oh,
                ow,
                spec,
            };
            let mut out = be.alloc(n * oc * oh * ow);
            be.conv2d_forward(
                x.data(),
                weight.reshape(&[oc, spec.patch_len()]).unwrap().data(),
                &mut out,
                &geom,
            );
            compare(
                &format!("{} conv2d_forward case {case}", be.name()),
                &to_tensor(out, &[n, oc, oh, ow]),
                &kernels::conv2d(&x, &weight, None, &spec),
                tol,
            )
            .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn naive_backend_is_bitwise_the_oracle() {
    // `Naive` claims to transcribe the oracle loops; pin that claim at the
    // bit level through the public Tensor ops under a thread-local
    // override (dispatch happens once per op on this thread, and the naive
    // kernels are serial, so the override is the whole story).
    let _g_override = backend::with_backend(&Naive);
    assert_eq!(backend::current().name(), "naive");
    let mut g = Gen::new(0xB005);
    for _ in 0..20 {
        let (m, k, n) = (g.usize_in(1, 9), g.usize_in(1, 9), g.usize_in(1, 9));
        let a = g.tensor(&[m, k], -2.0, 2.0);
        let b = g.tensor(&[k, n], -2.0, 2.0);
        let got = a.matmul(&b).unwrap();
        let want = kernels::matmul(&a, &b);
        assert!(
            got.data()
                .iter()
                .zip(want.data())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "naive matmul diverged from oracle bits at ({m},{k},{n})"
        );

        let bt = g.tensor(&[n, k], -2.0, 2.0);
        let got = a.matmul_nt(&bt).unwrap();
        let want = kernels::matmul_nt(&a, &bt);
        assert!(
            got.data()
                .iter()
                .zip(want.data())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "naive matmul_nt diverged from oracle bits at ({m},{k},{n})"
        );
    }
}

#[test]
fn tuned_direct_conv_is_bitwise_im2col_matmul_nt() {
    // The lane-order argument of DESIGN.md §17: the direct forward gathers
    // exactly the im2col patch row and runs the same full-length dot8, so
    // the pipeline swap changes no bits — which is why the conv goldens
    // survived PR 10 without a re-bless.
    let mut g = Gen::new(0xB006);
    for case in 0..40 {
        let n = g.usize_in(1, 3);
        let c = g.usize_in(1, 4);
        let oc = g.usize_in(1, 5);
        let k = g.usize_in(1, 3);
        let stride = g.usize_in(1, 2);
        let padding = g.usize_in(0, 1);
        let h = g.usize_in(k, 8);
        let w = g.usize_in(k, 8);
        let spec = Conv2dSpec::new(c, oc, k, stride, padding);
        let x = g.tensor(&[n, c, h, w], -1.0, 1.0);
        let wmat = g.tensor(&[oc, spec.patch_len()], -1.0, 1.0);
        let (oh, ow) = spec.out_hw(h, w).unwrap();

        let direct = conv2d_forward(&x, &wmat, &spec).unwrap();
        let rows = im2col(&x, &spec).unwrap().matmul_nt(&wmat).unwrap();
        for ni in 0..n {
            for co in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let d = direct.data()[((ni * oc + co) * oh + oy) * ow + ox];
                        let r = rows.data()[((ni * oh + oy) * ow + ox) * oc + co];
                        assert_eq!(
                            d.to_bits(),
                            r.to_bits(),
                            "case {case}: direct conv diverged from im2col \
                             pipeline at n={ni} co={co} oy={oy} ox={ox}"
                        );
                    }
                }
            }
        }
    }
}
