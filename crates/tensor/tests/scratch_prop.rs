//! Property test: the scratch-buffer pool is behaviorally invisible.
//!
//! Running an arbitrary interleaved sequence of tensor operations must
//! produce bitwise-identical results whether the pool is warm, disabled
//! (`IBRAR_SCRATCH=0` / [`scratch::with_enabled`]), or freshly cleared —
//! recycled buffers carry no state into the values an op produces.

use ibrar_tensor::{im2col, scratch, Conv2dSpec, Tensor};
use proptest::prelude::*;

/// One step of the op-interleaving state machine over two square matrices.
fn apply(op: u8, a: &mut Tensor, b: &mut Tensor) {
    match op % 10 {
        0 => *a = a.matmul(b).unwrap(),
        1 => *a = a.add(b).unwrap(),
        2 => *b = a.mul(b).unwrap(),
        3 => *a = a.transpose().unwrap(),
        4 => *a = a.relu(),
        5 => *b = b.map(|v| (v * 0.5).tanh()),
        6 => *b = a.clone(),
        7 => *a = a.sub(b).unwrap().scale(0.5),
        8 => {
            // Conv lowering exercises the pooled im2col path; fold the
            // result back into the state so later ops depend on it.
            let n = a.shape()[0];
            let img = a.reshape(&[1, 1, n, n]).unwrap();
            let spec = Conv2dSpec::new(1, 1, 3, 1, 1);
            let cols = im2col(&img, &spec).unwrap();
            let s = cols.sum();
            *a = a.add_scalar(s * 1e-3);
        }
        _ => {
            let n = a.len();
            let stacked = Tensor::stack_refs(&[&*a, &*b]).unwrap();
            let flat = stacked.reshape(&[2, n]).unwrap();
            *b = flat.row(1).unwrap().reshape(a.shape()).unwrap();
        }
    }
    // Keep magnitudes bounded so long sequences stay finite (bit equality
    // on NaN payloads would still hold, but finite values are a stronger
    // check of the data path).
    if a.abs().max() > 1e3 {
        *a = a.scale(1e-3);
    }
    if b.abs().max() > 1e3 {
        *b = b.scale(1e-3);
    }
}

/// Runs the full sequence from a deterministic start state and returns
/// every result bit.
fn run_ops(n: usize, seed: u64, ops: &[u8]) -> Vec<u32> {
    let mut a = Tensor::from_fn(&[n, n], |i| {
        (((i[0] * 31 + i[1] * 17) as u64 + seed * 97) % 13) as f32 * 0.21 - 1.2
    });
    let mut b = Tensor::from_fn(&[n, n], |i| {
        (((i[0] * 7 + i[1] * 29) as u64 + seed * 53) % 11) as f32 * 0.17 - 0.8
    });
    for &op in ops {
        apply(op, &mut a, &mut b);
    }
    a.data()
        .iter()
        .chain(b.data().iter())
        .map(|v| v.to_bits())
        .collect()
}

proptest! {
    #[test]
    fn pool_state_never_changes_results(
        n in 3usize..7,
        seed in 0u64..1000,
        ops in proptest::collection::vec(0u8..=255, 1..24),
    ) {
        // Warm pool: one throwaway pass leaves recycled buffers of every
        // size class this sequence uses, so the measured pass hits the pool.
        let _ = run_ops(n, seed, &ops);
        let warm = run_ops(n, seed, &ops);

        // Disabled pool: every allocation comes straight from the system.
        let cold = {
            let _g = scratch::with_enabled(false);
            run_ops(n, seed, &ops)
        };
        prop_assert_eq!(&warm, &cold, "warm pool vs disabled pool");

        // Freshly cleared pool: all checkouts miss, then refill it.
        scratch::clear();
        let cleared = run_ops(n, seed, &ops);
        prop_assert_eq!(&warm, &cleared, "warm pool vs cleared pool");
    }
}
