//! Property tests for the quantized GEMM: exact integer equality against
//! the oracle twin, the packed/unpacked agreement, the documented
//! accumulator depth bound (DESIGN.md §14), and shape edges the tiled
//! microkernel must survive (k = 0, m = 1, dims off every tile multiple).

use ibrar_oracle::kernels;
use ibrar_tensor::qgemm::{gemm_i8_nt, gemm_i8_packed, PackedQuantB, MAX_K, QGEMM_PANEL};
use ibrar_tensor::TensorError;
use proptest::prelude::*;

fn i8_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Vec<i8>> {
    proptest::collection::vec(-127i8..=127, rows * cols)
}

proptest! {
    /// i8×i8→i32 accumulation is exact, so the tiled microkernel must
    /// reproduce the oracle's i64 reference bit for bit — no tolerance.
    #[test]
    fn qgemm_is_exactly_the_oracle(
        dims in (1usize..20, 0usize..48, 1usize..48),
        seed in 0u64..1000,
    ) {
        let (m, k, n) = dims;
        let gen = |s: u64, len: usize| -> Vec<i8> {
            (0..len)
                .map(|i| (((i as u64 * 2654435761 + s * 40503) % 255) as i32 - 127) as i8)
                .collect()
        };
        let a = gen(seed, m * k);
        let b = gen(seed + 1, n * k);
        let got = gemm_i8_nt(&a, &b, m, k, n).unwrap();
        let want = kernels::gemm_i8_nt(&a, &b, m, k, n);
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(*g as i64, *w);
        }
    }

    /// Packing is a pure layout change: the packed kernel must agree
    /// bitwise with the pack-per-call path for every shape.
    #[test]
    fn packed_gemm_equals_unpacked(a in i8_matrix(5, 19), b in i8_matrix(18, 19)) {
        let unpacked = gemm_i8_nt(&a, &b, 5, 19, 18).unwrap();
        let packed = PackedQuantB::pack(&b, 18, 19).unwrap();
        let got = gemm_i8_packed(&a, &packed, 5).unwrap();
        prop_assert_eq!(got, unpacked);
    }
}

/// Shape edges the tiled kernel must handle: empty reduction, single row
/// (no full 4-row micro block), and dims straddling the 16-wide panel and
/// 4-row block boundaries.
#[test]
fn qgemm_shape_edges_match_oracle() {
    let cases = [
        (1usize, 0usize, 1usize),    // empty reduction
        (1, 7, 1),                   // single row, single column
        (3, 5, QGEMM_PANEL),         // exactly one panel
        (4, 5, QGEMM_PANEL + 1),     // one full panel + 1 lane
        (5, 5, QGEMM_PANEL - 1),     // one ragged panel
        (4, 3, 2 * QGEMM_PANEL),     // exact panels, exact rows
        (7, 9, 3 * QGEMM_PANEL - 5), // ragged both ways
        (8, 1, 33),                  // k=1 degenerate depth
    ];
    for (ci, &(m, k, n)) in cases.iter().enumerate() {
        let a: Vec<i8> = (0..m * k)
            .map(|i| (((i * 37) % 255) as i32 - 127) as i8)
            .collect();
        let b: Vec<i8> = (0..n * k)
            .map(|i| (((i * 53) % 255) as i32 - 127) as i8)
            .collect();
        let got = gemm_i8_nt(&a, &b, m, k, n).unwrap();
        let want = kernels::gemm_i8_nt(&a, &b, m, k, n);
        assert_eq!(got.len(), want.len(), "case {ci} ({m},{k},{n})");
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(*g as i64, *w, "case {ci} ({m},{k},{n}) element {i}");
        }
    }
}

/// Worst-case accumulation at the documented depth bound: every product is
/// `(-127)·127`, the largest-magnitude partial sum, and must still be
/// exact at `k = MAX_K` — while `k = MAX_K + 1` is rejected, not wrapped.
#[test]
fn qgemm_depth_bound_is_exact_then_rejected() {
    // One row, one column: a single dot at the extreme depth.
    let a = vec![127i8; MAX_K];
    let b = vec![-127i8; MAX_K];
    let got = gemm_i8_nt(&a, &b, 1, MAX_K, 1).unwrap();
    assert_eq!(got[0] as i64, -(127i64 * 127) * MAX_K as i64);

    let a = vec![127i8; MAX_K + 1];
    let b = vec![-127i8; MAX_K + 1];
    assert!(matches!(
        gemm_i8_nt(&a, &b, 1, MAX_K + 1, 1),
        Err(TensorError::InvalidGeometry(_))
    ));
    assert!(matches!(
        PackedQuantB::pack(&b, 1, MAX_K + 1),
        Err(TensorError::InvalidGeometry(_))
    ));
}

/// The pack layout itself: lanes past `n` are zero padding and the panel
/// count follows `ceil(n / PANEL)`.
#[test]
fn pack_pads_final_panel_with_zero_lanes() {
    let (n, k) = (QGEMM_PANEL + 3, 5);
    let b: Vec<i8> = (0..n * k).map(|i| ((i % 250) as i32 - 125) as i8).collect();
    let packed = PackedQuantB::pack(&b, n, k).unwrap();
    assert_eq!(packed.n, n);
    assert_eq!(packed.k, k);
    // ceil(n/PANEL) = 2 panels × ceil(k/2) i16 pair steps × 16 lanes × 2
    // slots × 2 bytes (the pair-interleaved layout zero-pads both the
    // ragged panel and the odd-k tail slot).
    assert_eq!(
        packed.packed_bytes(),
        2 * k.div_ceil(2) * QGEMM_PANEL * 2 * 2
    );
    // A matmul against identity-ish A exercises every lane: padding lanes
    // must not leak into real outputs.
    let a: Vec<i8> = (0..3 * k)
        .map(|i| ((i * 11 % 255) as i32 - 127) as i8)
        .collect();
    let got = gemm_i8_packed(&a, &packed, 3).unwrap();
    let want = kernels::gemm_i8_nt(&a, &b, 3, k, n);
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(*g as i64, *w);
    }
}
