//! Worker-pool scratch warmth and pool-state invariance.
//!
//! The persistent worker pool (`parallel`) keeps its threads alive across
//! jobs precisely so each worker's thread-local scratch pool (`scratch`)
//! stays warm: a buffer recycled by one job is reused by the next job that
//! lands on the same worker. These tests pin both halves of that story:
//!
//! * **Warmth** — code running *on pool worker threads* (via
//!   [`parallel::pool_broadcast`]) observes a scratch hit-rate > 0: a
//!   checkout of a size class the same thread just recycled must come from
//!   the pool, not the allocator.
//! * **Invisibility** — kernel results are `to_bits`-identical across pool
//!   states (warm, disabled, freshly cleared) *and* thread counts, with
//!   [`parallel::with_threads`] forcing the parallel path on fixtures small
//!   enough that `threads_for` would otherwise run them serially.

use ibrar_tensor::{im2col, parallel, scratch, Conv2dSpec, Tensor};

#[test]
fn worker_threads_hit_their_scratch_pools() {
    // Run entirely on pool workers: the submitting thread abstains, so the
    // stats deltas below are measured on genuine pool threads. Each closure
    // recycles a buffer and immediately checks the same size class back
    // out — nothing else runs on that worker in between, so the second
    // checkout must hit regardless of which worker serves which index.
    let deltas = parallel::pool_broadcast(2, |i| {
        let _scratch_on = scratch::with_enabled(true);
        // Distinctive length so no other op's size class interferes.
        let len = 4929 + i;
        scratch::recycle(scratch::take(len));
        let (h0, m0) = scratch::stats();
        scratch::recycle(scratch::take(len));
        let (h1, m1) = scratch::stats();
        (h1 - h0, m1 - m0)
    });
    assert_eq!(deltas.len(), 2);
    for (i, (hits, misses)) in deltas.iter().enumerate() {
        assert!(
            *hits > 0,
            "broadcast index {i}: checkout of a just-recycled size class \
             missed the worker's scratch pool (hits {hits}, misses {misses})"
        );
    }
}

#[test]
fn warmth_survives_across_jobs_on_the_same_worker() {
    // Two takes of the same distinctive class in *separate* pool jobs: the
    // first job leaves a recycled buffer behind on every participating
    // worker, and the total hit count across the second job's workers must
    // rise whenever a worker that served job 1 also serves job 2. With the
    // submitter abstaining and a single persistent pool, at least the
    // within-job hit (recycle + take inside one closure) is guaranteed.
    let len = 7321;
    let first = parallel::pool_broadcast(2, |_| {
        let _scratch_on = scratch::with_enabled(true);
        scratch::recycle(scratch::take(len));
        scratch::recycle(scratch::take(len));
        let (h, _) = scratch::stats();
        h
    });
    let second = parallel::pool_broadcast(2, |_| {
        let _scratch_on = scratch::with_enabled(true);
        scratch::recycle(scratch::take(len));
        let (h, _) = scratch::stats();
        h
    });
    let peak_after_first = first.iter().copied().max().unwrap();
    let peak_after_second = second.iter().copied().max().unwrap();
    assert!(
        peak_after_second > 0 && peak_after_first > 0,
        "persistent workers never hit their scratch pools \
         (job1 peaks {first:?}, job2 peaks {second:?})"
    );
}

/// A workload touching the pooled hot paths: tiled matmul, im2col conv
/// lowering, and elementwise kernels, with shapes small enough that the
/// work-scaled gate would run them serially absent an override.
fn workload() -> Vec<u32> {
    let a = Tensor::from_fn(&[17, 23], |i| {
        ((i[0] * 31 + i[1] * 17) % 13) as f32 * 0.21 - 1.2
    });
    let b = Tensor::from_fn(&[23, 19], |i| {
        ((i[0] * 7 + i[1] * 29) % 11) as f32 * 0.17 - 0.8
    });
    let m = a.matmul(&b).unwrap();
    let img = Tensor::from_fn(&[2, 3, 8, 8], |i| {
        ((i[0] * 5 + i[1] * 13 + i[2] * 3 + i[3]) % 17) as f32 * 0.11 - 0.9
    });
    let cols = im2col(&img, &Conv2dSpec::new(3, 4, 3, 1, 1)).unwrap();
    let r = m.relu();
    let s = m.add(&a.matmul(&b).unwrap()).unwrap();
    // The VIB head's elementwise pattern: a softplus σ followed by the
    // reparameterization z = μ + σ ⊙ ε (r stands in for the frozen noise).
    let sigma = m.map(|x| x.max(0.0) + (-x.abs()).exp().ln_1p());
    let z = m.add(&sigma.mul(&r).unwrap()).unwrap();
    m.data()
        .iter()
        .chain(cols.data())
        .chain(r.data())
        .chain(s.data())
        .chain(sigma.data())
        .chain(z.data())
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn results_are_bitwise_invariant_across_pool_states_and_thread_counts() {
    // Baseline: serial, freshly cleared scratch.
    scratch::clear();
    let baseline = {
        let _t = parallel::with_threads(1);
        workload()
    };
    for threads in [1usize, 2, 4, 7] {
        let _t = parallel::with_threads(threads);

        // Warm: a throwaway pass leaves recycled buffers of every size
        // class the workload uses, on this thread and on pool workers.
        let _ = workload();
        assert_eq!(
            workload(),
            baseline,
            "warm pool diverged at {threads} threads"
        );

        // Disabled on the submitting thread: its checkouts fall through to
        // the allocator while pool workers keep their own warm state.
        {
            let _s = scratch::with_enabled(false);
            assert_eq!(
                workload(),
                baseline,
                "disabled pool diverged at {threads} threads"
            );
        }

        // Freshly cleared: all first checkouts miss.
        scratch::clear();
        assert_eq!(
            workload(),
            baseline,
            "cleared pool diverged at {threads} threads"
        );
    }
}
