//! Int8 quantized GEMM for the post-training-quantized inference path.
//!
//! The serve tier trades a bounded amount of accuracy for cheap inference:
//! weights are quantized **per output channel** and activations **per row**
//! (per sample / per output pixel) with symmetric scales, multiplied in an
//! exact `i8 × i8 → i32` GEMM, and dequantized back to `f32` at the layer
//! boundary. See `DESIGN.md` §14 for the quantization scheme and its
//! tolerance tier in the oracle policy.
//!
//! # Determinism
//!
//! Integer accumulation is exact and associative, so [`gemm_i8_nt`] is
//! bitwise deterministic for any thread count — and across backends — by
//! construction: there is no lane-order contract to preserve, which is what
//! frees the tuned kernel to tile and reorder aggressively. The row split
//! still uses the fixed contiguous chunks of [`crate::parallel`] like every
//! other kernel.
//!
//! # The packed-panel kernel
//!
//! The original kernel was a scalar serial chain (`acc += a[t]·b[t]`, one
//! accumulator per element) — a dependency chain the compiler cannot
//! vectorize, which left `serve_batch_int8` *slower* than the f32 path it
//! was meant to accelerate. The tuned kernel restructures the whole product
//! around an independent-accumulator microkernel:
//!
//! * **Packing** ([`PackedQuantB`]): B (`[n, k]`, row-major) is repacked
//!   once into k-major panels of [`QGEMM_PANEL`] = 16 columns, widened to
//!   `i16` and interleaved in *k-pairs*: pair step `t₂` of panel `p`
//!   stores `[b[j, 2t₂], b[j, 2t₂+1]]` adjacently for each lane
//!   `j = p·16 + lane`, with missing lanes and an odd-`k` tail
//!   zero-padded. A walk down a panel touches 32 B values per pair step
//!   contiguously, and the adjacent-pair layout is exactly what x86
//!   `vpmaddwd` consumes: one instruction does `i16×i16 + i16×i16 → i32`
//!   for 8 lanes (two MACs per lane, no 32-bit multiply needed).
//! * **Microkernel**: [`MICRO_ROWS`] = 4 A-rows × 16 panel lanes of `i32`
//!   accumulators live in registers; each pair step does 128 independent
//!   multiply-adds (no dependency chain). On AVX2 hosts each A-row
//!   contributes one broadcast of its `[a[2t₂], a[2t₂+1]]` pair and two
//!   `vpmaddwd`+`vpaddd` per step; the portable body is the same
//!   arithmetic in scalar form. Zero-padded positions accumulate exact
//!   zeros and are simply not written back.
//! * **Amortization**: weights are packed once per process (serve caches
//!   [`PackedQuantB`] per layer, PR 10); activations change per batch, so
//!   the `[m, k]` side stays unpacked — A rows are already contiguous in
//!   the `t` direction.
//!
//! Packing costs `O(n·k)` against `O(m·n·k)` compute and is recouped even
//! when [`gemm_i8_nt`] packs internally per call.
//!
//! # Why per-row activation scales
//!
//! A per-*tensor* activation scale would couple a sample's quantization to
//! whatever else happens to share its batch, breaking the serving tier's
//! batching-invisibility contract (batched rows bitwise equal to
//! single-request rows). A per-row scale depends only on that row's own
//! values, so the quantized forward keeps the contract exactly.
//!
//! # Accumulator bound
//!
//! Each product is at most `127 × 127 = 16129`, so `i32` accumulation is
//! exact while `k ≤` [`MAX_K`] (≈ 133k) — far above any reduction depth in
//! the workspace. [`gemm_i8_nt`] rejects deeper reductions with a typed
//! error instead of risking silent wraparound.

use crate::{backend, parallel, shape, Result, TensorError};

/// Largest reduction depth for which `i32` accumulation of `i8 × i8`
/// products cannot overflow: `floor(i32::MAX / 127²)`.
pub const MAX_K: usize = i32::MAX as usize / (127 * 127);

/// Panel width of the packed B layout: 16 `i32` accumulator lanes (two
/// AVX2 vectors / one AVX-512 vector worth) per A-row in the microkernel.
pub const QGEMM_PANEL: usize = 16;

/// A-row block of the microkernel: 4 × [`QGEMM_PANEL`] accumulators
/// (64 × `i32` = 16 registers of 4 lanes each) is the largest block that
/// stays in registers on x86-64 without spilling.
const MICRO_ROWS: usize = 4;

/// A row-major `i8` matrix with one symmetric scale per row.
///
/// Dequantization of element `(r, c)` is `data[r·cols + c] as f32 *
/// scales[r]`. For weight matrices laid out `[out_features, in_features]`
/// a row is an output channel, giving the per-channel scheme; for
/// activation matrices a row is one sample (or one output pixel), keeping
/// quantization independent of co-batched rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    /// Row-major quantized values, `rows × cols`.
    pub data: Vec<i8>,
    /// One symmetric scale per row; `scales[r] = maxabs(row r) / 127`
    /// (`1.0` for all-zero rows, which quantize to zeros regardless).
    pub scales: Vec<f32>,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl QuantizedMatrix {
    /// Quantizes a row-major `rows × cols` slice with one symmetric scale
    /// per row: `scale = maxabs / 127`, `q = round(v / scale)` clamped to
    /// `[-127, 127]` (the `-128` code is unused, keeping the scheme
    /// symmetric).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `src.len() ≠ rows·cols`
    /// and [`TensorError::ElementOverflow`] when that product overflows.
    pub fn quantize_rows(src: &[f32], rows: usize, cols: usize) -> Result<QuantizedMatrix> {
        let volume = shape::checked_volume(&[rows, cols], "quantize_rows")?;
        let mut data = vec![0i8; volume];
        let mut scales = vec![1.0f32; rows];
        Self::quantize_rows_into(src, rows, cols, &mut data, &mut scales)?;
        Ok(QuantizedMatrix {
            data,
            scales,
            rows,
            cols,
        })
    }

    /// [`Self::quantize_rows`] into caller-provided buffers — the serve
    /// tier's fused conv strips call this once per output row, and reusing
    /// the buffers keeps allocation out of that hot loop. `data` must hold
    /// `rows·cols` codes and `scales` at least `rows` entries (all
    /// overwritten; zero rows get scale `1.0`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `src` or `data` is not
    /// `rows·cols` long or `scales` is shorter than `rows`, and
    /// [`TensorError::ElementOverflow`] when that product overflows.
    pub fn quantize_rows_into(
        src: &[f32],
        rows: usize,
        cols: usize,
        data: &mut [i8],
        scales: &mut [f32],
    ) -> Result<()> {
        let volume = shape::checked_volume(&[rows, cols], "quantize_rows")?;
        if src.len() != volume || data.len() != volume {
            return Err(TensorError::LengthMismatch {
                expected: volume,
                actual: if src.len() != volume {
                    src.len()
                } else {
                    data.len()
                },
            });
        }
        if scales.len() < rows {
            return Err(TensorError::LengthMismatch {
                expected: rows,
                actual: scales.len(),
            });
        }
        scales[..rows].fill(1.0);
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            let maxabs = row_maxabs(row);
            Self::quantize_row_scaled(row, maxabs, r, cols, data, scales);
        }
        Ok(())
    }

    /// [`Self::quantize_rows_into`] with caller-supplied per-row `maxabs`
    /// values. The serve tier's fused conv strips compute patch maxima
    /// once per activation map with a separable sliding-window max (each
    /// input pixel is read once instead of once per kernel cell it
    /// appears in); `max` over absolute values is exact and
    /// order-independent, so a correctly computed window max is bitwise
    /// the row scan [`Self::quantize_rows_into`] performs — and therefore
    /// so are the scales and codes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `src` or `data` is not
    /// `rows·cols` long or `maxabs`/`scales` is shorter than `rows`, and
    /// [`TensorError::ElementOverflow`] when that product overflows.
    pub fn quantize_rows_with_maxabs(
        src: &[f32],
        rows: usize,
        cols: usize,
        maxabs: &[f32],
        data: &mut [i8],
        scales: &mut [f32],
    ) -> Result<()> {
        let volume = shape::checked_volume(&[rows, cols], "quantize_rows")?;
        if src.len() != volume || data.len() != volume {
            return Err(TensorError::LengthMismatch {
                expected: volume,
                actual: if src.len() != volume {
                    src.len()
                } else {
                    data.len()
                },
            });
        }
        if scales.len() < rows || maxabs.len() < rows {
            return Err(TensorError::LengthMismatch {
                expected: rows,
                actual: scales.len().min(maxabs.len()),
            });
        }
        scales[..rows].fill(1.0);
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            Self::quantize_row_scaled(row, maxabs[r], r, cols, data, scales);
        }
        Ok(())
    }

    /// Shared per-row body of the two `quantize_rows*` entry points:
    /// scale derivation, the zero-row rewrite, and the code loop.
    fn quantize_row_scaled(
        row: &[f32],
        maxabs: f32,
        r: usize,
        cols: usize,
        data: &mut [i8],
        scales: &mut [f32],
    ) {
        if maxabs == 0.0 {
            // Zeros quantize to zeros under the default scale; write
            // them explicitly — a reused caller buffer may hold stale
            // codes from a previous strip.
            data[r * cols..(r + 1) * cols].fill(0);
            return;
        }
        let scale = maxabs / 127.0;
        scales[r] = scale;
        // Multiply by the reciprocal scale instead of dividing (one
        // division per row), and round half-away-from-zero as
        // `trunc(t + copysign(0.5, t))` instead of `t.round()`: the
        // libm `roundf` call defeats vectorization of the code loop,
        // while clamp/copysign/convert all lower to branchless vector
        // ops (see `quantize_codes`). Either rewrite can move a
        // quantized code by one step when the scaled value sits within
        // an ulp of a halfway point — inside the ±half-scale round-trip
        // bound and the serve tier's int8 tolerance (DESIGN.md §14).
        let inv = 127.0 / maxabs;
        quantize_codes(row, inv, &mut data[r * cols..(r + 1) * cols]);
    }

    /// Dequantizes back to `f32` (test/diagnostic helper; the hot path
    /// dequantizes fused with bias and activation at the layer boundary).
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.data.len()];
        for r in 0..self.rows {
            let s = self.scales[r];
            for (o, &q) in out[r * self.cols..(r + 1) * self.cols]
                .iter_mut()
                .zip(&self.data[r * self.cols..(r + 1) * self.cols])
            {
                *o = q as f32 * s;
            }
        }
        out
    }
}

/// Scales one row to int8 codes: `q = trunc(v·inv + copysign(0.5, v·inv))`
/// clamped to `[-127, 127]` (NaN maps to 0, the Rust float→int cast
/// convention). Dispatches to the AVX2 body when available — same
/// element-wise arithmetic, so both paths produce identical codes.
fn quantize_codes(row: &[f32], inv: f32, out: &mut [i8]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::have_avx2() {
        // SAFETY: AVX2 verified at runtime; `out` and `row` are the same
        // length by construction in `quantize_rows`.
        unsafe { x86::quantize_codes(row, inv, out) };
        return;
    }
    for (q, &v) in out.iter_mut().zip(row) {
        let t = (v * inv).clamp(-127.0, 127.0);
        *q = (t + 0.5f32.copysign(t)) as i8;
    }
}

/// Largest absolute value in `row` (0.0 for an empty row). `max` over
/// absolute values is exact and order-independent, so the lane-split
/// reduction — and the AVX2 body it dispatches to — is bitwise identical
/// to a sequential scan. NaN elements are skipped in both paths (the
/// scalar fold uses `f32::max`, which prefers the non-NaN operand; the
/// AVX2 body orders `vmaxps` operands so a NaN lane leaves the
/// accumulator untouched).
fn row_maxabs(row: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::have_avx2() {
        // SAFETY: AVX2 verified at runtime.
        return unsafe { x86::row_maxabs(row) };
    }
    let mut lanes = [0.0f32; 8];
    let chunks = row.chunks_exact(8);
    let mut maxabs = chunks
        .remainder()
        .iter()
        .fold(0.0f32, |m, &v| m.max(v.abs()));
    for ch in chunks {
        for (l, &v) in ch.iter().enumerate() {
            lanes[l] = lanes[l].max(v.abs());
        }
    }
    for l in lanes {
        maxabs = maxabs.max(l);
    }
    maxabs
}

/// Exact integer GEMM against a transposed rhs:
/// `[m, k] × [n, k]ᵀ → [m, n]` with `i32` accumulation.
///
/// Mirrors the f32 `matmul_nt` layout (the conv/linear forward shape): row
/// `i` of `a` dotted with row `j` of `b`. Output element `(i, j)` is the
/// exact integer `Σ_t a[i,t]·b[j,t]` — combine with
/// `a.scales[i] * b.scales[j]` to dequantize.
///
/// # Errors
///
/// Returns [`TensorError::MatmulDimMismatch`] when the operand lengths
/// disagree with `m`/`k`/`n`, [`TensorError::ElementOverflow`] when `m·n`
/// overflows, and [`TensorError::InvalidGeometry`] when `k >` [`MAX_K`]
/// (the `i32` accumulator could wrap).
pub fn gemm_i8_nt(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Result<Vec<i32>> {
    if a.len() != shape::checked_volume(&[m, k], "gemm_i8_nt")?
        || b.len() != shape::checked_volume(&[n, k], "gemm_i8_nt")?
    {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: a.len() / m.max(1),
            rhs_rows: b.len() / k.max(1),
        });
    }
    if k > MAX_K {
        return Err(TensorError::InvalidGeometry(format!(
            "gemm_i8_nt reduction depth {k} exceeds the exact-i32 bound {MAX_K}"
        )));
    }
    let volume = shape::checked_volume(&[m, n], "gemm_i8_nt")?;
    let mut out = vec![0i32; volume];
    if volume == 0 {
        return Ok(out);
    }
    backend::current().qgemm_nt(a, b, &mut out, m, k, n);
    Ok(out)
}

/// B operand of the quantized GEMM repacked into k-major
/// [`QGEMM_PANEL`]-wide panels of `i16` k-pairs for the tuned microkernel.
///
/// Panel `p` holds `ceil(k/2)` pair steps of `2 × PANEL` values; element
/// `(t₂·PANEL + lane)·2 + s` of the panel is `b[(p·PANEL + lane)·k +
/// 2t₂ + s]` widened to `i16`. Lanes past `n` and the `s = 1` slot of an
/// odd-`k` tail are zero so the microkernel never branches on panel width
/// or parity (see the module docs for why this layout feeds `vpmaddwd`
/// directly). Weights are static across a serving process, so the serve
/// tier packs each layer once at registry load and reuses the panels for
/// every batch ([`gemm_i8_packed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedQuantB {
    /// Panel-major data: `ceil(n/PANEL)` panels of `ceil(k/2) × PANEL × 2`
    /// pair-interleaved `i16` values.
    data: Vec<i16>,
    /// Reduction depth (columns of the original `[n, k]` matrix).
    pub k: usize,
    /// Logical output columns (rows of the original `[n, k]` matrix).
    pub n: usize,
}

impl PackedQuantB {
    /// Packs a row-major `[n, k]` i8 matrix into panel-major layout.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulDimMismatch`] when `b.len() ≠ n·k`,
    /// [`TensorError::ElementOverflow`] when the padded volume overflows,
    /// and [`TensorError::InvalidGeometry`] when `k >` [`MAX_K`].
    pub fn pack(b: &[i8], n: usize, k: usize) -> Result<PackedQuantB> {
        if b.len() != shape::checked_volume(&[n, k], "qgemm pack")? {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: k,
                rhs_rows: b.len() / k.max(1),
            });
        }
        if k > MAX_K {
            return Err(TensorError::InvalidGeometry(format!(
                "qgemm pack reduction depth {k} exceeds the exact-i32 bound {MAX_K}"
            )));
        }
        let panels = n.div_ceil(QGEMM_PANEL);
        let kp = k.div_ceil(2);
        let volume = shape::checked_volume(&[panels, kp, 2 * QGEMM_PANEL], "qgemm pack")?;
        let mut data = vec![0i16; volume];
        if k == 0 {
            // Degenerate reduction: no panels to fill (and a zero chunk
            // size would panic below); the product is identically zero.
            return Ok(PackedQuantB { data, k, n });
        }
        for (p, panel) in data.chunks_exact_mut(kp * 2 * QGEMM_PANEL).enumerate() {
            let j0 = p * QGEMM_PANEL;
            let jw = (n - j0).min(QGEMM_PANEL);
            for lane in 0..jw {
                let brow = &b[(j0 + lane) * k..(j0 + lane + 1) * k];
                for (t, &v) in brow.iter().enumerate() {
                    panel[(t / 2 * QGEMM_PANEL + lane) * 2 + t % 2] = v as i16;
                }
            }
        }
        Ok(PackedQuantB { data, k, n })
    }

    /// Heap footprint of the packed panels in bytes (diagnostics).
    pub fn packed_bytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<i16>()
    }
}

/// Exact integer GEMM against a pre-packed rhs: `[m, k] × packed(n, k) →
/// [m, n]`. Bitwise identical to [`gemm_i8_nt`] on the unpacked operand —
/// integer accumulation is exact — but skips the per-call pack, which is
/// what the serve tier wants for its static weight panels.
///
/// # Errors
///
/// Returns [`TensorError::MatmulDimMismatch`] when `a.len() ≠ m·b.k` and
/// [`TensorError::ElementOverflow`] when `m·b.n` overflows.
pub fn gemm_i8_packed(a: &[i8], b: &PackedQuantB, m: usize) -> Result<Vec<i32>> {
    let mut out = vec![0i32; shape::checked_volume(&[m, b.n], "gemm_i8_packed")?];
    gemm_i8_packed_into(a, b, m, &mut out)?;
    Ok(out)
}

/// [`gemm_i8_packed`] into a caller-provided accumulator buffer (all `m·n`
/// entries overwritten) — lets the serve tier's fused conv strips reuse one
/// buffer across strips instead of allocating per call.
///
/// # Errors
///
/// Returns [`TensorError::MatmulDimMismatch`] when `a.len() ≠ m·b.k`,
/// [`TensorError::LengthMismatch`] when `out.len() ≠ m·b.n`, and
/// [`TensorError::ElementOverflow`] when either product overflows.
pub fn gemm_i8_packed_into(a: &[i8], b: &PackedQuantB, m: usize, out: &mut [i32]) -> Result<()> {
    if a.len() != shape::checked_volume(&[m, b.k], "gemm_i8_packed")? {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: a.len() / m.max(1),
            rhs_rows: b.k,
        });
    }
    let volume = shape::checked_volume(&[m, b.n], "gemm_i8_packed")?;
    if out.len() != volume {
        return Err(TensorError::LengthMismatch {
            expected: volume,
            actual: out.len(),
        });
    }
    if volume == 0 {
        return Ok(());
    }
    // A reused buffer may hold a previous strip's accumulators, and the
    // kernels skip degenerate shapes instead of writing zeros.
    out.fill(0);
    // Row split like every other kernel; integer accumulation is exact, so
    // this is deterministic for any thread count without an order contract.
    let threads = parallel::threads_for(m.saturating_mul(b.n).saturating_mul(b.k));
    parallel::par_chunks_mut(out, b.n, threads, |rows, region| {
        qgemm_packed_block(&a[rows.start * b.k..rows.end * b.k], b, region, rows.len());
    });
    Ok(())
}

/// Tuned [`crate::backend::Backend::qgemm_nt`] entry point: packs B, then
/// runs the panel microkernel. Callers with static B should pack once and
/// use [`gemm_i8_packed`] instead.
pub(crate) fn qgemm_nt_tuned(a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    let packed = PackedQuantB::pack(b, n, k).expect("validated by caller");
    let threads = parallel::threads_for(m.saturating_mul(n).saturating_mul(k));
    parallel::par_chunks_mut(out, n, threads, |rows, region| {
        qgemm_packed_block(
            &a[rows.start * k..rows.end * k],
            &packed,
            region,
            rows.len(),
        );
    });
}

/// Serial packed kernel over one contiguous block of A rows / output rows:
/// [`MICRO_ROWS`]-row blocks through every panel, then a 1-row cleanup.
/// Dispatches to the AVX2 block driver when the host supports it — integer
/// accumulation is exact, so both bodies produce identical bits and the
/// choice is invisible to every caller.
fn qgemm_packed_block(a: &[i8], b: &PackedQuantB, out: &mut [i32], m: usize) {
    let k = b.k;
    if k == 0 || b.n == 0 {
        return; // out is pre-zeroed and a zero chunk size would panic
    }
    #[cfg(target_arch = "x86_64")]
    if crate::simd::have_avx2() {
        // SAFETY: AVX2 verified at runtime; operand invariants (row lengths
        // == k, panel layout) are established by PackedQuantB::pack and the
        // callers' shape checks.
        unsafe { x86::qgemm_block(a, b, out, m) };
        return;
    }
    let full = m - m % MICRO_ROWS;
    for i0 in (0..full).step_by(MICRO_ROWS) {
        let arows = [
            &a[i0 * k..(i0 + 1) * k],
            &a[(i0 + 1) * k..(i0 + 2) * k],
            &a[(i0 + 2) * k..(i0 + 3) * k],
            &a[(i0 + 3) * k..(i0 + 4) * k],
        ];
        qgemm_panels::<MICRO_ROWS>(arows, b, &mut out[i0 * b.n..(i0 + MICRO_ROWS) * b.n]);
    }
    for i in full..m {
        let arows = [&a[i * k..(i + 1) * k]];
        qgemm_panels::<1>(arows, b, &mut out[i * b.n..(i + 1) * b.n]);
    }
}

/// Runs the portable microkernel for `R` A-rows across every panel of `b`,
/// writing the `R × n` output block.
#[inline(always)]
fn qgemm_panels<const R: usize>(arows: [&[i8]; R], b: &PackedQuantB, out: &mut [i32]) {
    let (k, n) = (b.k, b.n);
    let kp = k.div_ceil(2);
    for (p, panel) in b.data.chunks_exact(kp * 2 * QGEMM_PANEL).enumerate() {
        let j0 = p * QGEMM_PANEL;
        let jw = (n - j0).min(QGEMM_PANEL);
        let acc = qgemm_micro::<R>(arows, panel);
        for r in 0..R {
            out[r * n + j0..r * n + j0 + jw].copy_from_slice(&acc[r][..jw]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{PackedQuantB, QGEMM_PANEL};
    use core::arch::x86_64::*;

    /// AVX2 body of [`super::quantize_codes`]: 8 codes per step —
    /// multiply, clamp, add `copysign(0.5, t)`, truncate (`vcvttps2dq`),
    /// then narrow i32 → i8 with two saturating packs. Every lane performs
    /// the same IEEE operations as the scalar loop, so the codes are
    /// identical; NaN products are zeroed through an ordered-compare mask
    /// taken *before* the clamp (`vminps` would otherwise absorb the NaN)
    /// to match the scalar cast's `NaN as i8 == 0`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support and `out.len() == row.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quantize_codes(row: &[f32], inv: f32, out: &mut [i8]) {
        let n = row.len();
        let chunks = n / 8;
        let (rp, op) = (row.as_ptr(), out.as_mut_ptr());
        let vinv = _mm256_set1_ps(inv);
        let vmax = _mm256_set1_ps(127.0);
        let vmin = _mm256_set1_ps(-127.0);
        let vhalf = _mm256_set1_ps(0.5);
        let vsign = _mm256_set1_ps(-0.0);
        for c in 0..chunks {
            let raw = _mm256_mul_ps(_mm256_loadu_ps(rp.add(c * 8)), vinv);
            let ord = _mm256_castps_si256(_mm256_cmp_ps(raw, raw, _CMP_ORD_Q));
            let t = _mm256_max_ps(_mm256_min_ps(raw, vmax), vmin);
            let half = _mm256_or_ps(vhalf, _mm256_and_ps(t, vsign));
            let q = _mm256_cvttps_epi32(_mm256_add_ps(t, half));
            let q = _mm256_and_si256(q, ord);
            let w = _mm_packs_epi32(_mm256_castsi256_si128(q), _mm256_extracti128_si256(q, 1));
            _mm_storel_epi64(op.add(c * 8) as *mut __m128i, _mm_packs_epi16(w, w));
        }
        for i in chunks * 8..n {
            let t = (*rp.add(i) * inv).clamp(-127.0, 127.0);
            *op.add(i) = (t + 0.5f32.copysign(t)) as i8;
        }
    }

    /// AVX2 body of [`super::row_maxabs`]: two independent `vmaxps`
    /// accumulator chains over sign-cleared lanes, pairwise lane reduce,
    /// scalar tail. `max` is exact, so the split is bitwise-neutral. The
    /// accumulator is the *second* `vmaxps` operand: `maxps` returns its
    /// second operand when either input is NaN, so a NaN element leaves
    /// the accumulator unchanged — the same skip-NaN behaviour as the
    /// portable `f32::max` fold.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_maxabs(row: &[f32]) -> f32 {
        let n = row.len();
        let chunks = n / 16;
        let rp = row.as_ptr();
        let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        for c in 0..chunks {
            let v0 = _mm256_and_ps(_mm256_loadu_ps(rp.add(c * 16)), absmask);
            let v1 = _mm256_and_ps(_mm256_loadu_ps(rp.add(c * 16 + 8)), absmask);
            acc0 = _mm256_max_ps(v0, acc0);
            acc1 = _mm256_max_ps(v1, acc1);
        }
        let acc = _mm256_max_ps(acc0, acc1);
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut maxabs = lanes.iter().fold(0.0f32, |m, &v| m.max(v));
        for i in chunks * 16..n {
            maxabs = maxabs.max((*rp.add(i)).abs());
        }
        maxabs
    }

    /// AVX2 block driver: widens the A block to `i16` rows padded to an
    /// even length once, then runs the panel microkernel in
    /// [`super::MICRO_ROWS`]-row blocks with a 1-row cleanup. The widened
    /// copy lets the microkernel broadcast each `[a[2t₂], a[2t₂+1]]` pair
    /// with a single `vpbroadcastd` straight from memory instead of
    /// rebuilding it from two sign-extended byte loads per step — the pair
    /// build was most of the inner-loop instruction count. The pad slot of
    /// an odd `k` is zero, matching the panel's zero tail slot.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `a` must hold `m × b.k`
    /// values and `out` must hold `m × b.n`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn qgemm_block(a: &[i8], b: &PackedQuantB, out: &mut [i32], m: usize) {
        let (k, n) = (b.k, b.n);
        let ke = k.div_ceil(2) * 2;
        let mut a16 = vec![0i16; m * ke];
        for r in 0..m {
            let src = &a[r * k..(r + 1) * k];
            let dst = &mut a16[r * ke..r * ke + k];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s as i16;
            }
        }
        let full = m - m % super::MICRO_ROWS;
        for i0 in (0..full).step_by(super::MICRO_ROWS) {
            let arows: [&[i16]; super::MICRO_ROWS] =
                core::array::from_fn(|r| &a16[(i0 + r) * ke..(i0 + r + 1) * ke]);
            qgemm_panels(arows, b, &mut out[i0 * n..(i0 + super::MICRO_ROWS) * n]);
        }
        for i in full..m {
            qgemm_panels(
                [&a16[i * ke..(i + 1) * ke]],
                b,
                &mut out[i * n..(i + 1) * n],
            );
        }
    }

    /// AVX2 microkernel: the `R × 16` i32 accumulator block lives in
    /// `2R` `__m256i` registers. Each k-pair step loads the panel's 32
    /// pair-interleaved `i16` values (two vectors), broadcasts each A-row's
    /// widened `[a[2t₂], a[2t₂+1]]` pair as one `i32`, and lets `vpmaddwd`
    /// do both multiplies *and* the pair-sum in a single instruction per
    /// vector — `vpaddd` folds the 8 per-lane pair sums into the
    /// accumulators. Each product is ≤ 127², so the pairwise i32 sums
    /// cannot overflow, and the running total is bounded by the
    /// [`super::MAX_K`] guard. Exact integers — the result is bit-identical
    /// to the portable microkernel by construction.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `arows` rows must each hold
    /// `ceil(b.k/2)·2` widened values and `out` must hold `R × b.n`.
    #[target_feature(enable = "avx2")]
    unsafe fn qgemm_panels<const R: usize>(arows: [&[i16]; R], b: &PackedQuantB, out: &mut [i32]) {
        let (k, n) = (b.k, b.n);
        let kp = k.div_ceil(2);
        for (p, panel) in b.data.chunks_exact(kp * 2 * QGEMM_PANEL).enumerate() {
            let j0 = p * QGEMM_PANEL;
            let jw = (n - j0).min(QGEMM_PANEL);
            let pp = panel.as_ptr();
            let mut lo = [_mm256_setzero_si256(); R];
            let mut hi = [_mm256_setzero_si256(); R];
            for t2 in 0..kp {
                let bp = pp.add(t2 * 2 * QGEMM_PANEL);
                let blo = _mm256_loadu_si256(bp as *const __m256i);
                let bhi = _mm256_loadu_si256(bp.add(QGEMM_PANEL) as *const __m256i);
                for r in 0..R {
                    let pair =
                        core::ptr::read_unaligned(arows[r].as_ptr().add(2 * t2) as *const i32);
                    let av = _mm256_set1_epi32(pair);
                    lo[r] = _mm256_add_epi32(lo[r], _mm256_madd_epi16(av, blo));
                    hi[r] = _mm256_add_epi32(hi[r], _mm256_madd_epi16(av, bhi));
                }
            }
            for r in 0..R {
                let mut acc = [0i32; QGEMM_PANEL];
                _mm256_storeu_si256(acc.as_mut_ptr().cast(), lo[r]);
                _mm256_storeu_si256(acc.as_mut_ptr().add(8).cast(), hi[r]);
                out[r * n + j0..r * n + j0 + jw].copy_from_slice(&acc[..jw]);
            }
        }
    }
}

/// The register-resident microkernel: `R` A-rows × one pair-interleaved
/// panel → `R × PANEL` i32 accumulators. Every pair step performs
/// `R × PANEL × 2` independent multiply-adds — no serial dependency chain —
/// so the autovectorizer emits wide integer FMAs. Zero-padded positions
/// (ragged last panel, odd-`k` tail) contribute exact zeros; the matching
/// A value of the odd tail is forced to zero instead of reading past the
/// row.
#[inline(always)]
fn qgemm_micro<const R: usize>(arows: [&[i8]; R], panel: &[i16]) -> [[i32; QGEMM_PANEL]; R] {
    let mut acc = [[0i32; QGEMM_PANEL]; R];
    for (t2, pair) in panel.chunks_exact(2 * QGEMM_PANEL).enumerate() {
        for r in 0..R {
            let a0 = arows[r][2 * t2] as i32;
            // The odd-k tail's second panel slot is zero, so the A value
            // against it is irrelevant — use 0 rather than read past the row.
            let a1 = match arows[r].get(2 * t2 + 1) {
                Some(&v) => v as i32,
                None => 0,
            };
            let accr = &mut acc[r];
            for (l, bv) in pair.chunks_exact(2).enumerate() {
                accr[l] += a0 * bv[0] as i32 + a1 * bv[1] as i32;
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize, salt: usize) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| ((i * 31 + salt * 7) % 97) as f32 * 0.11 - 5.0)
            .collect()
    }

    #[test]
    fn quantize_roundtrip_error_is_bounded_by_half_scale() {
        let src = sample(5, 33, 1);
        let q = QuantizedMatrix::quantize_rows(&src, 5, 33).unwrap();
        let deq = q.dequantize();
        for r in 0..5 {
            let half = q.scales[r] * 0.5 + 1e-6;
            for c in 0..33 {
                let err = (src[r * 33 + c] - deq[r * 33 + c]).abs();
                assert!(err <= half, "row {r} col {c}: err {err} > {half}");
            }
        }
    }

    #[test]
    fn zero_rows_quantize_to_zeros_with_unit_scale() {
        let mut src = sample(3, 8, 2);
        src[8..16].fill(0.0);
        let q = QuantizedMatrix::quantize_rows(&src, 3, 8).unwrap();
        assert_eq!(q.scales[1], 1.0);
        assert!(q.data[8..16].iter().all(|&v| v == 0));
    }

    #[test]
    fn row_maxabs_matches_sequential_fold() {
        // Lengths straddle the lane / chunk boundaries of both the portable
        // 8-lane path and the AVX2 16-wide path; max is exact so the
        // dispatched result must be bitwise equal to a sequential scan.
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 97] {
            let row: Vec<f32> = (0..n)
                .map(|i| ((i * 29 + 3) % 41) as f32 * 0.7 - 13.0)
                .collect();
            let seq = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            assert_eq!(row_maxabs(&row).to_bits(), seq.to_bits(), "n = {n}");
        }
        // NaN elements are skipped, matching `f32::max` in the scalar fold.
        let mut row = vec![2.5f32; 40];
        row[3] = f32::NAN;
        row[21] = -7.0;
        row[39] = f32::NAN;
        assert_eq!(row_maxabs(&row), 7.0);
    }

    #[test]
    fn quantize_rejects_bad_lengths() {
        assert!(matches!(
            QuantizedMatrix::quantize_rows(&[0.0; 5], 2, 3),
            Err(TensorError::LengthMismatch { .. })
        ));
        assert!(matches!(
            QuantizedMatrix::quantize_rows(&[], usize::MAX, 2),
            Err(TensorError::ElementOverflow { .. })
        ));
    }

    #[test]
    fn gemm_matches_i64_reference_exactly() {
        let (m, k, n) = (7, 40, 9);
        let a: Vec<i8> = (0..m * k).map(|i| ((i * 37 + 11) % 255) as i8).collect();
        let b: Vec<i8> = (0..n * k).map(|i| ((i * 53 + 5) % 251) as i8).collect();
        let got = gemm_i8_nt(&a, &b, m, k, n).unwrap();
        for i in 0..m {
            for j in 0..n {
                let want: i64 = (0..k)
                    .map(|t| a[i * k + t] as i64 * b[j * k + t] as i64)
                    .sum();
                assert_eq!(got[i * n + j] as i64, want, "({i},{j})");
            }
        }
    }

    #[test]
    fn gemm_is_identical_across_thread_counts() {
        let (m, k, n) = (16, 64, 12);
        let a: Vec<i8> = (0..m * k).map(|i| ((i * 19) % 200) as i8).collect();
        let b: Vec<i8> = (0..n * k).map(|i| ((i * 23) % 190) as i8).collect();
        let serial = {
            let _g = parallel::with_threads(1);
            gemm_i8_nt(&a, &b, m, k, n).unwrap()
        };
        for threads in [2, 4, 7] {
            let _g = parallel::with_threads(threads);
            assert_eq!(serial, gemm_i8_nt(&a, &b, m, k, n).unwrap());
        }
    }

    #[test]
    fn gemm_guards_depth_and_shape() {
        assert!(matches!(
            gemm_i8_nt(&[], &[], 0, MAX_K + 1, 0),
            Err(TensorError::MatmulDimMismatch { .. }) | Err(TensorError::InvalidGeometry(_))
        ));
        let a = vec![1i8; 2 * 3];
        let b = vec![1i8; 4 * 3];
        assert!(gemm_i8_nt(&a, &b, 2, 3, 4).is_ok());
        assert!(matches!(
            gemm_i8_nt(&a, &b, 2, 4, 4),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }
}
