//! Int8 quantized GEMM for the post-training-quantized inference path.
//!
//! The serve tier trades a bounded amount of accuracy for cheap inference:
//! weights are quantized **per output channel** and activations **per row**
//! (per sample / per output pixel) with symmetric scales, multiplied in an
//! exact `i8 × i8 → i32` GEMM, and dequantized back to `f32` at the layer
//! boundary. See `DESIGN.md` §14 for the quantization scheme and its
//! tolerance tier in the oracle policy.
//!
//! # Determinism
//!
//! Integer accumulation is exact and associative, so [`gemm_i8_nt`] is
//! bitwise deterministic for any thread count by construction — there is no
//! lane-order contract to preserve. The row split still uses the fixed
//! contiguous chunks of [`crate::parallel`] like every other kernel.
//!
//! # Why per-row activation scales
//!
//! A per-*tensor* activation scale would couple a sample's quantization to
//! whatever else happens to share its batch, breaking the serving tier's
//! batching-invisibility contract (batched rows bitwise equal to
//! single-request rows). A per-row scale depends only on that row's own
//! values, so the quantized forward keeps the contract exactly.
//!
//! # Accumulator bound
//!
//! Each product is at most `127 × 127 = 16129`, so `i32` accumulation is
//! exact while `k ≤` [`MAX_K`] (≈ 133k) — far above any reduction depth in
//! the workspace. [`gemm_i8_nt`] rejects deeper reductions with a typed
//! error instead of risking silent wraparound.

use crate::{parallel, shape, Result, TensorError};

/// Largest reduction depth for which `i32` accumulation of `i8 × i8`
/// products cannot overflow: `floor(i32::MAX / 127²)`.
pub const MAX_K: usize = i32::MAX as usize / (127 * 127);

/// A row-major `i8` matrix with one symmetric scale per row.
///
/// Dequantization of element `(r, c)` is `data[r·cols + c] as f32 *
/// scales[r]`. For weight matrices laid out `[out_features, in_features]`
/// a row is an output channel, giving the per-channel scheme; for
/// activation matrices a row is one sample (or one output pixel), keeping
/// quantization independent of co-batched rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    /// Row-major quantized values, `rows × cols`.
    pub data: Vec<i8>,
    /// One symmetric scale per row; `scales[r] = maxabs(row r) / 127`
    /// (`1.0` for all-zero rows, which quantize to zeros regardless).
    pub scales: Vec<f32>,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl QuantizedMatrix {
    /// Quantizes a row-major `rows × cols` slice with one symmetric scale
    /// per row: `scale = maxabs / 127`, `q = round(v / scale)` clamped to
    /// `[-127, 127]` (the `-128` code is unused, keeping the scheme
    /// symmetric).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `src.len() ≠ rows·cols`
    /// and [`TensorError::ElementOverflow`] when that product overflows.
    pub fn quantize_rows(src: &[f32], rows: usize, cols: usize) -> Result<QuantizedMatrix> {
        let volume = shape::checked_volume(&[rows, cols], "quantize_rows")?;
        if src.len() != volume {
            return Err(TensorError::LengthMismatch {
                expected: volume,
                actual: src.len(),
            });
        }
        let mut data = vec![0i8; volume];
        let mut scales = vec![1.0f32; rows];
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            let maxabs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            if maxabs == 0.0 {
                continue; // zeros quantize to zeros under the default scale
            }
            let scale = maxabs / 127.0;
            scales[r] = scale;
            for (q, &v) in data[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                *q = (v / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
        Ok(QuantizedMatrix {
            data,
            scales,
            rows,
            cols,
        })
    }

    /// Dequantizes back to `f32` (test/diagnostic helper; the hot path
    /// dequantizes fused with bias and activation at the layer boundary).
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.data.len()];
        for r in 0..self.rows {
            let s = self.scales[r];
            for (o, &q) in out[r * self.cols..(r + 1) * self.cols]
                .iter_mut()
                .zip(&self.data[r * self.cols..(r + 1) * self.cols])
            {
                *o = q as f32 * s;
            }
        }
        out
    }
}

/// Exact integer GEMM against a transposed rhs:
/// `[m, k] × [n, k]ᵀ → [m, n]` with `i32` accumulation.
///
/// Mirrors the f32 `matmul_nt` layout (the conv/linear forward shape): row
/// `i` of `a` dotted with row `j` of `b`. Output element `(i, j)` is the
/// exact integer `Σ_t a[i,t]·b[j,t]` — combine with
/// `a.scales[i] * b.scales[j]` to dequantize.
///
/// # Errors
///
/// Returns [`TensorError::MatmulDimMismatch`] when the operand lengths
/// disagree with `m`/`k`/`n`, [`TensorError::ElementOverflow`] when `m·n`
/// overflows, and [`TensorError::InvalidGeometry`] when `k >` [`MAX_K`]
/// (the `i32` accumulator could wrap).
pub fn gemm_i8_nt(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Result<Vec<i32>> {
    if a.len() != shape::checked_volume(&[m, k], "gemm_i8_nt")?
        || b.len() != shape::checked_volume(&[n, k], "gemm_i8_nt")?
    {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: a.len() / m.max(1),
            rhs_rows: b.len() / k.max(1),
        });
    }
    if k > MAX_K {
        return Err(TensorError::InvalidGeometry(format!(
            "gemm_i8_nt reduction depth {k} exceeds the exact-i32 bound {MAX_K}"
        )));
    }
    let volume = shape::checked_volume(&[m, n], "gemm_i8_nt")?;
    let mut out = vec![0i32; volume];
    if volume == 0 {
        return Ok(out);
    }
    // Row split like matmul_nt; integer accumulation is exact, so this is
    // deterministic for any thread count without an order contract.
    let threads = parallel::threads_for(m.saturating_mul(n).saturating_mul(k));
    parallel::par_items_mut(&mut out, n, threads, |i, orow| {
        let arow = &a[i * k..(i + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for t in 0..k {
                acc += arow[t] as i32 * brow[t] as i32;
            }
            *o = acc;
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize, salt: usize) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| ((i * 31 + salt * 7) % 97) as f32 * 0.11 - 5.0)
            .collect()
    }

    #[test]
    fn quantize_roundtrip_error_is_bounded_by_half_scale() {
        let src = sample(5, 33, 1);
        let q = QuantizedMatrix::quantize_rows(&src, 5, 33).unwrap();
        let deq = q.dequantize();
        for r in 0..5 {
            let half = q.scales[r] * 0.5 + 1e-6;
            for c in 0..33 {
                let err = (src[r * 33 + c] - deq[r * 33 + c]).abs();
                assert!(err <= half, "row {r} col {c}: err {err} > {half}");
            }
        }
    }

    #[test]
    fn zero_rows_quantize_to_zeros_with_unit_scale() {
        let mut src = sample(3, 8, 2);
        src[8..16].fill(0.0);
        let q = QuantizedMatrix::quantize_rows(&src, 3, 8).unwrap();
        assert_eq!(q.scales[1], 1.0);
        assert!(q.data[8..16].iter().all(|&v| v == 0));
    }

    #[test]
    fn quantize_rejects_bad_lengths() {
        assert!(matches!(
            QuantizedMatrix::quantize_rows(&[0.0; 5], 2, 3),
            Err(TensorError::LengthMismatch { .. })
        ));
        assert!(matches!(
            QuantizedMatrix::quantize_rows(&[], usize::MAX, 2),
            Err(TensorError::ElementOverflow { .. })
        ));
    }

    #[test]
    fn gemm_matches_i64_reference_exactly() {
        let (m, k, n) = (7, 40, 9);
        let a: Vec<i8> = (0..m * k).map(|i| ((i * 37 + 11) % 255) as i8).collect();
        let b: Vec<i8> = (0..n * k).map(|i| ((i * 53 + 5) % 251) as i8).collect();
        let got = gemm_i8_nt(&a, &b, m, k, n).unwrap();
        for i in 0..m {
            for j in 0..n {
                let want: i64 = (0..k)
                    .map(|t| a[i * k + t] as i64 * b[j * k + t] as i64)
                    .sum();
                assert_eq!(got[i * n + j] as i64, want, "({i},{j})");
            }
        }
    }

    #[test]
    fn gemm_is_identical_across_thread_counts() {
        let (m, k, n) = (16, 64, 12);
        let a: Vec<i8> = (0..m * k).map(|i| ((i * 19) % 200) as i8).collect();
        let b: Vec<i8> = (0..n * k).map(|i| ((i * 23) % 190) as i8).collect();
        let serial = {
            let _g = parallel::with_threads(1);
            gemm_i8_nt(&a, &b, m, k, n).unwrap()
        };
        for threads in [2, 4, 7] {
            let _g = parallel::with_threads(threads);
            assert_eq!(serial, gemm_i8_nt(&a, &b, m, k, n).unwrap());
        }
    }

    #[test]
    fn gemm_guards_depth_and_shape() {
        assert!(matches!(
            gemm_i8_nt(&[], &[], 0, MAX_K + 1, 0),
            Err(TensorError::MatmulDimMismatch { .. }) | Err(TensorError::InvalidGeometry(_))
        ));
        let a = vec![1i8; 2 * 3];
        let b = vec![1i8; 4 * 3];
        assert!(gemm_i8_nt(&a, &b, 2, 3, 4).is_ok());
        assert!(matches!(
            gemm_i8_nt(&a, &b, 2, 4, 4),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }
}
