//! The kernel-backend seam: every hot-path kernel family behind one trait.
//!
//! PR 5/7 centralized the workspace's numeric inner loops (dense GEMM,
//! quantized GEMM, convolution, the dot/sqdist reduction kernels, and
//! hot-path output allocation) into `ibrar-tensor`. This module cuts the
//! seam ROADMAP item 1 asked for: those entry points are now methods on
//! [`Backend`], and a future SIMD-intrinsic, GPU, or distributed backend is
//! a new impl rather than a rewrite.
//!
//! Two impls ship today:
//!
//! * [`CpuTuned`] (the default): the measured production kernels — scratch-
//!   pool allocation, cache-tiled/parallel GEMM with the fixed 8-lane
//!   reduction order, the packed 4×16 int8 microkernel, and the im2col-free
//!   blocked direct convolution.
//! * [`Naive`]: the conformance reference — plain serial loops transcribing
//!   the `ibrar-oracle` kernel semantics (single accumulator, ascending
//!   index order, no blocking, no pooling, no parallelism). `ibrar-oracle`
//!   depends on this crate, so the adapter re-states the loops rather than
//!   calling the oracle; the differential suites pin the two together.
//!
//! # Conformance-suite-as-gate
//!
//! The oracle differential suites are the conformance bar: any backend must
//! pass them. `scripts/ci.sh` runs the tensor/autograd/attacks differential
//! suites once per backend (`IBRAR_BACKEND=naive` and the default), and
//! `crates/tensor/tests/backend_conformance.rs` sweeps every [`Backend`]
//! method of both impls against the oracle in one harness. A new backend
//! joins the gate by appearing in [`ALL_BACKENDS`].
//!
//! # Selection and determinism
//!
//! The process-wide backend comes from `IBRAR_BACKEND` (`tuned` — default —
//! or `naive`), read once. [`with_backend`] overrides it for the current
//! thread (RAII, nests) — tests use it to compare backends in one process.
//! The override is thread-local and is *not* captured by the worker pool:
//! kernels dispatched from pool workers follow the process-wide setting.
//! That is sound because backend dispatch happens once per op on the
//! submitting thread; the parallel splits *inside* `CpuTuned` never
//! re-dispatch.
//!
//! Bitwise results differ *between* backends (serial vs 8-lane reduction
//! order) but each backend is individually deterministic across thread
//! counts: `Naive` is serial, and `CpuTuned` keeps the documented
//! per-element accumulation-order contract of DESIGN.md §9/§12. Golden
//! snapshots are recorded under the default backend only.
//!
//! One reduction is deliberately **outside** the seam: `median_sigma`'s
//! pairwise distances (`ibrar_infotheory`) stay pinned to the fixed 8-lane
//! `simd::sqdist8` order regardless of backend. The σ widths it produces
//! feed the trainer's stop-gradient prepass and the bitwise goldens, and the
//! oracle's `median_sigma` transcribes that exact order — the lane order is
//! part of the cross-backend numeric contract, not a backend detail.

use crate::{conv, matmul, qgemm, scratch, simd, Conv2dSpec};
use std::cell::Cell;
use std::sync::OnceLock;

/// Geometry bundle for [`Backend::conv2d_forward`]: input `[n, c, h, w]`,
/// output `[n, oc, oh, ow]`, weights flattened to `[oc, c·k·k]`.
#[derive(Debug, Clone, Copy)]
pub struct ConvGeom {
    /// Batch size.
    pub n: usize,
    /// Input spatial height.
    pub h: usize,
    /// Input spatial width.
    pub w: usize,
    /// Output spatial height.
    pub oh: usize,
    /// Output spatial width.
    pub ow: usize,
    /// Channel/kernel/stride/padding geometry.
    pub spec: Conv2dSpec,
}

/// The kernel-family seam. Implementations must be individually
/// deterministic (same inputs + same backend ⇒ same bits, for any thread
/// count) and must pass the oracle conformance suites; they are *not*
/// required to agree bitwise with each other.
pub trait Backend: Send + Sync {
    /// Short stable identifier (`"tuned"`, `"naive"`), also the
    /// `IBRAR_BACKEND` value that selects the impl.
    fn name(&self) -> &'static str;

    /// A zeroed `len`-element output buffer, indistinguishable from
    /// `vec![0.0; len]`. `CpuTuned` draws from the thread-local scratch
    /// pool; `Naive` allocates fresh.
    fn alloc(&self, len: usize) -> Vec<f32>;

    /// Dense GEMM `[m, k] × [k, n] → [m, n]` into a zeroed `out`.
    fn gemm(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// `A × Bᵀ` with `b` in `[n, k]` layout, into a zeroed `out`.
    fn gemm_nt(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// `Aᵀ × B` with `a` in `[k, m]` layout, into a zeroed `out`.
    fn gemm_tn(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// Matrix–vector product `[m, k] × [k] → [m]` into a zeroed `out`.
    fn matvec(&self, a: &[f32], v: &[f32], out: &mut [f32], m: usize, k: usize);

    /// Reduction kernel: `Σ a[i]·b[i]` over equal-length slices.
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;

    /// Reduction kernel: `Σ (a[i]−b[i])²` over equal-length slices.
    fn sqdist(&self, a: &[f32], b: &[f32]) -> f32;

    /// Exact integer GEMM `[m, k]i8 × [n, k]ᵀi8 → [m, n]i32` into `out`.
    /// Integer accumulation is associative, so any impl is bitwise exact;
    /// callers enforce the [`qgemm::MAX_K`] depth bound.
    fn qgemm_nt(&self, a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize);

    /// Direct 2-D convolution forward into a zeroed NCHW `out`
    /// (`[n, oc, oh, ow]`); `wmat` is the kernel flattened to `[oc, c·k·k]`.
    fn conv2d_forward(&self, x: &[f32], wmat: &[f32], out: &mut [f32], geom: &ConvGeom);
}

/// The tuned production CPU backend (default).
#[derive(Debug)]
pub struct CpuTuned;

/// The serial conformance-reference backend.
#[derive(Debug)]
pub struct Naive;

static TUNED: CpuTuned = CpuTuned;
static NAIVE: Naive = Naive;

/// Every shipped backend, for conformance sweeps.
pub static ALL_BACKENDS: [&dyn Backend; 2] = [&TUNED, &NAIVE];

impl Backend for CpuTuned {
    fn name(&self) -> &'static str {
        "tuned"
    }

    fn alloc(&self, len: usize) -> Vec<f32> {
        scratch::take(len)
    }

    fn gemm(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        matmul::gemm_tuned(a, b, out, m, k, n);
    }

    fn gemm_nt(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        matmul::gemm_nt_tuned(a, b, out, m, k, n);
    }

    fn gemm_tn(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        matmul::gemm_tn_tuned(a, b, out, m, k, n);
    }

    fn matvec(&self, a: &[f32], v: &[f32], out: &mut [f32], m: usize, k: usize) {
        matmul::matvec_tuned(a, v, out, m, k);
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        simd::dot8(a, b)
    }

    fn sqdist(&self, a: &[f32], b: &[f32]) -> f32 {
        simd::sqdist8(a, b)
    }

    fn qgemm_nt(&self, a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
        qgemm::qgemm_nt_tuned(a, b, out, m, k, n);
    }

    fn conv2d_forward(&self, x: &[f32], wmat: &[f32], out: &mut [f32], geom: &ConvGeom) {
        conv::conv_forward_tuned(x, wmat, out, geom);
    }
}

impl Backend for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn alloc(&self, len: usize) -> Vec<f32> {
        vec![0.0; len]
    }

    fn gemm(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for t in 0..k {
                    acc += a[i * k + t] * b[t * n + j];
                }
                out[i * n + j] = acc;
            }
        }
    }

    fn gemm_nt(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for t in 0..k {
                    acc += a[i * k + t] * b[j * k + t];
                }
                out[i * n + j] = acc;
            }
        }
    }

    fn gemm_tn(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for t in 0..k {
                    acc += a[t * m + i] * b[t * n + j];
                }
                out[i * n + j] = acc;
            }
        }
    }

    fn matvec(&self, a: &[f32], v: &[f32], out: &mut [f32], m: usize, k: usize) {
        for (i, o) in out.iter_mut().enumerate().take(m) {
            let mut acc = 0.0f32;
            for t in 0..k {
                acc += a[i * k + t] * v[t];
            }
            *o = acc;
        }
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            acc += x * y;
        }
        acc
    }

    fn sqdist(&self, a: &[f32], b: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            let d = x - y;
            acc += d * d;
        }
        acc
    }

    fn qgemm_nt(&self, a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for t in 0..k {
                    acc += a[i * k + t] as i32 * b[j * k + t] as i32;
                }
                out[i * n + j] = acc;
            }
        }
    }

    fn conv2d_forward(&self, x: &[f32], wmat: &[f32], out: &mut [f32], geom: &ConvGeom) {
        // The oracle's 7-loop direct convolution: one serial accumulator per
        // output element, ascending (ci, ky, kx) order, padding contributes
        // an explicit zero product.
        let spec = &geom.spec;
        let (c, k) = (spec.in_channels, spec.kernel);
        let (oc, patch) = (spec.out_channels, spec.patch_len());
        for ni in 0..geom.n {
            for co in 0..oc {
                for oy in 0..geom.oh {
                    for ox in 0..geom.ow {
                        let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                        let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                        let mut acc = 0.0f32;
                        for ci in 0..c {
                            let chan = (ni * c + ci) * geom.h * geom.w;
                            for ky in 0..k {
                                let iy = iy0 + ky as isize;
                                for kx in 0..k {
                                    let ix = ix0 + kx as isize;
                                    let xv = if iy < 0
                                        || iy >= geom.h as isize
                                        || ix < 0
                                        || ix >= geom.w as isize
                                    {
                                        0.0
                                    } else {
                                        x[chan + iy as usize * geom.w + ix as usize]
                                    };
                                    acc += xv * wmat[co * patch + (ci * k + ky) * k + kx];
                                }
                            }
                        }
                        out[((ni * oc + co) * geom.oh + oy) * geom.ow + ox] = acc;
                    }
                }
            }
        }
    }
}

fn env_kind() -> &'static dyn Backend {
    static ENV: OnceLock<&'static dyn Backend> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("IBRAR_BACKEND") {
        Ok(v) if v.trim() == "naive" => &NAIVE,
        Ok(v) if !v.trim().is_empty() && v.trim() != "tuned" => {
            eprintln!(
                "[ibrar-tensor] unknown IBRAR_BACKEND '{}', using 'tuned' \
                 (known: tuned, naive)",
                v.trim()
            );
            &TUNED
        }
        _ => &TUNED,
    })
}

thread_local! {
    static OVERRIDE: Cell<Option<&'static dyn Backend>> = const { Cell::new(None) };
}

/// The active backend for this thread: the innermost [`with_backend`]
/// override if one is live, else the process-wide `IBRAR_BACKEND` choice.
pub fn current() -> &'static dyn Backend {
    OVERRIDE.with(Cell::get).unwrap_or_else(env_kind)
}

/// RAII guard restoring the previous backend override on drop.
pub struct BackendScope {
    prev: Option<&'static dyn Backend>,
}

impl std::fmt::Debug for BackendScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendScope")
            .field("prev", &self.prev.map(|b| b.name()))
            .finish()
    }
}

impl Drop for BackendScope {
    fn drop(&mut self) {
        OVERRIDE.with(|o| o.set(self.prev));
    }
}

/// Overrides the active backend for the current thread until the returned
/// guard drops. Nests like `parallel::with_threads`. Thread-local: worker
/// threads keep the process-wide backend (see the module docs).
#[must_use = "the override ends when the guard drops"]
pub fn with_backend(backend: &'static dyn Backend) -> BackendScope {
    let prev = OVERRIDE.with(|o| o.replace(Some(backend)));
    BackendScope { prev }
}

/// Free-function reduction entry point: `Σ a[i]·b[i]` on the active backend.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    current().dot(a, b)
}

/// Free-function reduction entry point: `Σ (a[i]−b[i])²` on the active
/// backend.
pub fn sqdist(a: &[f32], b: &[f32]) -> f32 {
    current().sqdist(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_is_tuned() {
        // The test process does not set IBRAR_BACKEND.
        assert_eq!(current().name(), "tuned");
    }

    #[test]
    fn with_backend_overrides_and_restores() {
        assert_eq!(current().name(), "tuned");
        {
            let _g = with_backend(&Naive);
            assert_eq!(current().name(), "naive");
            {
                let _g2 = with_backend(&CpuTuned);
                assert_eq!(current().name(), "tuned");
            }
            assert_eq!(current().name(), "naive");
        }
        assert_eq!(current().name(), "tuned");
    }

    #[test]
    fn naive_reductions_are_serial_order() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut acc = 0.0f32;
        for (x, y) in a.iter().zip(&b) {
            acc += x * y;
        }
        assert_eq!(Naive.dot(&a, &b).to_bits(), acc.to_bits());
        let mut sq = 0.0f32;
        for (x, y) in a.iter().zip(&b) {
            let d = x - y;
            sq += d * d;
        }
        assert_eq!(Naive.sqdist(&a, &b).to_bits(), sq.to_bits());
    }

    #[test]
    fn all_backends_lists_both() {
        let names: Vec<&str> = ALL_BACKENDS.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["tuned", "naive"]);
    }
}
