//! Random tensor initializers.
//!
//! `rand` ships only uniform sampling, so normal variates come from a small
//! Box–Muller sampler ([`NormalSampler`]) implemented here.

use crate::Tensor;
use rand::Rng;

/// Box–Muller Gaussian sampler over any [`Rng`].
///
/// Generates pairs of independent standard normals and caches the spare one.
///
/// # Examples
///
/// ```
/// use ibrar_tensor::NormalSampler;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut sampler = NormalSampler::new();
/// let v = sampler.sample(&mut rng);
/// assert!(v.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    spare: Option<f32>,
}

impl NormalSampler {
    /// Creates a sampler with no cached value.
    pub fn new() -> Self {
        NormalSampler { spare: None }
    }

    /// Draws one standard-normal variate.
    pub fn sample(&mut self, rng: &mut impl Rng) -> f32 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Box–Muller on (0, 1] uniforms; 1.0 - r keeps u strictly positive.
        let u: f32 = 1.0 - rng.gen::<f32>();
        let v: f32 = rng.gen::<f32>();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * v;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

/// Tensor with i.i.d. `U[lo, hi)` entries.
pub fn uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    let volume: usize = dims.iter().product();
    let data = (0..volume).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, dims).expect("volume matches by construction")
}

/// Tensor with i.i.d. `N(mean, std²)` entries.
pub fn normal(dims: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    let volume: usize = dims.iter().product();
    let mut sampler = NormalSampler::new();
    let data = (0..volume)
        .map(|_| mean + std * sampler.sample(rng))
        .collect();
    Tensor::from_vec(data, dims).expect("volume matches by construction")
}

/// Kaiming (He) uniform initialization for ReLU networks.
///
/// Bound is `sqrt(6 / fan_in)`; `fan_in` is inferred from the shape
/// (`[out, in]` for linear weights, `[oc, ic, kh, kw]` for conv kernels).
pub fn kaiming_uniform(dims: &[usize], rng: &mut impl Rng) -> Tensor {
    let fan_in = fan_in_of(dims).max(1);
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(dims, -bound, bound, rng)
}

/// Xavier (Glorot) uniform initialization.
///
/// Bound is `sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(dims: &[usize], rng: &mut impl Rng) -> Tensor {
    let fan_in = fan_in_of(dims).max(1);
    let fan_out = fan_out_of(dims).max(1);
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(dims, -bound, bound, rng)
}

fn fan_in_of(dims: &[usize]) -> usize {
    match dims.len() {
        0 | 1 => dims.iter().product(),
        2 => dims[1],
        _ => dims[1..].iter().product(),
    }
}

fn fan_out_of(dims: &[usize]) -> usize {
    match dims.len() {
        0 | 1 => dims.iter().product(),
        2 => dims[0],
        _ => dims[0] * dims[2..].iter().product::<usize>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.max() < 0.5);
        assert!(t.min() >= -0.5);
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = normal(&[20_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn kaiming_bound_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let wide = kaiming_uniform(&[4, 1000], &mut rng);
        let narrow = kaiming_uniform(&[4, 10], &mut rng);
        assert!(wide.abs().max() < narrow.abs().max());
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = normal(&[32], 0.0, 1.0, &mut StdRng::seed_from_u64(9));
        let b = normal(&[32], 0.0, 1.0, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn conv_fan_in_uses_kernel_volume() {
        assert_eq!(fan_in_of(&[8, 3, 3, 3]), 27);
        assert_eq!(fan_out_of(&[8, 3, 3, 3]), 72);
    }

    #[test]
    fn sampler_never_produces_nan() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sampler = NormalSampler::new();
        for _ in 0..10_000 {
            assert!(sampler.sample(&mut rng).is_finite());
        }
    }
}
