//! A tiny binary (de)serialization format for tensors.
//!
//! Model checkpoints in this workspace are concatenations of encoded tensors.
//! Layout (little-endian): magic `IBT1`, `u32` rank, `u64` per extent, then
//! `f32` per element. No external serialization crates are needed.

use crate::{Result, Tensor, TensorError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"IBT1";

impl Tensor {
    /// Encodes the tensor into the workspace binary format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + 8 * self.rank() + 4 * self.len());
        buf.put_slice(MAGIC);
        buf.put_u32_le(self.rank() as u32);
        for &d in self.shape() {
            buf.put_u64_le(d as u64);
        }
        for &v in self.data() {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }

    /// Decodes one tensor from the front of `buf`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Decode`] on a bad magic value, truncated input,
    /// or an implausible shape.
    pub fn decode(buf: &mut Bytes) -> Result<Tensor> {
        if buf.remaining() < 8 {
            return Err(TensorError::Decode("truncated header".into()));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(TensorError::Decode(format!("bad magic {magic:?}")));
        }
        let rank = buf.get_u32_le() as usize;
        if rank > 8 {
            return Err(TensorError::Decode(format!("implausible rank {rank}")));
        }
        if buf.remaining() < rank * 8 {
            return Err(TensorError::Decode("truncated shape".into()));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(buf.get_u64_le() as usize);
        }
        let volume: usize = dims.iter().product();
        if buf.remaining() < volume * 4 {
            return Err(TensorError::Decode(format!(
                "truncated data: need {} bytes, have {}",
                volume * 4,
                buf.remaining()
            )));
        }
        let mut data = Vec::with_capacity(volume);
        for _ in 0..volume {
            data.push(buf.get_f32_le());
        }
        Tensor::from_vec(data, &dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| (i[0] * 12 + i[1] * 4 + i[2]) as f32 * 0.5);
        let mut bytes = t.encode();
        let back = Tensor::decode(&mut bytes).unwrap();
        assert_eq!(t, back);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn multiple_tensors_in_one_buffer() {
        let a = Tensor::full(&[3], 1.0);
        let b = Tensor::full(&[2, 2], 2.0);
        let mut buf = BytesMut::new();
        buf.put_slice(&a.encode());
        buf.put_slice(&b.encode());
        let mut bytes = buf.freeze();
        assert_eq!(Tensor::decode(&mut bytes).unwrap(), a);
        assert_eq!(Tensor::decode(&mut bytes).unwrap(), b);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Bytes::from_static(b"XXXX\x00\x00\x00\x00");
        assert!(matches!(
            Tensor::decode(&mut bytes),
            Err(TensorError::Decode(_))
        ));
    }

    #[test]
    fn truncated_data_rejected() {
        let t = Tensor::full(&[4], 1.0);
        let full = t.encode();
        let mut cut = full.slice(0..full.len() - 4);
        assert!(Tensor::decode(&mut cut).is_err());
    }

    #[test]
    fn scalar_roundtrip() {
        let t = Tensor::scalar(-2.5);
        let mut bytes = t.encode();
        assert_eq!(Tensor::decode(&mut bytes).unwrap(), t);
    }
}
