//! Elementwise operations and limited broadcasting.
//!
//! Binary ops require identical shapes except for the two broadcast patterns
//! the higher layers actually need:
//!
//! * **Bias broadcast** — `[n, c] + [c]` and `[n, c, h, w] + [c]`.
//! * **Scalar broadcast** — any tensor combined with a rank-0 tensor.

use crate::{scratch, Result, Tensor, TensorError};

impl Tensor {
    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = scratch::take_raw(self.len());
        data.extend(self.data().iter().map(|&v| f(v)));
        Tensor::from_vec(data, self.shape()).expect("map preserves volume")
    }

    /// Applies `f` in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.shape_obj().expect_same(other.shape_obj(), "zip")?;
        let mut data = scratch::take_raw(self.len());
        data.extend(
            self.data()
                .iter()
                .zip(other.data().iter())
                .map(|(&a, &b)| f(a, b)),
        );
        Tensor::from_vec(data, self.shape())
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes are not
    /// broadcast-compatible (see module docs).
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_zip(other, "add", |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on incompatible shapes.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_zip(other, "sub", |a, b| a - b)
    }

    /// Elementwise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on incompatible shapes.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_zip(other, "mul", |a, b| a * b)
    }

    /// Elementwise quotient.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on incompatible shapes.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_zip(other, "div", |a, b| a / b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|v| -v)
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.map(|v| v * v)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise sign (−1, 0, +1).
    pub fn signum(&self) -> Tensor {
        self.map(|v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Elementwise maximum with another tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn maximum(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, f32::max)
    }

    /// Elementwise minimum with another tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn minimum(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, f32::min)
    }

    fn broadcast_zip(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        // Same shape: plain zip.
        if self.shape() == other.shape() {
            return self.zip(other, f);
        }
        // Scalar rhs.
        if other.rank() == 0 {
            let s = other.data()[0];
            return Ok(self.map(|v| f(v, s)));
        }
        // Scalar lhs.
        if self.rank() == 0 {
            let s = self.data()[0];
            return Ok(other.map(|v| f(s, v)));
        }
        // Bias broadcast: [n, c] (+|-|*|/) [c].
        if self.rank() == 2 && other.rank() == 1 && self.shape()[1] == other.shape()[0] {
            let (n, c) = (self.shape()[0], self.shape()[1]);
            let mut data = scratch::take_raw(n * c);
            for i in 0..n {
                for j in 0..c {
                    data.push(f(self.data()[i * c + j], other.data()[j]));
                }
            }
            return Tensor::from_vec(data, self.shape());
        }
        // Channel broadcast: [n, c, h, w] (+|-|*|/) [c].
        if self.rank() == 4 && other.rank() == 1 && self.shape()[1] == other.shape()[0] {
            let (n, c, h, w) = (
                self.shape()[0],
                self.shape()[1],
                self.shape()[2],
                self.shape()[3],
            );
            let plane = h * w;
            let mut data = scratch::take_raw(self.len());
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * plane;
                    let b = other.data()[ci];
                    for k in 0..plane {
                        data.push(f(self.data()[base + k], b));
                    }
                }
            }
            return Tensor::from_vec(data, self.shape());
        }
        Err(TensorError::ShapeMismatch {
            lhs: self.shape().to_vec(),
            rhs: other.shape().to_vec(),
            op,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_shape() {
        let a = Tensor::full(&[2, 2], 1.0);
        let b = Tensor::full(&[2, 2], 2.0);
        assert_eq!(a.add(&b).unwrap().data(), &[3.0; 4]);
    }

    #[test]
    fn add_rejects_mismatched() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn bias_broadcast_rank2() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn channel_broadcast_rank4() {
        let a = Tensor::ones(&[1, 2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let out = a.mul(&b).unwrap();
        assert_eq!(out.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn scalar_broadcast_both_sides() {
        let a = Tensor::full(&[3], 4.0);
        let s = Tensor::scalar(2.0);
        assert_eq!(a.div(&s).unwrap().data(), &[2.0; 3]);
        assert_eq!(s.sub(&a).unwrap().data(), &[-2.0; 3]);
    }

    #[test]
    fn signum_handles_zero() {
        let t = Tensor::from_vec(vec![-3.0, 0.0, 5.0], &[3]).unwrap();
        assert_eq!(t.signum().data(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn clamp_bounds() {
        let t = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]).unwrap();
        assert_eq!(t.clamp(0.0, 1.0).data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn relu_matches_max_zero() {
        let t = Tensor::from_vec(vec![-2.0, 3.0], &[2]).unwrap();
        assert_eq!(t.relu().data(), &[0.0, 3.0]);
    }
}
