use std::fmt;

/// Error type for tensor operations.
///
/// Every fallible operation in this crate returns `Result<T, TensorError>`.
/// The variants carry enough context to diagnose shape mismatches without a
/// debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// length supplied.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A tensor does not have the rank required by an operation.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// Columns of the left operand.
        lhs_cols: usize,
        /// Rows of the right operand.
        rhs_rows: usize,
    },
    /// An axis index is out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor rank.
        rank: usize,
    },
    /// The element count implied by a set of extents overflows `usize`.
    /// Buffer sizing must fail loudly instead of wrapping in release builds
    /// and checking out a wrong-sized scratch buffer.
    ElementOverflow {
        /// The extents whose product overflowed.
        dims: Vec<usize>,
        /// Name of the operation that was sizing a buffer.
        op: &'static str,
    },
    /// A convolution/pooling geometry is impossible (e.g. kernel larger than
    /// the padded input).
    InvalidGeometry(String),
    /// Deserialization failed.
    Decode(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in `{op}`: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(f, "`{op}` requires rank {expected}, got rank {actual}"),
            TensorError::MatmulDimMismatch { lhs_cols, rhs_rows } => write!(
                f,
                "matmul inner dimensions disagree: lhs has {lhs_cols} cols, rhs has {rhs_rows} rows"
            ),
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::ElementOverflow { dims, op } => {
                write!(f, "element count of {dims:?} overflows usize in `{op}`")
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::Decode(msg) => write!(f, "decode error: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![3, 2],
            op: "add",
        };
        let msg = err.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
