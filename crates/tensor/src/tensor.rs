use crate::{scratch, Result, Shape, TensorError};

/// A dense, contiguous, row-major `f32` tensor.
///
/// All operations allocate fresh output tensors; there are no strided views.
/// See the crate-level docs for the rationale. Backing buffers come from the
/// thread-local [`scratch`] pool and return to it on drop, so hot loops that
/// churn tensors of recurring shapes reuse allocations instead of hitting
/// the system allocator.
///
/// # Examples
///
/// ```
/// use ibrar_tensor::Tensor;
///
/// let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as f32);
/// assert_eq!(t.get(&[1, 2]), 5.0);
/// let r = t.reshape(&[3, 2])?;
/// assert_eq!(r.shape(), &[3, 2]);
/// # Ok::<(), ibrar_tensor::TensorError>(())
/// ```
#[derive(Debug, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor {
            data: scratch::vec_from_slice(&self.data),
            shape: self.shape.clone(),
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        scratch::recycle(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs from
    /// the shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: scratch::take(shape.volume()),
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let mut data = scratch::take_raw(shape.volume());
        data.resize(shape.volume(), value);
        Tensor { data, shape }
    }

    /// A rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::scalar(),
        }
    }

    /// Creates a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = Shape::new(dims);
        let volume = shape.volume();
        let mut data = scratch::take_raw(volume);
        let mut index = vec![0usize; dims.len()];
        for _ in 0..volume {
            data.push(f(&index));
            // advance the row-major multi-index
            for axis in (0..dims.len()).rev() {
                index[axis] += 1;
                if index[axis] < dims[axis] {
                    break;
                }
                index[axis] = 0;
            }
        }
        Tensor { data, shape }
    }

    /// The identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        Tensor::from_fn(&[n, n], |idx| if idx[0] == idx[1] { 1.0 } else { 0.0 })
    }

    /// Raw data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Axis extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The [`Shape`] object.
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the index is out of range.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the index is out of range.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            data: scratch::vec_from_slice(&self.data),
            shape,
        })
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Self {
        Tensor {
            data: scratch::vec_from_slice(&self.data),
            shape: Shape::new(&[self.data.len()]),
        }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Self> {
        self.shape.expect_rank(2, "transpose")?;
        let (r, c) = (self.shape.dims()[0], self.shape.dims()[1]);
        let mut out = scratch::take(r * c);
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec(out, &[c, r])
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or out-of-range rows.
    pub fn row(&self, i: usize) -> Result<Self> {
        self.shape.expect_rank(2, "row")?;
        let (r, c) = (self.shape.dims()[0], self.shape.dims()[1]);
        if i >= r {
            return Err(TensorError::AxisOutOfRange { axis: i, rank: r });
        }
        Tensor::from_vec(
            scratch::vec_from_slice(&self.data[i * c..(i + 1) * c]),
            &[c],
        )
    }

    /// Stacks rank-`k` tensors with identical shapes into a rank-`k+1` tensor
    /// along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns an error when `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Result<Self> {
        let refs: Vec<&Tensor> = items.iter().collect();
        Tensor::stack_refs(&refs)
    }

    /// [`Tensor::stack`] over borrowed tensors, for callers (e.g. the serve
    /// batch assembler) that stack without owning or cloning the inputs.
    ///
    /// # Errors
    ///
    /// Returns an error when `items` is empty or shapes differ.
    pub fn stack_refs(items: &[&Tensor]) -> Result<Self> {
        let first = *items
            .first()
            .ok_or_else(|| TensorError::InvalidGeometry("stack of zero tensors".into()))?;
        let mut data = scratch::take_raw(items.len() * first.len());
        for item in items {
            first.shape.expect_same(&item.shape, "stack")?;
            data.extend_from_slice(&item.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.shape());
        Tensor::from_vec(data, &dims)
    }

    /// Selects the sub-tensors at `indices` along the leading axis.
    ///
    /// For a `[n, ...]` tensor this gathers rows (in the general sense) and
    /// returns a `[indices.len(), ...]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 tensors or out-of-range indices.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Self> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
                op: "select_rows",
            });
        }
        let n = self.shape.dims()[0];
        let row_len = self.len() / n.max(1);
        let mut data = scratch::take_raw(indices.len() * row_len);
        for &i in indices {
            if i >= n {
                return Err(TensorError::AxisOutOfRange { axis: i, rank: n });
            }
            data.extend_from_slice(&self.data[i * row_len..(i + 1) * row_len]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.shape.dims()[1..]);
        Tensor::from_vec(data, &dims)
    }

    /// Index of the maximum element in each row of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        self.shape.expect_rank(2, "argmax_rows")?;
        let (r, c) = (self.shape.dims()[0], self.shape.dims()[1]);
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            let row = &self.data[i * c..(i + 1) * c];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// `true` when every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        self.shape.expect_same(&other.shape, "max_abs_diff")?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(
            f,
            "[{}{}]",
            preview.join(", "),
            if self.len() > 8 { ", …" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn transpose_is_involution() {
        let t = Tensor::from_fn(&[3, 4], |idx| (idx[0] * 4 + idx[1]) as f32);
        let tt = t.transpose().unwrap().transpose().unwrap();
        assert_eq!(t, tt);
    }

    #[test]
    fn stack_and_select_roundtrip() {
        let a = Tensor::full(&[2, 2], 1.0);
        let b = Tensor::full(&[2, 2], 2.0);
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape(), &[2, 2, 2]);
        let sel = s.select_rows(&[1]).unwrap();
        assert_eq!(sel.shape(), &[1, 2, 2]);
        assert_eq!(sel.data(), b.reshape(&[1, 2, 2]).unwrap().data());
    }

    #[test]
    fn argmax_rows_picks_first_on_tie() {
        let t = Tensor::from_vec(vec![1.0, 1.0, 0.0, 0.5, 0.7, 0.7], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![0, 1]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.get(&[0, 0]), 1.0);
        assert_eq!(i.get(&[0, 1]), 0.0);
        assert_eq!(i.get(&[2, 2]), 1.0);
    }

    #[test]
    fn reshape_rejects_bad_volume() {
        let t = Tensor::zeros(&[4]);
        assert!(t.reshape(&[5]).is_err());
        assert!(t.reshape(&[2, 2]).is_ok());
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(&[2]);
        assert!(!format!("{t}").is_empty());
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::zeros(&[2]);
        assert!(t.all_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn select_rows_out_of_range() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.select_rows(&[2]).is_err());
    }
}
