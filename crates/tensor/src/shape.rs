use crate::{Result, TensorError};

/// The extents of a tensor along each axis.
///
/// `Shape` is a thin wrapper over `Vec<usize>` that centralizes the index
/// arithmetic (volume, row-major strides, flat offsets) used by every kernel
/// in this crate.
///
/// # Examples
///
/// ```
/// use ibrar_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

/// Checked product of `dims` for sizing output and scratch buffers.
///
/// Kernels derive buffer lengths from products of user-supplied extents
/// (`m * n` in matmul, `n * oh * ow * patch` in im2col). In release builds
/// a plain product wraps on overflow and would check out a wrong-sized
/// scratch buffer; this helper fails loudly with
/// [`TensorError::ElementOverflow`] instead.
///
/// # Errors
///
/// Returns [`TensorError::ElementOverflow`] when the product exceeds
/// `usize::MAX`.
///
/// # Examples
///
/// ```
/// use ibrar_tensor::checked_volume;
///
/// assert_eq!(checked_volume(&[8, 4096], "matmul")?, 32768);
/// assert!(checked_volume(&[usize::MAX, 2], "matmul").is_err());
/// # Ok::<(), ibrar_tensor::TensorError>(())
/// ```
pub fn checked_volume(dims: &[usize], op: &'static str) -> Result<usize> {
    dims.iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(TensorError::ElementOverflow {
            dims: dims.to_vec(),
            op,
        })
}

impl Shape {
    /// Creates a shape from axis extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The scalar shape (rank 0, volume 1).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Extents along each axis.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `index` has the wrong rank or any coordinate
    /// is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.0.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.0.len()).rev() {
            debug_assert!(index[i] < self.0[i], "index out of range");
            off += index[i] * stride;
            stride *= self.0[i];
        }
        off
    }

    /// Extent along `axis`, or an error if out of range.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.0.len(),
            })
    }

    /// Returns `Ok(())` when `self` equals `other`, otherwise a
    /// [`TensorError::ShapeMismatch`] labeled with `op`.
    pub fn expect_same(&self, other: &Shape, op: &'static str) -> Result<()> {
        if self == other {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch {
                lhs: self.0.clone(),
                rhs: other.0.clone(),
                op,
            })
        }
    }

    /// Returns `Ok(())` when the shape has exactly `rank` axes.
    pub fn expect_rank(&self, rank: usize, op: &'static str) -> Result<()> {
        if self.rank() == rank {
            Ok(())
        } else {
            Err(TensorError::RankMismatch {
                expected: rank,
                actual: self.rank(),
                op,
            })
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_scalar_is_one() {
        assert_eq!(Shape::scalar().volume(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 1, 3]);
        assert_eq!(s.strides(), vec![3, 3, 1]);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[3, 4, 5]);
        let mut seen = vec![false; s.volume()];
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..5 {
                    let off = s.offset(&[i, j, k]);
                    assert!(!seen[off], "duplicate offset");
                    seen[off] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn dim_out_of_range_is_error() {
        let s = Shape::new(&[2, 2]);
        assert!(matches!(
            s.dim(2),
            Err(TensorError::AxisOutOfRange { axis: 2, rank: 2 })
        ));
    }

    #[test]
    fn expect_same_reports_op() {
        let a = Shape::new(&[1]);
        let b = Shape::new(&[2]);
        let err = a.expect_same(&b, "test_op").unwrap_err();
        assert!(err.to_string().contains("test_op"));
    }

    #[test]
    fn checked_volume_guards_overflow() {
        assert_eq!(checked_volume(&[], "op").unwrap(), 1);
        assert_eq!(checked_volume(&[3, 0, 2], "op").unwrap(), 0);
        assert_eq!(checked_volume(&[7, 5], "op").unwrap(), 35);
        // A product that wraps in release builds must error, not wrap.
        let err = checked_volume(&[usize::MAX / 2, 3], "matmul").unwrap_err();
        match err {
            TensorError::ElementOverflow { dims, op } => {
                assert_eq!(dims, vec![usize::MAX / 2, 3]);
                assert_eq!(op, "matmul");
            }
            other => panic!("wrong error: {other:?}"),
        }
        // Zero extents neutralize later overflow only if they come first in
        // the fold — [0, MAX, MAX] is 0, MAX*MAX never forms.
        assert_eq!(checked_volume(&[0, usize::MAX], "op").unwrap(), 0);
    }

    #[test]
    fn zero_extent_axis_gives_zero_volume() {
        assert_eq!(Shape::new(&[3, 0, 2]).volume(), 0);
    }
}
