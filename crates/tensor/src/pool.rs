//! 2-D pooling kernels (max and average) with explicit backward passes.
//!
//! Max pooling records the argmax index of every window so the backward pass
//! can route gradients exactly; average pooling distributes gradients
//! uniformly over each window.

use crate::{Result, Tensor, TensorError};

/// Geometry of a 2-D pooling operation (square window, no padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool2dSpec {
    /// Window edge.
    pub kernel: usize,
    /// Stride along both axes.
    pub stride: usize,
}

impl Pool2dSpec {
    /// Creates a pooling spec.
    pub fn new(kernel: usize, stride: usize) -> Self {
        Pool2dSpec { kernel, stride }
    }

    /// Output spatial size for an `h × w` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when the window does not fit
    /// or the stride is zero.
    pub fn out_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry(
                "stride must be nonzero".into(),
            ));
        }
        if self.kernel == 0 || self.kernel > h || self.kernel > w {
            return Err(TensorError::InvalidGeometry(format!(
                "pool window {} does not fit input {}x{}",
                self.kernel, h, w
            )));
        }
        Ok((
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        ))
    }
}

/// Max-pools an `[n, c, h, w]` tensor.
///
/// Returns the pooled tensor and the flat input index chosen for every output
/// element (needed by [`max_pool2d_backward`]).
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs or invalid geometry.
pub fn max_pool2d(input: &Tensor, spec: &Pool2dSpec) -> Result<(Tensor, Vec<usize>)> {
    input.shape_obj().expect_rank(4, "max_pool2d")?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (oh, ow) = spec.out_hw(h, w)?;
    let mut out = Vec::with_capacity(n * c * oh * ow);
    let mut arg = Vec::with_capacity(n * c * oh * ow);
    let data = input.data();
    for ni in 0..n {
        for ci in 0..c {
            let chan = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let y0 = oy * spec.stride;
                    let x0 = ox * spec.stride;
                    let mut best_idx = chan + y0 * w + x0;
                    let mut best = data[best_idx];
                    for ky in 0..spec.kernel {
                        for kx in 0..spec.kernel {
                            let idx = chan + (y0 + ky) * w + (x0 + kx);
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out.push(best);
                    arg.push(best_idx);
                }
            }
        }
    }
    Ok((Tensor::from_vec(out, &[n, c, oh, ow])?, arg))
}

/// Routes output gradients back to the argmax positions recorded by
/// [`max_pool2d`].
///
/// # Errors
///
/// Returns an error when `grad_out` length differs from `argmax` length.
pub fn max_pool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_shape: &[usize],
) -> Result<Tensor> {
    if grad_out.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            expected: argmax.len(),
            actual: grad_out.len(),
        });
    }
    let mut grad_in = Tensor::zeros(input_shape);
    let gi = grad_in.data_mut();
    for (g, &idx) in grad_out.data().iter().zip(argmax) {
        gi[idx] += g;
    }
    Ok(grad_in)
}

/// Average-pools an `[n, c, h, w]` tensor.
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs or invalid geometry.
pub fn avg_pool2d(input: &Tensor, spec: &Pool2dSpec) -> Result<Tensor> {
    input.shape_obj().expect_rank(4, "avg_pool2d")?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (oh, ow) = spec.out_hw(h, w)?;
    let win = (spec.kernel * spec.kernel) as f32;
    let mut out = Vec::with_capacity(n * c * oh * ow);
    let data = input.data();
    for ni in 0..n {
        for ci in 0..c {
            let chan = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let y0 = oy * spec.stride;
                    let x0 = ox * spec.stride;
                    let mut acc = 0.0f32;
                    for ky in 0..spec.kernel {
                        for kx in 0..spec.kernel {
                            acc += data[chan + (y0 + ky) * w + (x0 + kx)];
                        }
                    }
                    out.push(acc / win);
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Backward pass of [`avg_pool2d`]: spreads each output gradient uniformly
/// over its window.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent with the forward geometry.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    spec: &Pool2dSpec,
    input_shape: &[usize],
) -> Result<Tensor> {
    grad_out.shape_obj().expect_rank(4, "avg_pool2d_backward")?;
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let (oh, ow) = spec.out_hw(h, w)?;
    if grad_out.shape() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().to_vec(),
            rhs: vec![n, c, oh, ow],
            op: "avg_pool2d_backward",
        });
    }
    let win = (spec.kernel * spec.kernel) as f32;
    let mut grad_in = Tensor::zeros(input_shape);
    let gi = grad_in.data_mut();
    let go = grad_out.data();
    for ni in 0..n {
        for ci in 0..c {
            let chan = (ni * c + ci) * h * w;
            let ochan = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = go[ochan + oy * ow + ox] / win;
                    let y0 = oy * spec.stride;
                    let x0 = ox * spec.stride;
                    for ky in 0..spec.kernel {
                        for kx in 0..spec.kernel {
                            gi[chan + (y0 + ky) * w + (x0 + kx)] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_max() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (out, arg) = max_pool2d(&input, &Pool2dSpec::new(2, 2)).unwrap();
        assert_eq!(out.data(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let input = Tensor::from_vec(vec![1.0, 9.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        let (_, arg) = max_pool2d(&input, &Pool2dSpec::new(2, 2)).unwrap();
        let grad_out = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap();
        let grad_in = max_pool2d_backward(&grad_out, &arg, &[1, 1, 2, 2]).unwrap();
        assert_eq!(grad_in.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_values() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let out = avg_pool2d(&input, &Pool2dSpec::new(2, 2)).unwrap();
        assert_eq!(out.data(), &[2.5]);
    }

    #[test]
    fn avg_pool_backward_uniform() {
        let spec = Pool2dSpec::new(2, 2);
        let grad_out = Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap();
        let grad_in = avg_pool2d_backward(&grad_out, &spec, &[1, 1, 2, 2]).unwrap();
        assert_eq!(grad_in.data(), &[1.0; 4]);
    }

    #[test]
    fn pool_geometry_errors() {
        assert!(Pool2dSpec::new(3, 1).out_hw(2, 2).is_err());
        assert!(Pool2dSpec::new(2, 0).out_hw(4, 4).is_err());
    }

    #[test]
    fn overlapping_avg_pool_adjoint() {
        // <avg(x), y> == <x, avg_backward(y)>
        let spec = Pool2dSpec::new(2, 1);
        let x = Tensor::from_fn(&[1, 1, 3, 3], |i| (i[2] * 3 + i[3]) as f32 - 4.0);
        let fwd = avg_pool2d(&x, &spec).unwrap();
        let y = Tensor::from_fn(fwd.shape(), |i| (i[2] + 2 * i[3]) as f32 + 1.0);
        let lhs: f32 = fwd.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = avg_pool2d_backward(&y, &spec, &[1, 1, 3, 3]).unwrap();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }
}
