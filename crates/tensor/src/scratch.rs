//! Thread-local scratch-buffer pool for hot-path `Vec<f32>` allocations.
//!
//! Every [`Tensor`](crate::Tensor) owns a `Vec<f32>`; in the training,
//! attack, and serving inner loops those vectors are allocated and freed at
//! enormous rates with a small set of recurring sizes (one per tensor shape
//! in the model). This module recycles them: [`take`]/[`take_raw`] check a
//! buffer out of the current thread's pool, and `Tensor`'s `Drop` impl
//! returns the backing vector via [`recycle`] so the next op of the same
//! size reuses the allocation instead of hitting the system allocator.
//!
//! # Invisibility contract
//!
//! The pool changes *where bytes live*, never *what they hold*: [`take`]
//! returns a zeroed vector indistinguishable from `vec![0.0; len]`, and
//! [`take_raw`] returns an empty vector indistinguishable from
//! `Vec::with_capacity(len)` (modulo a possibly larger capacity, which no
//! tensor op observes). Results are therefore bitwise identical with the
//! pool enabled, disabled, or freshly cleared — property-tested in
//! `crates/tensor/tests/scratch_prop.rs`.
//!
//! # Lifecycle and bounds
//!
//! Buffers are binned by power-of-two size class. A checkout takes from the
//! exact class `ceil(log2(len))` (any buffer stored there has capacity
//! ≥ `2^class` ≥ `len`); a return files the buffer under
//! `floor(log2(capacity))`. Per thread the pool retains at most
//! [`MAX_PER_CLASS`] buffers per class and [`MAX_RETAINED`] total `f32`
//! elements; buffers over `2^`[`MAX_CLASS`] elements are never retained.
//! Overflow simply drops the returned buffer — the pool is a cache, not an
//! obligation.
//!
//! # Controls and telemetry
//!
//! `IBRAR_SCRATCH=0` disables pooling process-wide (read once);
//! [`with_enabled`] overrides it for the current thread (RAII, nests), and
//! [`clear`] empties the current thread's pool. Checkouts count
//! `alloc.pool.hit` / `alloc.pool.miss` telemetry counters and the
//! always-on thread-local totals returned by [`stats`].

use std::cell::{Cell, RefCell};
use std::sync::OnceLock;

use ibrar_telemetry as tel;

/// Largest size class (log2 of elements) the pool will retain: buffers above
/// `2^MAX_CLASS` elements (256 Mi elements = 1 GiB) bypass the pool.
pub const MAX_CLASS: usize = 28;

/// Maximum buffers retained per size class per thread.
pub const MAX_PER_CLASS: usize = 64;

/// Maximum total `f32` elements retained per thread (64 Mi = 256 MiB).
pub const MAX_RETAINED: usize = 1 << 26;

struct Pool {
    classes: Vec<Vec<Vec<f32>>>,
    retained: usize,
}

impl Pool {
    fn new() -> Self {
        Pool {
            classes: (0..=MAX_CLASS).map(|_| Vec::new()).collect(),
            retained: 0,
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::new());
    static OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
    static HITS: Cell<u64> = const { Cell::new(0) };
    static MISSES: Cell<u64> = const { Cell::new(0) };
}

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("IBRAR_SCRATCH") {
        Ok(v) => v.trim() != "0",
        Err(_) => true,
    })
}

/// Whether checkouts on the current thread go through the pool: the
/// innermost [`with_enabled`] override if one is active, else
/// `IBRAR_SCRATCH` (anything but `0` enables, default on).
pub fn enabled() -> bool {
    OVERRIDE.with(Cell::get).unwrap_or_else(env_enabled)
}

/// RAII guard restoring the previous enable override on drop.
#[derive(Debug)]
pub struct ScratchScope {
    prev: Option<bool>,
}

impl Drop for ScratchScope {
    fn drop(&mut self) {
        OVERRIDE.with(|o| o.set(self.prev));
    }
}

/// Overrides [`enabled`] for the current thread until the returned guard is
/// dropped. Nests like [`crate::parallel::with_threads`].
#[must_use = "the override ends when the guard drops"]
pub fn with_enabled(on: bool) -> ScratchScope {
    let prev = OVERRIDE.with(|o| o.replace(Some(on)));
    ScratchScope { prev }
}

/// `ceil(log2(len.max(1)))` — the class a checkout of `len` draws from.
fn class_for_len(len: usize) -> usize {
    len.max(1).next_power_of_two().trailing_zeros() as usize
}

/// `floor(log2(cap))` — the class a buffer of capacity `cap` files under,
/// chosen so every stored buffer satisfies `capacity ≥ 2^class`.
fn class_for_cap(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

fn checkout(len: usize) -> Option<Vec<f32>> {
    let class = class_for_len(len);
    if class > MAX_CLASS {
        return None;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let buf = pool.classes[class].pop()?;
        pool.retained -= buf.capacity();
        Some(buf)
    })
}

fn note(hit: bool) {
    if hit {
        HITS.with(|c| c.set(c.get() + 1));
        tel::counter("alloc.pool.hit", 1);
    } else {
        MISSES.with(|c| c.set(c.get() + 1));
        tel::counter("alloc.pool.miss", 1);
    }
}

/// Checks out a zeroed vector of exactly `len` elements — behaviorally
/// identical to `vec![0.0; len]`, but backed by a pooled allocation when one
/// of sufficient capacity is available.
pub fn take(len: usize) -> Vec<f32> {
    if !enabled() {
        return vec![0.0; len];
    }
    match checkout(len) {
        Some(mut buf) => {
            note(true);
            buf.clear();
            buf.resize(len, 0.0);
            buf
        }
        None => {
            note(false);
            let mut buf = Vec::with_capacity(1usize << class_for_len(len).min(MAX_CLASS + 1));
            buf.resize(len, 0.0);
            buf
        }
    }
}

/// Checks out an **empty** vector with capacity ≥ `len` — behaviorally
/// identical to `Vec::with_capacity(len)` for callers that fill by pushing
/// or extending.
pub fn take_raw(len: usize) -> Vec<f32> {
    if !enabled() {
        return Vec::with_capacity(len);
    }
    match checkout(len) {
        Some(mut buf) => {
            note(true);
            buf.clear();
            buf
        }
        None => {
            note(false);
            Vec::with_capacity(1usize << class_for_len(len).min(MAX_CLASS + 1))
        }
    }
}

/// A pooled copy of `src` — behaviorally identical to `src.to_vec()`.
pub fn vec_from_slice(src: &[f32]) -> Vec<f32> {
    let mut buf = take_raw(src.len());
    buf.extend_from_slice(src);
    buf
}

/// Returns a buffer to the current thread's pool (called by `Tensor::drop`).
/// Buffers that would exceed the per-class or total retention bounds are
/// simply freed.
pub fn recycle(buf: Vec<f32>) {
    let cap = buf.capacity();
    if cap == 0 || !enabled() {
        return;
    }
    let class = class_for_cap(cap);
    if class > MAX_CLASS {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.classes[class].len() >= MAX_PER_CLASS || pool.retained + cap > MAX_RETAINED {
            return;
        }
        pool.retained += cap;
        pool.classes[class].push(buf);
    });
}

/// Frees every buffer retained by the current thread's pool.
pub fn clear() {
    POOL.with(|p| *p.borrow_mut() = Pool::new());
}

/// Lifetime `(hits, misses)` checkout totals for the current thread
/// (counted whether or not telemetry is enabled).
pub fn stats() -> (u64, u64) {
    (HITS.with(Cell::get), MISSES.with(Cell::get))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_and_sized() {
        let _g = with_enabled(true);
        clear();
        for len in [0, 1, 7, 64, 100] {
            let buf = take(len);
            assert_eq!(buf.len(), len);
            assert!(buf.iter().all(|&v| v == 0.0));
            recycle(buf);
        }
    }

    #[test]
    fn recycled_buffer_is_reused_and_rezeroed() {
        let _g = with_enabled(true);
        clear();
        let (h0, _) = stats();
        let mut buf = take(100);
        buf.iter_mut().for_each(|v| *v = 7.0);
        let ptr = buf.as_ptr();
        recycle(buf);
        let again = take(80); // same class (64 < len ≤ 128)
        assert_eq!(again.as_ptr(), ptr, "pooled allocation should be reused");
        assert!(again.iter().all(|&v| v == 0.0), "must come back zeroed");
        let (h1, _) = stats();
        assert_eq!(h1 - h0, 1);
    }

    #[test]
    fn class_bounds_hold() {
        assert_eq!(class_for_len(1), 0);
        assert_eq!(class_for_len(2), 1);
        assert_eq!(class_for_len(3), 2);
        assert_eq!(class_for_len(64), 6);
        assert_eq!(class_for_len(65), 7);
        assert_eq!(class_for_cap(64), 6);
        assert_eq!(class_for_cap(127), 6);
        // Every stored buffer must satisfy the take-side capacity guarantee.
        for len in 1..200usize {
            let cap = len.next_power_of_two();
            assert!(cap >= len && class_for_cap(cap) == class_for_len(len));
        }
    }

    #[test]
    fn disabled_pool_never_retains() {
        let _g = with_enabled(false);
        clear();
        let buf = take(64);
        let ptr = buf.as_ptr();
        recycle(buf);
        // recycle under disabled drops the buffer; a fresh take may or may
        // not land on the same address, but the pool itself must be empty.
        POOL.with(|p| assert_eq!(p.borrow().retained, 0));
        let _ = ptr;
    }

    #[test]
    fn retention_limits_are_enforced() {
        let _g = with_enabled(true);
        clear();
        for _ in 0..(MAX_PER_CLASS + 10) {
            recycle(Vec::with_capacity(64));
        }
        POOL.with(|p| {
            let pool = p.borrow();
            assert!(pool.classes[6].len() <= MAX_PER_CLASS);
            assert!(pool.retained <= MAX_RETAINED);
        });
        clear();
        POOL.with(|p| assert_eq!(p.borrow().retained, 0));
    }

    #[test]
    fn take_raw_is_empty_with_capacity() {
        let _g = with_enabled(true);
        clear();
        let buf = take_raw(33);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 33);
        let copy = vec_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(copy, vec![1.0, 2.0, 3.0]);
    }
}
