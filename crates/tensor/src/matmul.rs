//! Matrix multiplication kernels.
//!
//! A cache-tiled, `ikj`-ordered kernel with a row-parallel path (via
//! [`crate::parallel`]) for large products. Output rows are split into
//! contiguous chunks and each chunk's accumulation order matches the serial
//! kernel, so results are bitwise identical for any thread count. Inner
//! loops are the fixed-order 8-lane kernels from [`crate::simd`] and output
//! buffers come from the [`crate::scratch`] pool.
//!
//! # Tiling and the numeric contract
//!
//! [`matmul`](Tensor::matmul) blocks over all three of i/j/k
//! ([`BLOCK_I`]/[`BLOCK_J`]/[`BLOCK_K`]) so the active B tile
//! (`BLOCK_K × BLOCK_J` = 16 KiB) lives in L1 and the output tile
//! (`BLOCK_I × BLOCK_J` = 8 KiB) stays resident while every k-block streams
//! through it — but only once B itself outgrows L1
//! ([`TILE_MIN_B_ELEMS`]); a cache-resident B takes the untiled
//! full-row-AXPY walk, which produces the same bits in the same per-element
//! order without the short-AXPY overhead. [`matmul_nt`](Tensor::matmul_nt) (the conv-forward
//! workhorse) tiles B rows in groups of [`NT_TILE_J`] so the tile is reused
//! across every output row of a chunk instead of streaming all of B per
//! row. Neither tiling changes a single bit of output: each output element
//! still accumulates its k-products in ascending-k order (`matmul`) or in
//! one full-length [`simd::dot8`] call (`matmul_nt`), which are pure
//! functions of the operands — the tile loops only reorder *which element*
//! is updated next, never the order of adds *within* an element. The
//! bitwise goldens therefore hold unchanged.
//!
//! Correctness of the blocked kernel is checked against a naive triple loop
//! in the tests and by property tests; order-preservation is pinned by
//! bitwise tests against literal reference loops.

use crate::{backend, parallel, shape, simd, Result, Tensor, TensorError};

/// Cache block edge (in elements) for output rows (i dimension).
const BLOCK_I: usize = 32;

/// Cache block edge (in elements) for output columns (j dimension).
const BLOCK_J: usize = 64;

/// Cache block edge (in elements) for the reduction (k) dimension.
const BLOCK_K: usize = 64;

/// B-row tile for [`Tensor::matmul_nt`]: how many rhs rows are kept hot
/// while a chunk of output rows is produced.
const NT_TILE_J: usize = 16;

/// B footprint (`k·n`, in f32 elements) below which the serial kernel skips
/// i/j tiling. When all of B fits in L1 (8 Ki elements = 32 KiB) alongside
/// one output row there is nothing for the tiles to keep resident — the
/// j-split only shortens every AXPY (a ragged 16-wide tail pays full
/// per-call overhead), measured as ~8% on the train-step/PGD medians at
/// VggMini shapes. Above the threshold the tiled walk wins and the
/// per-element add order is identical either way (see module docs).
const TILE_MIN_B_ELEMS: usize = 8 * 1024;

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// The parallel path is gated on total work `m·n·k` via
    /// [`parallel::threads_for`] — not on output size alone, so
    /// deep-reduction products like `[8, 4096] × [4096, 16]` fan out too.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices,
    /// [`TensorError::MatmulDimMismatch`] when the inner dimensions
    /// disagree, and [`TensorError::ElementOverflow`] when `m·n` exceeds
    /// `usize`.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.shape_obj().expect_rank(2, "matmul")?;
        rhs.shape_obj().expect_rank(2, "matmul")?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: k,
                rhs_rows: k2,
            });
        }
        let be = backend::current();
        let mut out = be.alloc(shape::checked_volume(&[m, n], "matmul")?);
        be.gemm(self.data(), rhs.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// `self × rhsᵀ` without materializing the transpose: `[m, k] × [n, k]ᵀ → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Tensor::matmul`].
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        self.shape_obj().expect_rank(2, "matmul_nt")?;
        rhs.shape_obj().expect_rank(2, "matmul_nt")?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (rhs.shape()[0], rhs.shape()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: k,
                rhs_rows: k2,
            });
        }
        let be = backend::current();
        let mut out = be.alloc(shape::checked_volume(&[m, n], "matmul_nt")?);
        be.gemm_nt(self.data(), rhs.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ × rhs` without materializing the transpose: `[k, m]ᵀ × [k, n] → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Tensor::matmul`].
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        self.shape_obj().expect_rank(2, "matmul_tn")?;
        rhs.shape_obj().expect_rank(2, "matmul_tn")?;
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: m,
                rhs_rows: k2,
            });
        }
        let be = backend::current();
        let mut out = be.alloc(shape::checked_volume(&[m, n], "matmul_tn")?);
        be.gemm_tn(self.data(), rhs.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product: `[m, k] × [k] → [m]`.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Tensor::matmul`].
    pub fn matvec(&self, rhs: &Tensor) -> Result<Tensor> {
        self.shape_obj().expect_rank(2, "matvec")?;
        rhs.shape_obj().expect_rank(1, "matvec")?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        if rhs.len() != k {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: k,
                rhs_rows: rhs.len(),
            });
        }
        // The output length is the single extent m (no product to overflow),
        // but route through the same checked-sizing guard for uniformity.
        let be = backend::current();
        let mut out = be.alloc(shape::checked_volume(&[m], "matvec")?);
        be.matvec(self.data(), rhs.data(), &mut out, m, k);
        Tensor::from_vec(out, &[m])
    }

    /// Dot product of two rank-1 tensors.
    ///
    /// # Errors
    ///
    /// Returns an error when lengths differ or ranks are not 1.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32> {
        self.shape_obj().expect_rank(1, "dot")?;
        rhs.shape_obj().expect_same(self.shape_obj(), "dot")?;
        Ok(backend::current().dot(self.data(), rhs.data()))
    }
}

/// Tuned GEMM entry point for [`crate::backend::CpuTuned`]: work-gated
/// parallel row split over the cache-tiled kernel.
pub(crate) fn gemm_tuned(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = parallel::threads_for(m.saturating_mul(n).saturating_mul(k));
    if threads > 1 && m >= 2 {
        matmul_parallel(a, b, out, k, n, threads);
    } else {
        matmul_block(a, b, out, m, k, n);
    }
}

/// Tuned `A × Bᵀ` entry point (`b` in `[n, k]` layout).
///
/// Each output row is an independent batch of dot products; rows split
/// across threads (this is the linear-forward workhorse). Within a chunk, B
/// rows are tiled in groups of [`NT_TILE_J`] so a tile (`NT_TILE_J × k`
/// floats) is reused across every output row of the chunk, and consumed in
/// blocks of eight ([`simd::dot8_x8`], then `dot8_x4`/`dot8` cleanup) so
/// independent accumulator chains overlap in the pipeline. Each element is
/// still one full-length `dot8`-ordered reduction — a pure function of its
/// operands — so the row split, the tile loop, and the multi-output blocks
/// all stay bitwise thread-count invariant.
pub(crate) fn gemm_nt_tuned(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = parallel::threads_for(m.saturating_mul(n).saturating_mul(k));
    parallel::par_chunks_mut(out, n, threads, |rows, region| {
        for j0 in (0..n).step_by(NT_TILE_J) {
            let j1 = (j0 + NT_TILE_J).min(n);
            for (ii, orow) in region.chunks_mut(n).enumerate() {
                let i = rows.start + ii;
                let arow = &a[i * k..(i + 1) * k];
                let br = |j: usize| &b[j * k..(j + 1) * k];
                let mut j = j0;
                while j + 8 <= j1 {
                    let bs: [&[f32]; 8] = core::array::from_fn(|r| br(j + r));
                    let vals = simd::dot8_x8(arow, bs);
                    orow[j..j + 8].copy_from_slice(&vals);
                    j += 8;
                }
                while j + 4 <= j1 {
                    let bs: [&[f32]; 4] = core::array::from_fn(|r| br(j + r));
                    let vals = simd::dot8_x4(arow, bs);
                    orow[j..j + 4].copy_from_slice(&vals);
                    j += 4;
                }
                for (j, o) in (j..j1).zip(orow[j..j1].iter_mut()) {
                    *o = simd::dot8(arow, br(j));
                }
            }
        }
    });
}

/// Tuned `Aᵀ × B` entry point (`a` in `[k, m]` layout).
///
/// `ikj` order over the transposed access pattern: accumulate row i of out
/// from column i of a. Row chunks keep the per-row accumulation order
/// (t ascending) identical to the serial kernel; the AXPY body is
/// element-wise, so unrolling it changes no bits.
pub(crate) fn gemm_tn_tuned(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = parallel::threads_for(m.saturating_mul(n).saturating_mul(k));
    parallel::par_chunks_mut(out, n, threads, |rows, region| {
        for t in 0..k {
            let arow = &a[t * m..(t + 1) * m];
            let brow = &b[t * n..(t + 1) * n];
            for (ii, orow) in region.chunks_mut(n).enumerate() {
                let av = arow[rows.start + ii];
                if av == 0.0 {
                    continue;
                }
                simd::axpy8(av, brow, orow);
            }
        }
    });
}

/// Tuned matrix–vector entry point: rows split across threads exactly like
/// `gemm_nt` with `n = 1`.
pub(crate) fn matvec_tuned(a: &[f32], v: &[f32], out: &mut [f32], m: usize, k: usize) {
    let threads = parallel::threads_for(m.saturating_mul(k));
    parallel::par_items_mut(out, 1, threads, |i, o| {
        o[0] = simd::dot8(&a[i * k..(i + 1) * k], v);
    });
}

/// Cache-tiled serial kernel, `i k j` loop order inside each tile so the
/// inner loop is a contiguous AXPY over an output-row segment.
///
/// Tile walk: j-tiles outermost (output column bands), then i-tiles, then
/// k-blocks ascending, then rows within the i-tile. For any fixed output
/// element `(i, j)` the k-blocks are visited in ascending order and `t`
/// ascends within each block, so the element's adds happen in exactly the
/// order of the untiled `ikj` kernel — bitwise identical output.
fn matmul_block(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if k.saturating_mul(n) <= TILE_MIN_B_ELEMS {
        return matmul_block_resident(a, b, out, m, k, n);
    }
    for j0 in (0..n).step_by(BLOCK_J) {
        let j1 = (j0 + BLOCK_J).min(n);
        for i0 in (0..m).step_by(BLOCK_I) {
            let i1 = (i0 + BLOCK_I).min(m);
            for k0 in (0..k).step_by(BLOCK_K) {
                let k1 = (k0 + BLOCK_K).min(k);
                for i in i0..i1 {
                    let orow = &mut out[i * n + j0..i * n + j1];
                    for t in k0..k1 {
                        let av = a[i * k + t];
                        if av == 0.0 {
                            continue;
                        }
                        simd::axpy8(av, &b[t * n + j0..t * n + j1], orow);
                    }
                }
            }
        }
    }
}

/// Untiled `k0‑i‑t` kernel for cache-resident B: every AXPY spans the full
/// output row. For any element `(i, j)` the k-blocks still ascend and `t`
/// ascends within each block, so the add order — and every output bit —
/// matches the tiled walk above.
fn matmul_block_resident(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for k0 in (0..k).step_by(BLOCK_K) {
        let k1 = (k0 + BLOCK_K).min(k);
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            for t in k0..k1 {
                let av = a[i * k + t];
                if av == 0.0 {
                    continue;
                }
                simd::axpy8(av, &b[t * n..(t + 1) * n], orow);
            }
        }
    }
}

/// Splits output rows across the persistent worker pool. Each row chunk
/// runs the same tiled kernel as the serial path over its own rows, so the
/// per-element accumulation order — and therefore every output bit — is
/// independent of the thread count.
fn matmul_parallel(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize, threads: usize) {
    parallel::par_chunks_mut(out, n, threads, |rows, out_chunk| {
        let a_slice = &a[rows.start * k..rows.end * k];
        matmul_block(a_slice, b, out_chunk, rows.len(), k, n);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        Tensor::from_fn(&[m, n], |idx| {
            (0..k)
                .map(|t| a.get(&[idx[0], t]) * b.get(&[t, idx[1]]))
                .sum()
        })
    }

    /// Literal transcription of the untiled `ikj` kernel (k ascending per
    /// element, AXPY skip on zero) — the order the tiled kernel must match
    /// bit for bit.
    fn ref_ikj(a: &Tensor, b: &Tensor) -> Vec<f32> {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let (ad, bd) = (a.data(), b.data());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for t in 0..k {
                let av = ad[i * k + t];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += av * bd[t * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::from_fn(&[7, 5], |i| (i[0] * 5 + i[1]) as f32 * 0.1);
        let b = Tensor::from_fn(&[5, 9], |i| (i[0] as f32 - i[1] as f32) * 0.3);
        let fast = a.matmul(&b).unwrap();
        let slow = naive(&a, &b);
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn tiled_kernel_is_bitwise_untiled_ikj() {
        // Shapes that straddle every tile edge: < 1 tile, exact tiles, and
        // ragged remainders in all of i, j, and k.
        for (m, k, n) in [(3, 5, 4), (32, 64, 64), (45, 70, 130), (70, 129, 65)] {
            let a = Tensor::from_fn(&[m, k], |i| {
                ((i[0] * 31 + i[1] * 7) % 23) as f32 * 0.21 - 2.0
            });
            let b = Tensor::from_fn(&[k, n], |i| {
                ((i[0] * 13 + i[1] * 3) % 19) as f32 * 0.17 - 1.5
            });
            let _serial = parallel::with_threads(1);
            let got = a.matmul(&b).unwrap();
            let want = ref_ikj(&a, &b);
            let bits_equal = got
                .data()
                .iter()
                .zip(&want)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(bits_equal, "tiling reordered adds at ({m},{k},{n})");
        }
    }

    #[test]
    fn nt_tiling_is_bitwise_per_element_dot8() {
        for (m, k, n) in [(3, 9, 5), (20, 40, 33), (17, 64, 70)] {
            let a = Tensor::from_fn(&[m, k], |i| ((i[0] * 17 + i[1]) % 13) as f32 * 0.31 - 1.0);
            let b = Tensor::from_fn(&[n, k], |i| {
                ((i[0] * 7 + i[1] * 5) % 11) as f32 * 0.27 - 1.2
            });
            let _serial = parallel::with_threads(1);
            let got = a.matmul_nt(&b).unwrap();
            let (ad, bd) = (a.data(), b.data());
            for i in 0..m {
                for j in 0..n {
                    let want = simd::dot8(&ad[i * k..(i + 1) * k], &bd[j * k..(j + 1) * k]);
                    assert_eq!(
                        got.data()[i * n + j].to_bits(),
                        want.to_bits(),
                        "element ({i},{j}) of ({m},{k},{n})"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_fn(&[4, 4], |i| (i[0] + 2 * i[1]) as f32);
        let i = Tensor::eye(4);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }

    #[test]
    fn matmul_nt_matches_transpose() {
        let a = Tensor::from_fn(&[3, 4], |i| (i[0] * 4 + i[1]) as f32);
        let b = Tensor::from_fn(&[5, 4], |i| i[0] as f32 * 0.5 - i[1] as f32);
        let expect = a.matmul(&b.transpose().unwrap()).unwrap();
        let got = a.matmul_nt(&b).unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-4);
    }

    #[test]
    fn matmul_tn_matches_transpose() {
        let a = Tensor::from_fn(&[4, 3], |i| (i[0] * 3 + i[1]) as f32 * 0.2);
        let b = Tensor::from_fn(&[4, 5], |i| i[0] as f32 - 0.3 * i[1] as f32);
        let expect = a.transpose().unwrap().matmul(&b).unwrap();
        let got = a.matmul_tn(&b).unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-4);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Force the parallel path with a big output.
        let a = Tensor::from_fn(&[300, 40], |i| ((i[0] * 7 + i[1]) % 13) as f32 * 0.05);
        let b = Tensor::from_fn(&[40, 300], |i| ((i[0] + 3 * i[1]) % 11) as f32 * 0.07);
        let fast = a.matmul(&b).unwrap();
        let slow = naive(&a, &b);
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
    }

    #[test]
    fn deep_k_parallel_is_bitwise_serial() {
        // The old gate tested m·n (128 elements here) against a 64 Ki
        // threshold and would never have parallelized this shape despite
        // its ~512 Ki MACs; the work-based gate does. Pin that the deep-k
        // parallel split is bitwise identical to the serial kernel.
        let a = Tensor::from_fn(&[8, 4096], |i| {
            ((i[0] * 97 + i[1] * 31) % 29) as f32 * 0.13 - 1.7
        });
        let b = Tensor::from_fn(&[4096, 16], |i| {
            ((i[0] * 11 + i[1] * 53) % 31) as f32 * 0.09 - 1.3
        });
        let serial = {
            let _g = parallel::with_threads(1);
            a.matmul(&b).unwrap()
        };
        for threads in [2, 4, 7] {
            let _g = parallel::with_threads(threads);
            let par = a.matmul(&b).unwrap();
            let bits_equal = par
                .data()
                .iter()
                .zip(serial.data())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(bits_equal, "deep-k split diverged at {threads} threads");
        }
        // And sanity-check the values against the naive reference.
        assert!(serial.max_abs_diff(&naive(&a, &b)).unwrap() < 1e-2);
    }

    #[test]
    fn matvec_and_dot() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let v = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        assert_eq!(a.matvec(&v).unwrap().data(), &[-1.0, -1.0]);
        assert_eq!(v.dot(&v).unwrap(), 2.0);
    }
}
