//! Matrix multiplication kernels.
//!
//! A cache-blocked, `ikj`-ordered kernel with a row-parallel path (via
//! [`crate::parallel`]) for large products. Output rows are split into
//! contiguous chunks and each chunk's accumulation order matches the serial
//! kernel, so results are bitwise identical for any thread count. Inner
//! loops are the fixed-order 8-lane kernels from [`crate::simd`] and output
//! buffers come from the [`crate::scratch`] pool. Correctness of the blocked
//! kernel is checked against a naive triple loop in the tests and by
//! property tests.

use crate::{parallel, scratch, simd, Result, Tensor, TensorError};

/// Below this many output elements the parallel path is not worth spawning
/// threads for.
const PARALLEL_THRESHOLD: usize = 64 * 1024;

/// Cache block edge (in elements) for the k dimension.
const BLOCK_K: usize = 64;

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::MatmulDimMismatch`] when the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.shape_obj().expect_rank(2, "matmul")?;
        rhs.shape_obj().expect_rank(2, "matmul")?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: k,
                rhs_rows: k2,
            });
        }
        let mut out = scratch::take(m * n);
        if m * n >= PARALLEL_THRESHOLD && m >= 2 {
            matmul_parallel(self.data(), rhs.data(), &mut out, k, n);
        } else {
            matmul_block(self.data(), rhs.data(), &mut out, m, k, n);
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self × rhsᵀ` without materializing the transpose: `[m, k] × [n, k]ᵀ → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Tensor::matmul`].
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        self.shape_obj().expect_rank(2, "matmul_nt")?;
        rhs.shape_obj().expect_rank(2, "matmul_nt")?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (rhs.shape()[0], rhs.shape()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: k,
                rhs_rows: k2,
            });
        }
        let mut out = scratch::take(m * n);
        let a = self.data();
        let b = rhs.data();
        // Each output row is an independent batch of dot products; split
        // rows across threads (this is the conv-forward workhorse:
        // `im2col(x) × Wᵀ`). The 8-lane dot kernel's accumulation order is a
        // pure function of the operands, so the split stays bitwise
        // thread-count invariant.
        let threads = parallel::threads_for(m.saturating_mul(n).saturating_mul(k));
        parallel::par_items_mut(&mut out, n, threads, |i, orow| {
            let arow = &a[i * k..(i + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = simd::dot8(arow, &b[j * k..(j + 1) * k]);
            }
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ × rhs` without materializing the transpose: `[k, m]ᵀ × [k, n] → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Tensor::matmul`].
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        self.shape_obj().expect_rank(2, "matmul_tn")?;
        rhs.shape_obj().expect_rank(2, "matmul_tn")?;
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: m,
                rhs_rows: k2,
            });
        }
        let mut out = scratch::take(m * n);
        let a = self.data();
        let b = rhs.data();
        // ikj order over the transposed access pattern: accumulate row i of
        // out from column i of a. Row chunks keep the per-row accumulation
        // order (t ascending) identical to the serial kernel; the AXPY body
        // is element-wise, so unrolling it changes no bits.
        let threads = parallel::threads_for(m.saturating_mul(n).saturating_mul(k));
        parallel::par_chunks_mut(&mut out, n, threads, |rows, region| {
            for t in 0..k {
                let arow = &a[t * m..(t + 1) * m];
                let brow = &b[t * n..(t + 1) * n];
                for (ii, orow) in region.chunks_mut(n).enumerate() {
                    let av = arow[rows.start + ii];
                    if av == 0.0 {
                        continue;
                    }
                    simd::axpy8(av, brow, orow);
                }
            }
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product: `[m, k] × [k] → [m]`.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Tensor::matmul`].
    pub fn matvec(&self, rhs: &Tensor) -> Result<Tensor> {
        self.shape_obj().expect_rank(2, "matvec")?;
        rhs.shape_obj().expect_rank(1, "matvec")?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        if rhs.len() != k {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: k,
                rhs_rows: rhs.len(),
            });
        }
        let mut out = scratch::take(m);
        let a = self.data();
        let v = rhs.data();
        // Rows split across threads exactly like matmul_nt with n = 1.
        let threads = parallel::threads_for(m.saturating_mul(k));
        parallel::par_items_mut(&mut out, 1, threads, |i, o| {
            o[0] = simd::dot8(&a[i * k..(i + 1) * k], v);
        });
        Tensor::from_vec(out, &[m])
    }

    /// Dot product of two rank-1 tensors.
    ///
    /// # Errors
    ///
    /// Returns an error when lengths differ or ranks are not 1.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32> {
        self.shape_obj().expect_rank(1, "dot")?;
        rhs.shape_obj().expect_same(self.shape_obj(), "dot")?;
        Ok(simd::dot8(self.data(), rhs.data()))
    }
}

/// Blocked serial kernel, `i k j` loop order so the inner loop is a
/// contiguous AXPY over the output row.
fn matmul_block(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for k0 in (0..k).step_by(BLOCK_K) {
        let k1 = (k0 + BLOCK_K).min(k);
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            for t in k0..k1 {
                let av = a[i * k + t];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[t * n..(t + 1) * n];
                simd::axpy8(av, brow, orow);
            }
        }
    }
}

/// Splits output rows across scoped threads. The thread budget is
/// work-clamped via [`parallel::threads_for`] like every other split in the
/// workspace, so products just past `PARALLEL_THRESHOLD` no longer
/// oversubscribe (`IBRAR_THREADS` and `with_threads` still govern it).
fn matmul_parallel(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    let m = out.len() / n.max(1);
    let threads = parallel::threads_for(m.saturating_mul(n).saturating_mul(k));
    parallel::par_chunks_mut(out, n, threads, |rows, out_chunk| {
        let a_slice = &a[rows.start * k..rows.end * k];
        matmul_block(a_slice, b, out_chunk, rows.len(), k, n);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        Tensor::from_fn(&[m, n], |idx| {
            (0..k)
                .map(|t| a.get(&[idx[0], t]) * b.get(&[t, idx[1]]))
                .sum()
        })
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::from_fn(&[7, 5], |i| (i[0] * 5 + i[1]) as f32 * 0.1);
        let b = Tensor::from_fn(&[5, 9], |i| (i[0] as f32 - i[1] as f32) * 0.3);
        let fast = a.matmul(&b).unwrap();
        let slow = naive(&a, &b);
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_fn(&[4, 4], |i| (i[0] + 2 * i[1]) as f32);
        let i = Tensor::eye(4);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }

    #[test]
    fn matmul_nt_matches_transpose() {
        let a = Tensor::from_fn(&[3, 4], |i| (i[0] * 4 + i[1]) as f32);
        let b = Tensor::from_fn(&[5, 4], |i| i[0] as f32 * 0.5 - i[1] as f32);
        let expect = a.matmul(&b.transpose().unwrap()).unwrap();
        let got = a.matmul_nt(&b).unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-4);
    }

    #[test]
    fn matmul_tn_matches_transpose() {
        let a = Tensor::from_fn(&[4, 3], |i| (i[0] * 3 + i[1]) as f32 * 0.2);
        let b = Tensor::from_fn(&[4, 5], |i| i[0] as f32 - 0.3 * i[1] as f32);
        let expect = a.transpose().unwrap().matmul(&b).unwrap();
        let got = a.matmul_tn(&b).unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-4);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Force the parallel path with a big output.
        let a = Tensor::from_fn(&[300, 40], |i| ((i[0] * 7 + i[1]) % 13) as f32 * 0.05);
        let b = Tensor::from_fn(&[40, 300], |i| ((i[0] + 3 * i[1]) % 11) as f32 * 0.07);
        let fast = a.matmul(&b).unwrap();
        let slow = naive(&a, &b);
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
    }

    #[test]
    fn matvec_and_dot() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let v = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        assert_eq!(a.matvec(&v).unwrap().data(), &[-1.0, -1.0]);
        assert_eq!(v.dot(&v).unwrap(), 2.0);
    }
}
