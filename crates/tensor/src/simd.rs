//! SIMD-width inner kernels: fixed 8-lane multi-accumulator loops.
//!
//! The scalar single-accumulator dot products that used to sit at the bottom
//! of `matmul_nt`, `matvec`, `median_sigma`, and `pairwise_sqdist` serialize
//! on the ~4-cycle latency of each fused multiply-add: every iteration waits
//! for the previous accumulator update. Splitting the reduction across 8
//! independent lane accumulators breaks that chain and hands LLVM a loop it
//! autovectorizes to full register width.
//!
//! # Fixed lane-reduction order
//!
//! Reassociating a float reduction changes its rounding, so the order here
//! is part of the numeric contract (DESIGN.md §12):
//!
//! 1. the input is consumed in 8-element chunks (`chunks_exact(8)`); chunk
//!    `c` adds element `8c + l` into lane `l`;
//! 2. lanes reduce as the fixed tree
//!    `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`;
//! 3. the `< 8` tail elements accumulate serially into one scalar that is
//!    added last.
//!
//! The result is a pure function of the input slices — independent of
//! thread count, chunk boundaries, and call site — so determinism across
//! `IBRAR_THREADS` is preserved even though the *value* differs from the
//! old serial order (hence the one-time golden re-bless in PR 5).
//!
//! [`axpy8`] is element-wise (no cross-element reduction), so it is bitwise
//! identical to the plain `y[i] += a * x[i]` loop it replaces.

/// Lane width of the multi-accumulator kernels.
pub const LANES: usize = 8;

/// Reduces 8 lane accumulators in the documented fixed tree order.
#[inline(always)]
fn reduce_lanes(l: [f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Dot product `Σ a[i]·b[i]` in the fixed 8-lane accumulation order.
///
/// # Panics
///
/// Panics in debug builds when the slices have different lengths.
#[inline]
pub fn dot8(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let ac = a.chunks_exact(LANES);
    let bc = b.chunks_exact(LANES);
    let (atail, btail) = (ac.remainder(), bc.remainder());
    for (ca, cb) in ac.zip(bc) {
        for l in 0..LANES {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in atail.iter().zip(btail) {
        tail += x * y;
    }
    reduce_lanes(lanes) + tail
}

/// Squared Euclidean distance `Σ (a[i]−b[i])²` in the fixed 8-lane
/// accumulation order.
///
/// # Panics
///
/// Panics in debug builds when the slices have different lengths.
#[inline]
pub fn sqdist8(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let ac = a.chunks_exact(LANES);
    let bc = b.chunks_exact(LANES);
    let (atail, btail) = (ac.remainder(), bc.remainder());
    for (ca, cb) in ac.zip(bc) {
        for l in 0..LANES {
            let d = ca[l] - cb[l];
            lanes[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in atail.iter().zip(btail) {
        let d = x - y;
        tail += d * d;
    }
    reduce_lanes(lanes) + tail
}

/// `y[i] += a · x[i]` over equal-length slices. Element-wise, therefore
/// bitwise identical to the scalar loop for every input.
///
/// # Panics
///
/// Panics in debug builds when the slices have different lengths.
#[inline]
pub fn axpy8(a: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    // Element-wise, so no lane structure is needed for determinism; a plain
    // indexed loop over length-equalized slices is the shape LLVM
    // vectorizes best here (explicit 8-chunking measurably *defeats* its
    // cost model on the AXPY read-modify-write pattern).
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &mut y[..n]);
    for i in 0..n {
        y[i] += a * x[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..n).map(f).collect()
    }

    #[test]
    fn dot8_matches_documented_order_exactly() {
        // Reference: a literal transcription of the documented order.
        for n in [0, 1, 7, 8, 9, 16, 37, 64] {
            let a = seq(n, |i| ((i * 31 + 7) % 17) as f32 * 0.37 - 2.0);
            let b = seq(n, |i| ((i * 13 + 3) % 19) as f32 * 0.23 - 1.5);
            let mut lanes = [0.0f32; 8];
            let chunks = n / 8;
            for c in 0..chunks {
                for l in 0..8 {
                    lanes[l] += a[c * 8 + l] * b[c * 8 + l];
                }
            }
            let mut tail = 0.0f32;
            for i in chunks * 8..n {
                tail += a[i] * b[i];
            }
            let want = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
                + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
                + tail;
            assert_eq!(dot8(&a, &b).to_bits(), want.to_bits(), "n={n}");
        }
    }

    #[test]
    fn sqdist8_agrees_with_dot_identity() {
        let a = seq(23, |i| i as f32 * 0.11);
        let b = seq(23, |i| (23 - i) as f32 * 0.07);
        let d: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        assert_eq!(sqdist8(&a, &b).to_bits(), dot8(&d, &d).to_bits());
        assert_eq!(sqdist8(&a, &a), 0.0);
    }

    #[test]
    fn axpy8_is_bitwise_scalar_loop() {
        for n in [0, 3, 8, 21, 40] {
            let x = seq(n, |i| ((i * 7) % 11) as f32 * 0.3 - 1.0);
            let base = seq(n, |i| ((i * 5) % 13) as f32 * 0.21 - 1.2);
            let a = 0.77f32;
            let mut fast = base.clone();
            axpy8(a, &x, &mut fast);
            let mut slow = base.clone();
            for i in 0..n {
                slow[i] += a * x[i];
            }
            let fb: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
            let sb: Vec<u32> = slow.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, sb, "n={n}");
        }
    }

    #[test]
    fn dot8_close_to_f64_reference() {
        let a = seq(1000, |i| (i as f32 * 0.01).sin());
        let b = seq(1000, |i| (i as f32 * 0.02).cos());
        let exact: f64 = a.iter().zip(&b).map(|(x, y)| *x as f64 * *y as f64).sum();
        assert!((dot8(&a, &b) as f64 - exact).abs() < 1e-3);
    }
}
