//! SIMD-width inner kernels: fixed 8-lane multi-accumulator loops.
//!
//! The scalar single-accumulator dot products that used to sit at the bottom
//! of `matmul_nt`, `matvec`, `median_sigma`, and `pairwise_sqdist` serialize
//! on the ~4-cycle latency of each fused multiply-add: every iteration waits
//! for the previous accumulator update. Splitting the reduction across 8
//! independent lane accumulators breaks that chain and hands LLVM a loop it
//! autovectorizes to full register width.
//!
//! # Fixed lane-reduction order
//!
//! Reassociating a float reduction changes its rounding, so the order here
//! is part of the numeric contract (DESIGN.md §12):
//!
//! 1. the input is consumed in 8-element chunks (`chunks_exact(8)`); chunk
//!    `c` adds element `8c + l` into lane `l`;
//! 2. lanes reduce as the fixed tree
//!    `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`;
//! 3. the `< 8` tail elements accumulate serially into one scalar that is
//!    added last.
//!
//! The result is a pure function of the input slices — independent of
//! thread count, chunk boundaries, and call site — so determinism across
//! `IBRAR_THREADS` is preserved even though the *value* differs from the
//! old serial order (hence the one-time golden re-bless in PR 5).
//!
//! [`axpy8`] is element-wise (no cross-element reduction), so it is bitwise
//! identical to the plain `y[i] += a * x[i]` loop it replaces.
//!
//! # Runtime AVX2 dispatch
//!
//! The workspace builds for the baseline `x86-64` target (SSE2), where the
//! autovectorizer can only give the lane loops 4-wide registers. On hosts
//! with AVX2 the kernels dispatch at runtime (`is_x86_feature_detected!`,
//! cached in a `OnceLock`) to explicit 8-wide intrinsic bodies. This does
//! **not** loosen the numeric contract: one `__m256` register *is* the
//! 8-lane accumulator array — `vmulps`/`vaddps` perform the identical IEEE
//! single-precision operation per lane as the scalar loop, the tail stays
//! scalar, and the final reduction uses the same fixed tree — so the AVX2
//! and portable paths are bitwise identical on every input (pinned by
//! `dot8_matches_documented_order_exactly`, which always exercises the
//! dispatched path against a literal transcription). No FMA is used:
//! contracting `mul`+`add` would change the rounding.

/// Lane width of the multi-accumulator kernels.
pub const LANES: usize = 8;

/// Whether runtime dispatch to the AVX2 kernel bodies is active (detection
/// result is process-wide and cached). Always `false` off x86-64.
pub fn have_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{reduce_lanes, LANES};
    use core::arch::x86_64::*;

    /// 8-wide `dot8` body: one `__m256` holds the 8 lane accumulators.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support and `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot8(a: &[f32], b: &[f32]) -> f32 {
        let chunks = a.len() / LANES;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let va = _mm256_loadu_ps(ap.add(c * LANES));
            let vb = _mm256_loadu_ps(bp.add(c * LANES));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut tail = 0.0f32;
        for i in chunks * LANES..a.len() {
            tail += *ap.add(i) * *bp.add(i);
        }
        reduce_lanes(lanes) + tail
    }

    /// 8-wide `dot8_x4` body: four independent `__m256` accumulators, one
    /// per output, so the four add-chains overlap in the pipeline. Each
    /// output's per-lane operation sequence is exactly [`dot8`]'s.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support and that every `b[r]` has
    /// `x.len()` elements.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot8_x4(x: &[f32], b: [&[f32]; 4]) -> [f32; 4] {
        let chunks = x.len() / LANES;
        let xp = x.as_ptr();
        let bp = [b[0].as_ptr(), b[1].as_ptr(), b[2].as_ptr(), b[3].as_ptr()];
        let mut acc = [_mm256_setzero_ps(); 4];
        for c in 0..chunks {
            let vx = _mm256_loadu_ps(xp.add(c * LANES));
            for r in 0..4 {
                let vb = _mm256_loadu_ps(bp[r].add(c * LANES));
                acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(vx, vb));
            }
        }
        let mut out = [0.0f32; 4];
        for r in 0..4 {
            let mut lanes = [0.0f32; LANES];
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc[r]);
            let mut tail = 0.0f32;
            for i in chunks * LANES..x.len() {
                tail += *xp.add(i) * *bp[r].add(i);
            }
            out[r] = reduce_lanes(lanes) + tail;
        }
        out
    }

    /// 8-wide `dot8_x8` body: eight independent accumulators. Four chains
    /// keep only one FP-add port busy at 4-cycle latency; eight saturate
    /// both. Per-output lane semantics are exactly [`dot8`]'s.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support and that every `b[r]` has
    /// `x.len()` elements.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot8_x8(x: &[f32], b: [&[f32]; 8]) -> [f32; 8] {
        let chunks = x.len() / LANES;
        let xp = x.as_ptr();
        let mut bp = [core::ptr::null::<f32>(); 8];
        for r in 0..8 {
            bp[r] = b[r].as_ptr();
        }
        let mut acc = [_mm256_setzero_ps(); 8];
        for c in 0..chunks {
            let vx = _mm256_loadu_ps(xp.add(c * LANES));
            for r in 0..8 {
                let vb = _mm256_loadu_ps(bp[r].add(c * LANES));
                acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(vx, vb));
            }
        }
        let mut out = [0.0f32; 8];
        for r in 0..8 {
            let mut lanes = [0.0f32; LANES];
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc[r]);
            let mut tail = 0.0f32;
            for i in chunks * LANES..x.len() {
                tail += *xp.add(i) * *bp[r].add(i);
            }
            out[r] = reduce_lanes(lanes) + tail;
        }
        out
    }

    /// 8-wide `sqdist8` body, same lane semantics as the portable loop.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support and `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sqdist8(a: &[f32], b: &[f32]) -> f32 {
        let chunks = a.len() / LANES;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let va = _mm256_loadu_ps(ap.add(c * LANES));
            let vb = _mm256_loadu_ps(bp.add(c * LANES));
            let d = _mm256_sub_ps(va, vb);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut tail = 0.0f32;
        for i in chunks * LANES..a.len() {
            let d = *ap.add(i) - *bp.add(i);
            tail += d * d;
        }
        reduce_lanes(lanes) + tail
    }
}

/// Reduces 8 lane accumulators in the documented fixed tree order.
#[inline(always)]
fn reduce_lanes(l: [f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Dot product `Σ a[i]·b[i]` in the fixed 8-lane accumulation order.
///
/// # Panics
///
/// Panics in debug builds when the slices have different lengths.
#[inline]
pub fn dot8(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: AVX2 verified at runtime; the body performs the identical
        // per-lane IEEE sequence, so this is a pure speedup (see module docs).
        return unsafe { x86::dot8(a, b) };
    }
    let mut lanes = [0.0f32; LANES];
    let ac = a.chunks_exact(LANES);
    let bc = b.chunks_exact(LANES);
    let (atail, btail) = (ac.remainder(), bc.remainder());
    for (ca, cb) in ac.zip(bc) {
        for l in 0..LANES {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in atail.iter().zip(btail) {
        tail += x * y;
    }
    reduce_lanes(lanes) + tail
}

/// Four dot products of one shared left operand against four right
/// operands: `out[r] = dot8(x, b[r])`, bit for bit.
///
/// A single [`dot8`] is latency-bound — every chunk's `vaddps` waits on the
/// previous one, regardless of register width. Interleaving four
/// *independent* outputs gives the pipeline four overlapping add-chains
/// (≈4× throughput on the gemm-NT and direct-conv hot loops) while leaving
/// each output's per-lane accumulation sequence — and therefore its bits —
/// exactly as documented in the module docs.
///
/// # Panics
///
/// Panics in debug builds when any `b[r]` length differs from `x`.
#[inline]
pub fn dot8_x4(x: &[f32], b: [&[f32]; 4]) -> [f32; 4] {
    debug_assert!(b.iter().all(|r| r.len() == x.len()));
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: AVX2 verified at runtime; per-output lane semantics are
        // identical to dot8 (pinned by `dot8_x4_is_bitwise_dot8_per_output`).
        return unsafe { x86::dot8_x4(x, b) };
    }
    let chunks = x.len() / LANES;
    let mut lanes = [[0.0f32; LANES]; 4];
    for c in 0..chunks {
        let cx = &x[c * LANES..(c + 1) * LANES];
        for r in 0..4 {
            let cb = &b[r][c * LANES..(c + 1) * LANES];
            for l in 0..LANES {
                lanes[r][l] += cx[l] * cb[l];
            }
        }
    }
    let mut out = [0.0f32; 4];
    for r in 0..4 {
        let mut tail = 0.0f32;
        for i in chunks * LANES..x.len() {
            tail += x[i] * b[r][i];
        }
        out[r] = reduce_lanes(lanes[r]) + tail;
    }
    out
}

/// Eight dot products of one shared left operand: `out[r] = dot8(x, b[r])`,
/// bit for bit. Doubles [`dot8_x4`]'s chain count — four add-chains at
/// ~4-cycle latency keep a single FP-add port busy, eight keep two — so
/// this is the preferred block size when the output count allows.
///
/// # Panics
///
/// Panics in debug builds when any `b[r]` length differs from `x`.
#[inline]
pub fn dot8_x8(x: &[f32], b: [&[f32]; 8]) -> [f32; 8] {
    debug_assert!(b.iter().all(|r| r.len() == x.len()));
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: AVX2 verified at runtime; per-output lane semantics are
        // identical to dot8 (pinned by `dot8_x8_is_bitwise_dot8_per_output`).
        return unsafe { x86::dot8_x8(x, b) };
    }
    // Portable fallback: two 4-blocks — 64 scalar accumulators would spill
    // on SSE2's 16 registers, and each output's reduction is a pure
    // function of its own operands either way.
    let lo = dot8_x4(x, [b[0], b[1], b[2], b[3]]);
    let hi = dot8_x4(x, [b[4], b[5], b[6], b[7]]);
    [lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]]
}

/// Squared Euclidean distance `Σ (a[i]−b[i])²` in the fixed 8-lane
/// accumulation order.
///
/// # Panics
///
/// Panics in debug builds when the slices have different lengths.
#[inline]
pub fn sqdist8(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: AVX2 verified at runtime; identical per-lane IEEE sequence.
        return unsafe { x86::sqdist8(a, b) };
    }
    let mut lanes = [0.0f32; LANES];
    let ac = a.chunks_exact(LANES);
    let bc = b.chunks_exact(LANES);
    let (atail, btail) = (ac.remainder(), bc.remainder());
    for (ca, cb) in ac.zip(bc) {
        for l in 0..LANES {
            let d = ca[l] - cb[l];
            lanes[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in atail.iter().zip(btail) {
        let d = x - y;
        tail += d * d;
    }
    reduce_lanes(lanes) + tail
}

/// `y[i] += a · x[i]` over equal-length slices. Element-wise, therefore
/// bitwise identical to the scalar loop for every input.
///
/// # Panics
///
/// Panics in debug builds when the slices have different lengths.
#[inline]
pub fn axpy8(a: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    // Element-wise, so no lane structure is needed for determinism; a plain
    // indexed loop over length-equalized slices is the shape LLVM
    // vectorizes best here (explicit 8-chunking measurably *defeats* its
    // cost model on the AXPY read-modify-write pattern).
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &mut y[..n]);
    for i in 0..n {
        y[i] += a * x[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..n).map(f).collect()
    }

    #[test]
    fn dot8_matches_documented_order_exactly() {
        // Reference: a literal transcription of the documented order.
        for n in [0, 1, 7, 8, 9, 16, 37, 64] {
            let a = seq(n, |i| ((i * 31 + 7) % 17) as f32 * 0.37 - 2.0);
            let b = seq(n, |i| ((i * 13 + 3) % 19) as f32 * 0.23 - 1.5);
            let mut lanes = [0.0f32; 8];
            let chunks = n / 8;
            for c in 0..chunks {
                for l in 0..8 {
                    lanes[l] += a[c * 8 + l] * b[c * 8 + l];
                }
            }
            let mut tail = 0.0f32;
            for i in chunks * 8..n {
                tail += a[i] * b[i];
            }
            let want = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
                + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
                + tail;
            assert_eq!(dot8(&a, &b).to_bits(), want.to_bits(), "n={n}");
        }
    }

    #[test]
    fn dot8_x4_is_bitwise_dot8_per_output() {
        for n in [0, 1, 7, 8, 9, 16, 37, 144] {
            let x = seq(n, |i| ((i * 31 + 7) % 17) as f32 * 0.37 - 2.0);
            let bs: Vec<Vec<f32>> = (0..4)
                .map(|r| seq(n, |i| ((i * 13 + 3 * r + 5) % 19) as f32 * 0.23 - 1.5))
                .collect();
            let got = dot8_x4(&x, [&bs[0], &bs[1], &bs[2], &bs[3]]);
            for r in 0..4 {
                assert_eq!(got[r].to_bits(), dot8(&x, &bs[r]).to_bits(), "n={n} r={r}");
            }
        }
    }

    #[test]
    fn dot8_x8_is_bitwise_dot8_per_output() {
        for n in [0, 1, 7, 8, 9, 16, 37, 144] {
            let x = seq(n, |i| ((i * 31 + 7) % 17) as f32 * 0.37 - 2.0);
            let bs: Vec<Vec<f32>> = (0..8)
                .map(|r| seq(n, |i| ((i * 13 + 5 * r + 3) % 19) as f32 * 0.23 - 1.5))
                .collect();
            let refs: [&[f32]; 8] = std::array::from_fn(|r| bs[r].as_slice());
            let got = dot8_x8(&x, refs);
            for r in 0..8 {
                assert_eq!(got[r].to_bits(), dot8(&x, &bs[r]).to_bits(), "n={n} r={r}");
            }
        }
    }

    #[test]
    fn sqdist8_matches_documented_order_exactly() {
        // Same literal-transcription pin as dot8 — on AVX2 hosts this
        // exercises the intrinsic body against the documented scalar order.
        for n in [0, 1, 7, 8, 9, 16, 37, 64] {
            let a = seq(n, |i| ((i * 29 + 5) % 23) as f32 * 0.31 - 2.1);
            let b = seq(n, |i| ((i * 17 + 11) % 13) as f32 * 0.27 - 1.1);
            let mut lanes = [0.0f32; 8];
            let chunks = n / 8;
            for c in 0..chunks {
                for l in 0..8 {
                    let d = a[c * 8 + l] - b[c * 8 + l];
                    lanes[l] += d * d;
                }
            }
            let mut tail = 0.0f32;
            for i in chunks * 8..n {
                let d = a[i] - b[i];
                tail += d * d;
            }
            let want = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
                + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
                + tail;
            assert_eq!(sqdist8(&a, &b).to_bits(), want.to_bits(), "n={n}");
        }
    }

    #[test]
    fn sqdist8_agrees_with_dot_identity() {
        let a = seq(23, |i| i as f32 * 0.11);
        let b = seq(23, |i| (23 - i) as f32 * 0.07);
        let d: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        assert_eq!(sqdist8(&a, &b).to_bits(), dot8(&d, &d).to_bits());
        assert_eq!(sqdist8(&a, &a), 0.0);
    }

    #[test]
    fn axpy8_is_bitwise_scalar_loop() {
        for n in [0, 3, 8, 21, 40] {
            let x = seq(n, |i| ((i * 7) % 11) as f32 * 0.3 - 1.0);
            let base = seq(n, |i| ((i * 5) % 13) as f32 * 0.21 - 1.2);
            let a = 0.77f32;
            let mut fast = base.clone();
            axpy8(a, &x, &mut fast);
            let mut slow = base.clone();
            for i in 0..n {
                slow[i] += a * x[i];
            }
            let fb: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
            let sb: Vec<u32> = slow.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, sb, "n={n}");
        }
    }

    #[test]
    fn dot8_close_to_f64_reference() {
        let a = seq(1000, |i| (i as f32 * 0.01).sin());
        let b = seq(1000, |i| (i as f32 * 0.02).cos());
        let exact: f64 = a.iter().zip(&b).map(|(x, y)| *x as f64 * *y as f64).sum();
        assert!((dot8(&a, &b) as f64 - exact).abs() < 1e-3);
    }
}
