//! 2-D convolution support: geometry, `im2col` and `col2im`.
//!
//! The autograd crate implements `conv2d` as
//! `im2col(input) × weightᵀ` (a single large matmul), and its backward pass
//! as a matmul followed by [`col2im`]. Keeping the data-movement kernels here
//! lets them be benchmarked and property-tested independently of the graph.

use crate::{parallel, scratch, Result, Tensor, TensorError};

/// Geometry of a 2-D convolution or correlation.
///
/// # Examples
///
/// ```
/// use ibrar_tensor::Conv2dSpec;
///
/// let spec = Conv2dSpec::new(3, 8, 3, 1, 1); // 3→8 channels, 3×3, stride 1, pad 1
/// assert_eq!(spec.out_hw(16, 16)?, (16, 16));
/// # Ok::<(), ibrar_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel edge.
    pub kernel: usize,
    /// Stride along both axes.
    pub stride: usize,
    /// Zero padding along both axes.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a convolution spec.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Conv2dSpec {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when the kernel does not fit
    /// the padded input or the stride is zero.
    pub fn out_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry(
                "stride must be nonzero".into(),
            ));
        }
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if self.kernel == 0 || self.kernel > ph || self.kernel > pw {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {}x{} does not fit padded input {}x{}",
                self.kernel, self.kernel, ph, pw
            )));
        }
        Ok((
            (ph - self.kernel) / self.stride + 1,
            (pw - self.kernel) / self.stride + 1,
        ))
    }

    /// Number of columns in the `im2col` matrix (`c · k · k`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Unfolds an `[n, c, h, w]` input into an `[n·oh·ow, c·k·k]` patch matrix.
///
/// Row `((ni·oh)+oy)·ow+ox` contains the flattened receptive field of output
/// pixel `(oy, ox)` of sample `ni`; out-of-bounds (padding) positions are 0.
///
/// # Errors
///
/// Returns an error when the input is not rank 4, its channel count does not
/// match `spec`, or the geometry is invalid.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    input.shape_obj().expect_rank(4, "im2col")?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    if c != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_vec(),
            rhs: vec![spec.in_channels],
            op: "im2col",
        });
    }
    let (oh, ow) = spec.out_hw(h, w)?;
    let k = spec.kernel;
    let patch = spec.patch_len();
    let mut out = scratch::take(crate::shape::checked_volume(&[n, oh, ow, patch], "im2col")?);
    let data = input.data();
    // Each sample's patch rows occupy a contiguous, disjoint region of the
    // output, so splitting across the batch dimension is write-race-free and
    // bitwise identical for any thread count.
    let threads = parallel::threads_for(n * oh * ow * patch);
    parallel::par_items_mut(&mut out, oh * ow * patch, threads, |ni, sample| {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (oy * ow + ox) * patch;
                let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                let mut col = 0usize;
                for ci in 0..c {
                    let chan = (ni * c + ci) * h * w;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            col += k;
                            continue;
                        }
                        let base = chan + iy as usize * w;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix >= 0 && ix < w as isize {
                                sample[row + col] = data[base + ix as usize];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[n * oh * ow, patch])
}

/// Folds a patch-gradient matrix back onto the input, accumulating
/// overlapping contributions — the adjoint of [`im2col`].
///
/// # Errors
///
/// Returns an error when `cols` does not have the shape `im2col` would have
/// produced for an `[n, c, h, w]` input under `spec`.
pub fn col2im(cols: &Tensor, spec: &Conv2dSpec, n: usize, h: usize, w: usize) -> Result<Tensor> {
    cols.shape_obj().expect_rank(2, "col2im")?;
    let (oh, ow) = spec.out_hw(h, w)?;
    let patch = spec.patch_len();
    let c = spec.in_channels;
    if cols.shape() != [n * oh * ow, patch] {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.shape().to_vec(),
            rhs: vec![n * oh * ow, patch],
            op: "col2im",
        });
    }
    let k = spec.kernel;
    let mut out = scratch::take(crate::shape::checked_volume(&[n, c, h, w], "col2im")?);
    let data = cols.data();
    // Overlapping patches only ever accumulate into their own sample's
    // `c·h·w` region, and within a sample the accumulation order is the
    // same serial loop as before — bitwise identical for any thread count.
    let threads = parallel::threads_for(n * oh * ow * patch);
    parallel::par_items_mut(&mut out, c * h * w, threads, |ni, sample| {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * patch;
                let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                let mut col = 0usize;
                for ci in 0..c {
                    let chan = ci * h * w;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            col += k;
                            continue;
                        }
                        let base = chan + iy as usize * w;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix >= 0 && ix < w as isize {
                                sample[base + ix as usize] += data[row + col];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[n, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_hw_basic() {
        let spec = Conv2dSpec::new(1, 1, 3, 1, 1);
        assert_eq!(spec.out_hw(8, 8).unwrap(), (8, 8));
        let spec = Conv2dSpec::new(1, 1, 3, 2, 1);
        assert_eq!(spec.out_hw(8, 8).unwrap(), (4, 4));
        let spec = Conv2dSpec::new(1, 1, 2, 2, 0);
        assert_eq!(spec.out_hw(8, 8).unwrap(), (4, 4));
    }

    #[test]
    fn out_hw_rejects_bad_geometry() {
        assert!(Conv2dSpec::new(1, 1, 9, 1, 0).out_hw(4, 4).is_err());
        assert!(Conv2dSpec::new(1, 1, 3, 0, 1).out_hw(4, 4).is_err());
        assert!(Conv2dSpec::new(1, 1, 0, 1, 0).out_hw(4, 4).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: im2col is a plain channel transpose.
        let input = Tensor::from_fn(&[1, 2, 2, 2], |i| (i[1] * 4 + i[2] * 2 + i[3]) as f32);
        let spec = Conv2dSpec::new(2, 1, 1, 1, 0);
        let cols = im2col(&input, &spec).unwrap();
        assert_eq!(cols.shape(), &[4, 2]);
        // patch for pixel (0,0) = [chan0(0,0), chan1(0,0)] = [0, 4]
        assert_eq!(cols.get(&[0, 0]), 0.0);
        assert_eq!(cols.get(&[0, 1]), 4.0);
    }

    #[test]
    fn im2col_padding_zeros() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let spec = Conv2dSpec::new(1, 1, 3, 1, 1);
        let cols = im2col(&input, &spec).unwrap();
        // output 2x2, patch 9; top-left patch has 4 in-range ones
        assert_eq!(cols.shape(), &[4, 9]);
        let first: f32 = (0..9).map(|j| cols.get(&[0, j])).sum();
        assert_eq!(first, 4.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let spec = Conv2dSpec::new(2, 1, 3, 2, 1);
        let (n, h, w) = (2, 5, 4);
        let x = Tensor::from_fn(&[n, 2, h, w], |i| {
            ((i[0] * 31 + i[1] * 17 + i[2] * 7 + i[3] * 3) % 13) as f32 * 0.21 - 1.0
        });
        let cols = im2col(&x, &spec).unwrap();
        let y = Tensor::from_fn(cols.shape(), |i| {
            ((i[0] * 5 + i[1] * 11) % 7) as f32 * 0.4 - 1.0
        });
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &spec, n, h, w).unwrap();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_channel_mismatch_is_error() {
        let input = Tensor::zeros(&[1, 3, 4, 4]);
        let spec = Conv2dSpec::new(2, 1, 3, 1, 1);
        assert!(im2col(&input, &spec).is_err());
    }
}
