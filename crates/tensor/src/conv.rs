//! 2-D convolution support: geometry, direct forward, `im2col` and `col2im`.
//!
//! The forward pass is [`conv2d_forward`] — an im2col-free blocked direct
//! convolution dispatched through the [`crate::backend`] seam. The autograd
//! backward pass still materializes the patch matrix (it needs `cols` for
//! `dW = gradᵀ × cols` anyway) via [`im2col`] + [`col2im`]. Keeping the
//! data-movement kernels here lets them be benchmarked and property-tested
//! independently of the graph.
//!
//! # Why the direct forward produces the same bits as im2col + matmul_nt
//!
//! The historical forward was `im2col(x) × Wᵀ` via `matmul_nt`, whose every
//! output element is one full-length [`crate::simd::dot8`] over
//! `(patch row, weight row)`. The direct kernel gathers the *same* patch
//! row (padding positions explicitly zero, same `(ci, ky, kx)` column
//! order) into a row buffer and computes the *same* full-length `dot8`
//! against the same weight row. `dot8` is a pure function of its operands,
//! so every output element gets identical bits — the change eliminates the
//! `[n·oh·ow, patch]` materialization and the scatter from row-major back
//! to NCHW, not a single add. Goldens and thread-count invariance hold
//! unchanged (the per-sample split never splits one element's reduction).

use crate::backend::{self, ConvGeom};
use crate::{parallel, scratch, simd, Result, Tensor, TensorError};

/// Geometry of a 2-D convolution or correlation.
///
/// # Examples
///
/// ```
/// use ibrar_tensor::Conv2dSpec;
///
/// let spec = Conv2dSpec::new(3, 8, 3, 1, 1); // 3→8 channels, 3×3, stride 1, pad 1
/// assert_eq!(spec.out_hw(16, 16)?, (16, 16));
/// # Ok::<(), ibrar_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel edge.
    pub kernel: usize,
    /// Stride along both axes.
    pub stride: usize,
    /// Zero padding along both axes.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a convolution spec.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Conv2dSpec {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when the kernel does not fit
    /// the padded input or the stride is zero.
    pub fn out_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry(
                "stride must be nonzero".into(),
            ));
        }
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if self.kernel == 0 || self.kernel > ph || self.kernel > pw {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {}x{} does not fit padded input {}x{}",
                self.kernel, self.kernel, ph, pw
            )));
        }
        Ok((
            (ph - self.kernel) / self.stride + 1,
            (pw - self.kernel) / self.stride + 1,
        ))
    }

    /// Number of columns in the `im2col` matrix (`c · k · k`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Direct 2-D convolution forward: `[n, c, h, w] ⋆ [oc, c·k·k] →
/// [n, oc, oh, ow]`, dispatched through the active
/// [`Backend`](crate::backend::Backend).
///
/// `wmat` is the kernel tensor flattened to `[out_channels, patch_len]` —
/// the same layout the im2col formulation multiplies against, so weights
/// need no repacking. Bitwise identical to `im2col(x) × wmatᵀ` reshaped to
/// NCHW under the tuned backend (see the module docs) without
/// materializing the patch matrix.
///
/// # Errors
///
/// Returns an error when `input` is not rank 4, `wmat` is not
/// `[out_channels, patch_len]`, the channel counts disagree with `spec`,
/// or the geometry is invalid.
pub fn conv2d_forward(input: &Tensor, wmat: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    input.shape_obj().expect_rank(4, "conv2d_forward")?;
    wmat.shape_obj().expect_rank(2, "conv2d_forward")?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    if c != spec.in_channels || wmat.shape() != [spec.out_channels, spec.patch_len()] {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_vec(),
            rhs: wmat.shape().to_vec(),
            op: "conv2d_forward",
        });
    }
    let (oh, ow) = spec.out_hw(h, w)?;
    let geom = ConvGeom {
        n,
        h,
        w,
        oh,
        ow,
        spec: *spec,
    };
    let be = backend::current();
    let mut out = be.alloc(crate::shape::checked_volume(
        &[n, spec.out_channels, oh, ow],
        "conv2d_forward",
    )?);
    be.conv2d_forward(input.data(), wmat.data(), &mut out, &geom);
    Tensor::from_vec(out, &[n, spec.out_channels, oh, ow])
}

/// Gathers the im2col patch rows of one output row into `rowbuf`.
///
/// `sample` is one sample's `[c, h, w]` slab; on return
/// `rowbuf[ox·patch..][..patch]` holds exactly the im2col row of output
/// pixel `(oy, ox)` — padding positions explicitly zero, `(ci, ky, kx)`
/// column order, interior kernel rows copied contiguously. `rowbuf` must
/// hold `ow · patch_len` elements. Shared by the f32 direct forward and the
/// serve-side fused int8 conv so both quantize/reduce the *same* patch
/// bytes the im2col formulation would produce.
pub fn gather_patch_rows(
    sample: &[f32],
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    oy: usize,
    ow: usize,
    rowbuf: &mut [f32],
) {
    let (c, k, patch) = (spec.in_channels, spec.kernel, spec.patch_len());
    let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
    for (ox, row) in rowbuf.chunks_exact_mut(patch).take(ow).enumerate() {
        let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
        let mut col = 0usize;
        for ci in 0..c {
            let chan = ci * h * w;
            for ky in 0..k {
                let iy = iy0 + ky as isize;
                if iy < 0 || iy >= h as isize {
                    row[col..col + k].fill(0.0);
                    col += k;
                    continue;
                }
                let base = chan + iy as usize * w;
                if ix0 >= 0 && ix0 as usize + k <= w {
                    // Interior fast path: the whole kernel row is in
                    // bounds — one contiguous copy. The 3-wide case (every
                    // VGG-style conv) is unrolled by hand: a 12-byte
                    // `copy_from_slice` lowers to a libc memcpy call whose
                    // dispatch overhead dominates the copy itself.
                    let start = base + ix0 as usize;
                    if k == 3 {
                        row[col] = sample[start];
                        row[col + 1] = sample[start + 1];
                        row[col + 2] = sample[start + 2];
                    } else {
                        row[col..col + k].copy_from_slice(&sample[start..start + k]);
                    }
                    col += k;
                } else {
                    for kx in 0..k {
                        let ix = ix0 + kx as isize;
                        row[col] = if ix >= 0 && ix < w as isize {
                            sample[base + ix as usize]
                        } else {
                            0.0
                        };
                        col += 1;
                    }
                }
            }
        }
    }
}

/// Tuned blocked direct-conv kernel for [`crate::backend::CpuTuned`].
///
/// Per sample (batch split across threads — each sample's `oc·oh·ow`
/// region is disjoint), per output row `oy`: gather the `ow × patch` patch
/// rows once into a scratch row buffer ([`gather_patch_rows`]), then stream
/// the weight matrix in blocks of eight output channels — `ox` inner — so
/// the weight rows stay hot across the whole output row and the
/// independent accumulator chains of [`simd::dot8_x8`] (with
/// `dot8_x4`/`dot8` cleanup) overlap in the pipeline. Every output element
/// is one full-length `dot8`-ordered
/// reduction over exactly the im2col row content, preserving the bitwise
/// contract described in the module docs.
pub(crate) fn conv_forward_tuned(x: &[f32], wmat: &[f32], out: &mut [f32], geom: &ConvGeom) {
    let spec = &geom.spec;
    let (c, oc, patch) = (spec.in_channels, spec.out_channels, spec.patch_len());
    let (h, w, oh, ow) = (geom.h, geom.w, geom.oh, geom.ow);
    if patch == 0 {
        return; // zero input channels: the reduction is empty, out is zero
    }
    let work = geom
        .n
        .saturating_mul(oc.saturating_mul(oh).saturating_mul(ow))
        .saturating_mul(patch);
    let threads = parallel::threads_for(work);
    parallel::par_items_mut(out, oc * oh * ow, threads, |ni, sample| {
        let xs = &x[ni * c * h * w..(ni + 1) * c * h * w];
        let mut rowbuf = scratch::take(ow * patch);
        for oy in 0..oh {
            gather_patch_rows(xs, h, w, spec, oy, ow, &mut rowbuf);
            let wr = |co: usize| &wmat[co * patch..(co + 1) * patch];
            let mut co = 0usize;
            while co + 8 <= oc {
                let ws: [&[f32]; 8] = core::array::from_fn(|r| wr(co + r));
                for ox in 0..ow {
                    let vals = simd::dot8_x8(&rowbuf[ox * patch..(ox + 1) * patch], ws);
                    for (r, v) in vals.into_iter().enumerate() {
                        sample[((co + r) * oh + oy) * ow + ox] = v;
                    }
                }
                co += 8;
            }
            while co + 4 <= oc {
                let ws: [&[f32]; 4] = core::array::from_fn(|r| wr(co + r));
                for ox in 0..ow {
                    let vals = simd::dot8_x4(&rowbuf[ox * patch..(ox + 1) * patch], ws);
                    for (r, v) in vals.into_iter().enumerate() {
                        sample[((co + r) * oh + oy) * ow + ox] = v;
                    }
                }
                co += 4;
            }
            for co in co..oc {
                let wrow = &wmat[co * patch..(co + 1) * patch];
                let obase = (co * oh + oy) * ow;
                for (ox, o) in sample[obase..obase + ow].iter_mut().enumerate() {
                    *o = simd::dot8(&rowbuf[ox * patch..(ox + 1) * patch], wrow);
                }
            }
        }
        scratch::recycle(rowbuf);
    });
}

/// Unfolds an `[n, c, h, w]` input into an `[n·oh·ow, c·k·k]` patch matrix.
///
/// Row `((ni·oh)+oy)·ow+ox` contains the flattened receptive field of output
/// pixel `(oy, ox)` of sample `ni`; out-of-bounds (padding) positions are 0.
///
/// # Errors
///
/// Returns an error when the input is not rank 4, its channel count does not
/// match `spec`, or the geometry is invalid.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    input.shape_obj().expect_rank(4, "im2col")?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    if c != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_vec(),
            rhs: vec![spec.in_channels],
            op: "im2col",
        });
    }
    let (oh, ow) = spec.out_hw(h, w)?;
    let k = spec.kernel;
    let patch = spec.patch_len();
    let mut out = scratch::take(crate::shape::checked_volume(&[n, oh, ow, patch], "im2col")?);
    let data = input.data();
    // Each sample's patch rows occupy a contiguous, disjoint region of the
    // output, so splitting across the batch dimension is write-race-free and
    // bitwise identical for any thread count.
    let threads = parallel::threads_for(n * oh * ow * patch);
    parallel::par_items_mut(&mut out, oh * ow * patch, threads, |ni, sample| {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (oy * ow + ox) * patch;
                let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                let mut col = 0usize;
                for ci in 0..c {
                    let chan = (ni * c + ci) * h * w;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            col += k;
                            continue;
                        }
                        let base = chan + iy as usize * w;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix >= 0 && ix < w as isize {
                                sample[row + col] = data[base + ix as usize];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[n * oh * ow, patch])
}

/// Folds a patch-gradient matrix back onto the input, accumulating
/// overlapping contributions — the adjoint of [`im2col`].
///
/// # Errors
///
/// Returns an error when `cols` does not have the shape `im2col` would have
/// produced for an `[n, c, h, w]` input under `spec`.
pub fn col2im(cols: &Tensor, spec: &Conv2dSpec, n: usize, h: usize, w: usize) -> Result<Tensor> {
    cols.shape_obj().expect_rank(2, "col2im")?;
    let (oh, ow) = spec.out_hw(h, w)?;
    let patch = spec.patch_len();
    let c = spec.in_channels;
    if cols.shape() != [n * oh * ow, patch] {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.shape().to_vec(),
            rhs: vec![n * oh * ow, patch],
            op: "col2im",
        });
    }
    let k = spec.kernel;
    let mut out = scratch::take(crate::shape::checked_volume(&[n, c, h, w], "col2im")?);
    let data = cols.data();
    // Overlapping patches only ever accumulate into their own sample's
    // `c·h·w` region, and within a sample the accumulation order is the
    // same serial loop as before — bitwise identical for any thread count.
    let threads = parallel::threads_for(n * oh * ow * patch);
    parallel::par_items_mut(&mut out, c * h * w, threads, |ni, sample| {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * patch;
                let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                let mut col = 0usize;
                for ci in 0..c {
                    let chan = ci * h * w;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            col += k;
                            continue;
                        }
                        let base = chan + iy as usize * w;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix >= 0 && ix < w as isize {
                                sample[base + ix as usize] += data[row + col];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[n, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_hw_basic() {
        let spec = Conv2dSpec::new(1, 1, 3, 1, 1);
        assert_eq!(spec.out_hw(8, 8).unwrap(), (8, 8));
        let spec = Conv2dSpec::new(1, 1, 3, 2, 1);
        assert_eq!(spec.out_hw(8, 8).unwrap(), (4, 4));
        let spec = Conv2dSpec::new(1, 1, 2, 2, 0);
        assert_eq!(spec.out_hw(8, 8).unwrap(), (4, 4));
    }

    #[test]
    fn out_hw_rejects_bad_geometry() {
        assert!(Conv2dSpec::new(1, 1, 9, 1, 0).out_hw(4, 4).is_err());
        assert!(Conv2dSpec::new(1, 1, 3, 0, 1).out_hw(4, 4).is_err());
        assert!(Conv2dSpec::new(1, 1, 0, 1, 0).out_hw(4, 4).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: im2col is a plain channel transpose.
        let input = Tensor::from_fn(&[1, 2, 2, 2], |i| (i[1] * 4 + i[2] * 2 + i[3]) as f32);
        let spec = Conv2dSpec::new(2, 1, 1, 1, 0);
        let cols = im2col(&input, &spec).unwrap();
        assert_eq!(cols.shape(), &[4, 2]);
        // patch for pixel (0,0) = [chan0(0,0), chan1(0,0)] = [0, 4]
        assert_eq!(cols.get(&[0, 0]), 0.0);
        assert_eq!(cols.get(&[0, 1]), 4.0);
    }

    #[test]
    fn im2col_padding_zeros() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let spec = Conv2dSpec::new(1, 1, 3, 1, 1);
        let cols = im2col(&input, &spec).unwrap();
        // output 2x2, patch 9; top-left patch has 4 in-range ones
        assert_eq!(cols.shape(), &[4, 9]);
        let first: f32 = (0..9).map(|j| cols.get(&[0, j])).sum();
        assert_eq!(first, 4.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let spec = Conv2dSpec::new(2, 1, 3, 2, 1);
        let (n, h, w) = (2, 5, 4);
        let x = Tensor::from_fn(&[n, 2, h, w], |i| {
            ((i[0] * 31 + i[1] * 17 + i[2] * 7 + i[3] * 3) % 13) as f32 * 0.21 - 1.0
        });
        let cols = im2col(&x, &spec).unwrap();
        let y = Tensor::from_fn(cols.shape(), |i| {
            ((i[0] * 5 + i[1] * 11) % 7) as f32 * 0.4 - 1.0
        });
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &spec, n, h, w).unwrap();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_channel_mismatch_is_error() {
        let input = Tensor::zeros(&[1, 3, 4, 4]);
        let spec = Conv2dSpec::new(2, 1, 3, 1, 1);
        assert!(im2col(&input, &spec).is_err());
    }
}
