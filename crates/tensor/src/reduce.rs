//! Reductions: full-tensor and per-axis sums, means, extrema, and the
//! row/column reductions used by losses and batch statistics.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element (−∞ for empty tensors).
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for empty tensors).
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data().iter().map(|v| v * v).sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Sums a rank-2 tensor along axis 0, producing `[cols]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_rows(&self) -> Result<Tensor> {
        self.shape_obj().expect_rank(2, "sum_rows")?;
        let (r, c) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0f32; c];
        for i in 0..r {
            let row = &self.data()[i * c..(i + 1) * c];
            for (o, v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[c])
    }

    /// Sums a rank-2 tensor along axis 1, producing `[rows]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_cols(&self) -> Result<Tensor> {
        self.shape_obj().expect_rank(2, "sum_cols")?;
        let (r, c) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0f32; r];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data()[i * c..(i + 1) * c].iter().sum();
        }
        Tensor::from_vec(out, &[r])
    }

    /// Per-channel sum of an `[n, c, h, w]` tensor, producing `[c]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 tensors.
    pub fn sum_channels(&self) -> Result<Tensor> {
        self.shape_obj().expect_rank(4, "sum_channels")?;
        let (n, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let plane = h * w;
        let mut out = vec![0.0f32; c];
        for ni in 0..n {
            for (ci, o) in out.iter_mut().enumerate() {
                let base = (ni * c + ci) * plane;
                *o += self.data()[base..base + plane].iter().sum::<f32>();
            }
        }
        Tensor::from_vec(out, &[c])
    }

    /// Per-channel mean of an `[n, c, h, w]` tensor, producing `[c]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 tensors.
    pub fn mean_channels(&self) -> Result<Tensor> {
        let (n, h, w) = (self.shape()[0], self.shape()[2], self.shape()[3]);
        let denom = (n * h * w) as f32;
        Ok(self.sum_channels()?.scale(1.0 / denom))
    }

    /// Per-channel variance (biased) of an `[n, c, h, w]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 tensors.
    pub fn var_channels(&self, mean: &Tensor) -> Result<Tensor> {
        self.shape_obj().expect_rank(4, "var_channels")?;
        let (n, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        if mean.shape() != [c] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: mean.shape().to_vec(),
                op: "var_channels",
            });
        }
        let plane = h * w;
        let mut out = vec![0.0f32; c];
        for ni in 0..n {
            for (ci, o) in out.iter_mut().enumerate() {
                let m = mean.data()[ci];
                let base = (ni * c + ci) * plane;
                for k in 0..plane {
                    let d = self.data()[base + k] - m;
                    *o += d * d;
                }
            }
        }
        let denom = (n * plane) as f32;
        for v in &mut out {
            *v /= denom;
        }
        Tensor::from_vec(out, &[c])
    }

    /// Row-wise maximum of a rank-2 tensor, producing `[rows]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn max_cols(&self) -> Result<Tensor> {
        self.shape_obj().expect_rank(2, "max_cols")?;
        let (r, c) = (self.shape()[0], self.shape()[1]);
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            out.push(
                self.data()[i * c..(i + 1) * c]
                    .iter()
                    .copied()
                    .fold(f32::NEG_INFINITY, f32::max),
            );
        }
        Tensor::from_vec(out, &[r])
    }

    /// Per-sample L2 norms of a `[n, ...]` tensor, producing `[n]`.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 tensors.
    pub fn norms_per_sample(&self) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
                op: "norms_per_sample",
            });
        }
        let n = self.shape()[0];
        let row_len = self.len().checked_div(n).unwrap_or(0);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let row = &self.data()[i * row_len..(i + 1) * row_len];
            out.push(row.iter().map(|v| v * v).sum::<f32>().sqrt());
        }
        Tensor::from_vec(out, &[n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
    }

    #[test]
    fn sum_rows_and_cols() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_rows().unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.sum_cols().unwrap().data(), &[6.0, 15.0]);
    }

    #[test]
    fn channel_stats() {
        // two samples, two channels of 1x2
        let t = Tensor::from_vec(
            vec![1.0, 3.0, 10.0, 10.0, 5.0, 7.0, 10.0, 10.0],
            &[2, 2, 1, 2],
        )
        .unwrap();
        let mean = t.mean_channels().unwrap();
        assert_eq!(mean.data(), &[4.0, 10.0]);
        let var = t.var_channels(&mean).unwrap();
        assert_eq!(var.data(), &[5.0, 0.0]);
    }

    #[test]
    fn max_cols_per_row() {
        let t = Tensor::from_vec(vec![1.0, 9.0, -1.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.max_cols().unwrap().data(), &[9.0, 4.0]);
    }

    #[test]
    fn norms_per_sample_values() {
        let t = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2]).unwrap();
        assert_eq!(t.norms_per_sample().unwrap().data(), &[5.0, 0.0]);
    }

    #[test]
    fn norm_matches_manual() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert!((t.norm() - 5.0).abs() < 1e-6);
        assert_eq!(t.sq_norm(), 25.0);
    }

    #[test]
    fn min_max_empty() {
        let t = Tensor::zeros(&[0]);
        assert_eq!(t.max(), f32::NEG_INFINITY);
        assert_eq!(t.min(), f32::INFINITY);
        assert_eq!(t.mean(), 0.0);
    }
}
