//! Dense `f32` n-dimensional tensors for the IB-RAR reproduction.
//!
//! This crate is the lowest-level substrate of the workspace: every other
//! crate (autograd, neural-net layers, attacks, HSIC estimators) is built on
//! the [`Tensor`] type defined here.
//!
//! Design constraints:
//!
//! * **Always contiguous, row-major.** Ops that would produce strided views
//!   (transpose, slicing) materialize a new tensor instead. This keeps every
//!   kernel simple and predictable at the cost of some copies, which is the
//!   right trade-off at the model sizes used by the reproduction.
//! * **`f32` only.** The paper's models train in single precision.
//! * **Batch-first `NCHW`** layout for image tensors.
//!
//! # Examples
//!
//! ```
//! use ibrar_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::full(&[2, 2], 0.5);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data()[0], 1.5);
//! # Ok::<(), ibrar_tensor::TensorError>(())
//! ```

pub mod backend;
mod conv;
mod elementwise;
mod error;
mod init;
mod io;
mod matmul;
pub mod parallel;
mod pool;
pub mod qgemm;
mod reduce;
pub mod scratch;
mod shape;
pub mod simd;
mod tensor;

pub use conv::{col2im, conv2d_forward, gather_patch_rows, im2col, Conv2dSpec};
pub use error::TensorError;
pub use init::{kaiming_uniform, normal, uniform, xavier_uniform, NormalSampler};
pub use pool::{avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, Pool2dSpec};
pub use shape::{checked_volume, Shape};
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
