//! Deterministic work-splitting across a persistent worker pool.
//!
//! Every hot loop in the workspace that fans out across threads goes through
//! this module so the policy lives in one place:
//!
//! * **Thread count.** [`num_threads`] honors an `IBRAR_THREADS` environment
//!   override (read once per process), falling back to
//!   `std::thread::available_parallelism`. Tests and benchmarks can force a
//!   count for the current thread with [`with_threads`].
//! * **Fixed chunk boundaries, no reduction-order dependence.** Work is
//!   split into contiguous index ranges; each worker writes only to its own
//!   disjoint output region (or returns a per-chunk value that the caller
//!   combines *sequentially in index order*). Because chunks are contiguous
//!   and in-order, the flattened item sequence is identical for any thread
//!   count — so callers that follow the contract below get **bitwise
//!   identical** results whether `IBRAR_THREADS` is 1, 4, or unset.
//! * **Persistent workers.** Parallel jobs run on long-lived pool threads
//!   (spawned lazily, capped at [`POOL_MAX_WORKERS`]) instead of paying
//!   thread-spawn latency per call. Workers keep their thread-local scratch
//!   pools ([`crate::scratch`]) warm across jobs, so steady-state kernels
//!   hit the pool on worker threads too, not just on the main thread.
//!
//! # Caller contract
//!
//! Per-item work must depend only on the item index and shared read-only
//! inputs. Floating-point accumulation **across** items must never happen
//! inside a chunk-sized partial sum that is later combined (that would make
//! results depend on chunk boundaries); instead return per-item values from
//! [`par_map`] and fold them serially, or accumulate exactly-representable
//! values (integers, disjoint writes).
//!
//! Chunks are *claimed* dynamically (an atomic ticket counter), but the
//! mapping from chunk index to input range and output region is fixed ahead
//! of time, so which thread happens to run a chunk can never affect the
//! result — only the wall-clock schedule.
//!
//! # Budget capture
//!
//! The submitting thread's [`with_threads`] override is captured into each
//! job and installed on workers for the duration of their participation, so
//! nested splits (a matmul inside a parallel eval loop, say) see the same
//! thread budget on a worker as they would on the submitter.
//!
//! # Examples
//!
//! ```
//! use ibrar_tensor::parallel;
//!
//! let doubled = parallel::par_map(4, parallel::num_threads(), |i| i * 2);
//! assert_eq!(doubled, vec![0, 2, 4, 6]);
//!
//! let _guard = parallel::with_threads(3);
//! assert_eq!(parallel::num_threads(), 3);
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use ibrar_telemetry as tel;

/// Below roughly this many "work units" (caller-estimated scalar operations)
/// per extra thread, fanning out is not worth it; see [`threads_for`].
pub const MIN_WORK_PER_THREAD: usize = 32 * 1024;

/// Hard cap on persistent pool workers, independent of `IBRAR_THREADS`.
pub const POOL_MAX_WORKERS: usize = 32;

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        let n = match std::env::var("IBRAR_THREADS") {
            Ok(v) => v.trim().parse::<usize>().ok().filter(|&n| n >= 1),
            Err(_) => None,
        }
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        });
        tel::gauge("parallel.threads", n as f64);
        n
    })
}

/// The worker-thread budget for the current thread: the innermost
/// [`with_threads`] override if one is active, else `IBRAR_THREADS`, else
/// the machine's available parallelism. Always ≥ 1.
pub fn num_threads() -> usize {
    OVERRIDE.with(Cell::get).unwrap_or_else(env_threads).max(1)
}

/// Thread budget scaled to a caller-estimated amount of work: small jobs run
/// serially rather than paying dispatch latency. An active [`with_threads`]
/// override is returned unscaled so tests and benchmarks can force the
/// parallel path on small fixtures.
pub fn threads_for(work: usize) -> usize {
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    let cap = 1 + work / MIN_WORK_PER_THREAD;
    env_threads().min(cap).max(1)
}

/// RAII guard restoring the previous thread-count override on drop.
#[derive(Debug)]
pub struct ThreadScope {
    prev: Option<usize>,
}

impl Drop for ThreadScope {
    fn drop(&mut self) {
        OVERRIDE.with(|o| o.set(self.prev));
    }
}

/// Overrides [`num_threads`] for the current thread until the returned guard
/// is dropped. Nests; `0` is treated as `1`.
#[must_use = "the override ends when the guard drops"]
pub fn with_threads(n: usize) -> ThreadScope {
    let prev = OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    ThreadScope { prev }
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// One in-flight parallel job. Lives on the submitter's stack for the
/// duration of [`pool_run`]; workers reach it through a raw pointer that is
/// only discoverable while the job is linked into the pool queue.
///
/// # Lifetime protocol (why the raw pointers are sound)
///
/// 1. A worker may only obtain the job pointer from the pool queue, under
///    the pool lock, and must register (`workers_inside += 1`, under the
///    job lock) *before* releasing the pool lock — and only if
///    `chunks_done < nchunks` at that moment. A finished job is never
///    registered on: between the discovery read of `next` and registration
///    the last chunk may complete, and the submitter may already be past
///    its final wait.
/// 2. The submitter's final wait exits only when `chunks_done == nchunks`
///    **and** `workers_inside == 0`, both read under the job lock. Because
///    registration requires `chunks_done < nchunks` under the same lock and
///    `chunks_done` is monotone, no worker can register after the wait
///    exits, and every worker that did register has already left (a
///    worker's very last touch of the job is the decrement + notify under
///    the job lock).
/// 3. The submitter then unlinks the job (under the pool lock). The job
///    cannot be freed while linked — freeing requires the unlink, which
///    needs the pool lock any discovering worker holds through
///    registration — so after the unlink no thread can reach it and the
///    stack frame may be reclaimed.
struct Job {
    /// Type-erased chunk runner; `'static` by [`erase`], sound per the
    /// protocol above.
    run: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed chunk ticket; chunk→range/output mapping is fixed, so
    /// dynamic claiming cannot affect results, only the schedule.
    next: AtomicUsize,
    nchunks: usize,
    /// When true, each participation claims at most one chunk and the
    /// submitter abstains (see [`pool_broadcast`]).
    broadcast: bool,
    /// The submitter's `with_threads` override at submit time, installed on
    /// workers while they participate.
    budget: Option<usize>,
    state: Mutex<JobState>,
    done: Condvar,
}

struct JobState {
    chunks_done: usize,
    workers_inside: usize,
    panicked: bool,
}

/// Raw job pointer that may cross threads (see the [`Job`] protocol).
#[derive(Clone, Copy)]
struct JobHandle(*const Job);

// SAFETY: the pointer is only dereferenced under the discovery/registration
// protocol documented on `Job`, which guarantees the pointee is alive.
unsafe impl Send for JobHandle {}

struct PoolQueue {
    jobs: VecDeque<JobHandle>,
    workers: usize,
}

struct Pool {
    queue: Mutex<PoolQueue>,
    /// Signaled when a job is pushed; workers park here when idle.
    work: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(PoolQueue {
            jobs: VecDeque::new(),
            workers: 0,
        }),
        work: Condvar::new(),
    })
}

/// Erases the closure lifetime so the job can hold a raw trait-object
/// pointer. Sound because [`pool_run`] blocks until every participant has
/// unregistered, so the pointer never outlives the borrow.
fn erase<'a>(f: &'a (dyn Fn(usize) + Sync)) -> *const (dyn Fn(usize) + Sync) {
    // SAFETY: fat-pointer layout is identical for any trait-object
    // lifetime; dereferences are bounded by the Job protocol.
    let f_static: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&'a (dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
    };
    f_static as *const _
}

/// Spawns workers until the pool holds `want` of them (capped at
/// [`POOL_MAX_WORKERS`]). Workers are detached and live for the process.
fn ensure_workers(want: usize) {
    let p = pool();
    let mut q = p.queue.lock().unwrap();
    let want = want.min(POOL_MAX_WORKERS);
    while q.workers < want {
        let id = q.workers;
        std::thread::Builder::new()
            .name(format!("ibrar-par-{id}"))
            .spawn(worker_main)
            .expect("spawn pool worker");
        q.workers += 1;
        tel::gauge("parallel.pool.workers", q.workers as f64);
    }
}

/// Number of persistent workers currently alive in the pool.
pub fn pool_workers() -> usize {
    pool().queue.lock().unwrap().workers
}

fn worker_main() {
    let p = pool();
    let mut q = p.queue.lock().unwrap();
    loop {
        let found = q.jobs.iter().copied().find(|h| {
            // SAFETY: the job is linked in the queue, so its submitter is
            // still blocked in `pool_run` and the pointee is alive.
            let job = unsafe { &*h.0 };
            job.next.load(Ordering::Relaxed) < job.nchunks
        });
        let Some(h) = found else {
            q = p.work.wait(q).unwrap();
            continue;
        };
        let registered = {
            // Register before releasing the pool lock (Job protocol step 1),
            // re-checking completion under the job lock: the last chunk may
            // have finished since the discovery read of `next`, and the
            // submitter may already be past its final wait — registering on
            // a finished job would let it be freed underneath us.
            // SAFETY: as above — linked in queue ⇒ alive.
            let job = unsafe { &*h.0 };
            let mut st = job.state.lock().unwrap();
            if st.chunks_done < job.nchunks {
                st.workers_inside += 1;
                true
            } else {
                false
            }
        };
        drop(q);
        if registered {
            // SAFETY: `workers_inside` now pins the job until we unregister.
            participate(unsafe { &*h.0 }, true);
        }
        q = p.queue.lock().unwrap();
    }
}

/// Claims and runs chunks of `job` until none remain (or one chunk, for
/// broadcast jobs). `registered` is true on pool workers, which must
/// unregister as their very last touch of the job; the submitter passes
/// false and never registers.
fn participate(job: &Job, registered: bool) {
    {
        // Workers adopt the submitter's thread budget for nested splits;
        // the submitter already carries its own override.
        let _budget = if registered {
            job.budget.map(with_threads)
        } else {
            None
        };
        // SAFETY: `job` is alive (pinned by `workers_inside` or owned by
        // the submitting frame), so the erased closure borrow is valid.
        let run = unsafe { &*job.run };
        loop {
            let c = job.next.fetch_add(1, Ordering::Relaxed);
            if c >= job.nchunks {
                break;
            }
            let ok = panic::catch_unwind(AssertUnwindSafe(|| run(c))).is_ok();
            let mut st = job.state.lock().unwrap();
            st.chunks_done += 1;
            if !ok {
                st.panicked = true;
            }
            let finished = st.chunks_done == job.nchunks;
            drop(st);
            if finished || job.broadcast {
                break;
            }
        }
    }
    if registered {
        // Unregister + notify under the job lock; after the guard drops we
        // must never touch `job` again (Job protocol step 3).
        let mut st = job.state.lock().unwrap();
        st.workers_inside -= 1;
        job.done.notify_all();
    }
}

/// Runs `f(c)` for every chunk index `c` in `0..nchunks` across the
/// persistent pool plus (unless `broadcast`) the calling thread. Blocks
/// until every chunk has run and all workers have left the job; panics in
/// `f` are re-raised here as "parallel worker panicked".
fn pool_run(nchunks: usize, broadcast: bool, f: &(dyn Fn(usize) + Sync)) {
    if nchunks == 0 {
        return;
    }
    let job = Job {
        run: erase(f),
        next: AtomicUsize::new(0),
        nchunks,
        broadcast,
        budget: OVERRIDE.with(Cell::get),
        state: Mutex::new(JobState {
            chunks_done: 0,
            workers_inside: 0,
            panicked: false,
        }),
        done: Condvar::new(),
    };
    // The submitter runs chunks too, so nchunks - 1 extra hands saturate a
    // normal job; broadcast jobs run entirely on workers.
    ensure_workers(if broadcast {
        nchunks
    } else {
        nchunks.saturating_sub(1)
    });
    let p = pool();
    {
        let mut q = p.queue.lock().unwrap();
        q.jobs.push_back(JobHandle(&job));
        p.work.notify_all();
    }
    tel::counter("parallel.pool.jobs", 1);
    tel::counter("parallel.chunks", nchunks as u64);
    if !broadcast {
        participate(&job, false);
    }
    {
        let mut st = job.state.lock().unwrap();
        while st.chunks_done < job.nchunks || st.workers_inside > 0 {
            st = job.done.wait(st).unwrap();
        }
    }
    // Unlink after the wait (protocol step 3): a broadcast job must stay
    // discoverable until workers have run every chunk, every registered
    // worker has already left (the wait saw workers_inside == 0), and no
    // worker can register anew — registration re-checks chunks_done under
    // the job lock, and chunks_done == nchunks is final. After the queue
    // lock drops no thread can reach the handle, so the job may be freed.
    {
        let mut q = p.queue.lock().unwrap();
        if let Some(pos) = q.jobs.iter().position(|h| std::ptr::eq(h.0, &job)) {
            q.jobs.remove(pos);
        }
    }
    let panicked = job.state.lock().unwrap().panicked;
    if panicked {
        panic!("parallel worker panicked");
    }
}

/// Raw mutable pointer that may cross threads; each chunk touches a
/// disjoint region, so writes cannot race.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor so closures capture the `Sync` wrapper rather than the raw
    /// pointer field (2021-edition closures capture disjoint fields).
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Runs `f(i)` for each `i` in `0..n` **on pool worker threads** — the
/// calling thread never participates — and returns results in index order.
/// Each worker participation services at most one index (one worker may
/// still service several indices by re-entering the job when the pool is
/// contended).
///
/// This is a diagnostic hook: it exists so tests can observe worker-
/// thread-local state (scratch-pool warmth, thread identity) from inside
/// the persistent pool. Hot paths use [`run_chunked`] and friends.
pub fn pool_broadcast<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(
        n <= POOL_MAX_WORKERS,
        "pool_broadcast index count {n} exceeds POOL_MAX_WORKERS"
    );
    if n == 0 {
        return Vec::new();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let out = SendPtr(slots.as_mut_ptr());
    let run = |c: usize| {
        let r = f(c);
        // SAFETY: each chunk index is claimed exactly once, so slot `c` is
        // written by exactly one thread; the submitter only reads the slots
        // after `pool_run` returns.
        unsafe {
            *out.get().add(c) = Some(r);
        }
    };
    pool_run(n, true, &run);
    slots
        .into_iter()
        .map(|s| s.expect("every broadcast index ran"))
        .collect()
}

/// Splits `0..n` into at most `threads` contiguous chunks, runs `f` on each
/// chunk (on persistent pool workers plus the calling thread when
/// `threads > 1`), and returns the per-chunk results **in chunk order**.
///
/// Chunks are contiguous and in order, so concatenating per-chunk sequences
/// reproduces item order `0..n` exactly, for any thread count.
pub fn run_chunked<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let chunk = n.div_ceil(threads);
    let nchunks = n.div_ceil(chunk);
    if threads == 1 {
        tel::counter("parallel.serial", 1);
        return (0..nchunks)
            .map(|c| f(c * chunk..((c + 1) * chunk).min(n)))
            .collect();
    }
    run_chunked_pooled(n, chunk, nchunks, f)
}

/// The pool arm of [`run_chunked`], outlined so the monomorphized entry
/// point stays small enough for the serial fast path (and the caller's
/// closure) to inline at every call site. Measured: leaving this inline
/// costs the *serial* train-step/PGD medians ~7%.
#[cold]
#[inline(never)]
fn run_chunked_pooled<R, F>(n: usize, chunk: usize, nchunks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = (0..nchunks).map(|_| None).collect();
    let out = SendPtr(slots.as_mut_ptr());
    let run = |c: usize| {
        let r = f(c * chunk..((c + 1) * chunk).min(n));
        // SAFETY: chunk indices are claimed exactly once each, so slot `c`
        // has a single writer; slots are read only after `pool_run` returns.
        unsafe {
            *out.get().add(c) = Some(r);
        }
    };
    pool_run(nchunks, false, &run);
    slots
        .into_iter()
        .map(|s| s.expect("every chunk ran"))
        .collect()
}

/// Maps each index in `0..n` to a value on worker threads; results are
/// returned **in index order**. The per-item closure must not depend on any
/// cross-item state (see the module contract).
pub fn par_map<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_chunked(n, threads, |range| range.map(&f).collect::<Vec<R>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Splits `out` into consecutive per-item regions of `item_len` elements,
/// groups the items into at most `threads` contiguous chunks, and calls
/// `f(item_range, chunk_region)` for each chunk (on persistent pool workers
/// plus the calling thread when `threads > 1`). Chunk regions are disjoint,
/// so writes cannot race.
///
/// `out.len()` must be a multiple of `item_len`.
pub fn par_chunks_mut<T, F>(out: &mut [T], item_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    if out.is_empty() || item_len == 0 {
        return;
    }
    debug_assert_eq!(out.len() % item_len, 0, "out must be item-aligned");
    let n = out.len() / item_len;
    let threads = threads.clamp(1, n);
    let chunk = n.div_ceil(threads);
    let nchunks = n.div_ceil(chunk);
    if threads == 1 {
        tel::counter("parallel.serial", 1);
        f(0..n, out);
        return;
    }
    par_chunks_mut_pooled(out, item_len, n, chunk, nchunks, f);
}

/// The pool arm of [`par_chunks_mut`], outlined for the same reason as
/// [`run_chunked_pooled`]: keep the hot serial path inlinable.
#[cold]
#[inline(never)]
fn par_chunks_mut_pooled<T, F>(
    out: &mut [T],
    item_len: usize,
    n: usize,
    chunk: usize,
    nchunks: usize,
    f: F,
) where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    let base = SendPtr(out.as_mut_ptr());
    let run = |c: usize| {
        let start = c * chunk;
        let end = ((c + 1) * chunk).min(n);
        // SAFETY: chunk `c` covers items [start, end), a region disjoint
        // from every other chunk's; each chunk index is claimed exactly
        // once, so no two threads alias the slice.
        let region = unsafe {
            std::slice::from_raw_parts_mut(
                base.get().add(start * item_len),
                (end - start) * item_len,
            )
        };
        f(start..end, region);
    };
    pool_run(nchunks, false, &run);
}

/// Splits `out` into consecutive per-item regions of `item_len` elements and
/// calls `f(item_index, item_region)` for every item, fanning contiguous
/// item chunks out to worker threads. Item regions are disjoint, so writes
/// cannot race and results are identical for any thread count.
///
/// `out.len()` must be a multiple of `item_len`.
pub fn par_items_mut<T, F>(out: &mut [T], item_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut(out, item_len, threads, |range, region| {
        for (k, item) in region.chunks_mut(item_len).enumerate() {
            f(range.start + k, item);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_index_order() {
        for threads in [1, 2, 3, 7] {
            let got = par_map(10, threads, |i| i * i);
            assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_chunked_concatenation_is_item_order() {
        for threads in [1, 2, 4] {
            let flat: Vec<usize> = run_chunked(9, threads, |r| r.collect::<Vec<_>>())
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(flat, (0..9).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_items_mut_writes_disjoint_regions() {
        for threads in [1, 2, 4] {
            let mut out = vec![0.0f32; 12];
            par_items_mut(&mut out, 3, threads, |i, item| {
                for (k, v) in item.iter_mut().enumerate() {
                    *v = (i * 10 + k) as f32;
                }
            });
            let expect: Vec<f32> = (0..4)
                .flat_map(|i| (0..3).map(move |k| (i * 10 + k) as f32))
                .collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn par_chunks_mut_covers_all_items_once() {
        for threads in [1, 2, 3, 5] {
            let mut out = vec![0u32; 20]; // 10 items of length 2
            par_chunks_mut(&mut out, 2, threads, |range, region| {
                assert_eq!(region.len(), range.len() * 2);
                for (k, item) in region.chunks_mut(2).enumerate() {
                    item[0] += (range.start + k) as u32;
                    item[1] += 1;
                }
            });
            for (i, item) in out.chunks(2).enumerate() {
                assert_eq!(item, &[i as u32, 1], "item {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(par_map(0, 4, |i| i).is_empty());
        assert!(run_chunked(0, 4, |r| r.len()).is_empty());
        assert!(pool_broadcast(0, |i| i).is_empty());
        let mut empty: Vec<f32> = Vec::new();
        par_items_mut(&mut empty, 4, 4, |_, _| panic!("no items"));
        let mut some = vec![1.0f32; 4];
        par_items_mut(&mut some, 0, 4, |_, _| panic!("zero item_len"));
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let base = num_threads();
        {
            let _g = with_threads(5);
            assert_eq!(num_threads(), 5);
            assert_eq!(threads_for(1), 5, "override bypasses work scaling");
            {
                let _inner = with_threads(2);
                assert_eq!(num_threads(), 2);
            }
            assert_eq!(num_threads(), 5);
        }
        assert_eq!(num_threads(), base);
    }

    #[test]
    fn with_threads_zero_clamps_to_one() {
        let _g = with_threads(0);
        assert_eq!(num_threads(), 1);
    }

    #[test]
    fn threads_for_scales_with_work() {
        // Without an override, tiny jobs stay serial.
        assert_eq!(threads_for(0), 1);
        assert!(threads_for(usize::MAX / 2) >= threads_for(0));
    }

    #[test]
    fn results_bitwise_equal_across_thread_counts() {
        // A float-heavy per-item computation: identical bits for any split.
        let compute = |threads: usize| {
            par_map(33, threads, |i| {
                let mut acc = 0.0f32;
                for t in 0..100 {
                    acc += ((i * 31 + t) as f32).sin() * 0.01;
                }
                acc
            })
        };
        let one = compute(1);
        for threads in [2, 3, 8] {
            assert_eq!(one, compute(threads));
        }
    }

    #[test]
    fn workers_persist_across_jobs() {
        let _ = par_map(8, 4, |i| i);
        let after_first = pool_workers();
        assert!(after_first >= 1, "parallel job must spawn pool workers");
        let _ = par_map(8, 4, |i| i);
        assert_eq!(
            pool_workers(),
            after_first.max(pool_workers()),
            "jobs reuse workers instead of respawning"
        );
        assert!(pool_workers() <= POOL_MAX_WORKERS);
    }

    #[test]
    fn broadcast_runs_off_the_submitting_thread() {
        let me = std::thread::current().id();
        let ids = pool_broadcast(3, |i| (i, std::thread::current().id()));
        assert_eq!(ids.len(), 3);
        for (i, (idx, id)) in ids.iter().enumerate() {
            assert_eq!(*idx, i, "results come back in index order");
            assert_ne!(*id, me, "broadcast chunks never run on the submitter");
        }
    }

    #[test]
    fn workers_inherit_submitter_budget() {
        let _g = with_threads(7);
        let seen = pool_broadcast(2, |_| num_threads());
        assert_eq!(seen, vec![7, 7], "submitter override is captured per job");
        // And restored after the job: workers fall back to env default.
        let after = pool_broadcast(1, |_| num_threads());
        assert_eq!(after, vec![7], "budget applies per participation");
        drop(_g);
        let bare = pool_broadcast(1, |_| OVERRIDE.with(Cell::get));
        assert_eq!(bare, vec![None], "no stale override leaks onto workers");
    }

    #[test]
    fn concurrent_tiny_jobs_stress() {
        // Regression stress for the discovery/completion race: tiny jobs
        // finish while workers are still between discovering them (pool
        // lock) and registering (job lock). Registration must refuse a
        // finished job, or a freed stack Job gets dereferenced.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..250 {
                        let got = par_map(3, 2, move |j| t * 1000 + i * 3 + j);
                        let want: Vec<usize> = (0..3).map(|j| t * 1000 + i * 3 + j).collect();
                        assert_eq!(got, want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panic_propagates_to_submitter() {
        let _ = par_map(8, 4, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn panicked_job_leaves_pool_usable() {
        let caught = panic::catch_unwind(|| {
            let _ = par_map(8, 4, |i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            });
        });
        assert!(caught.is_err());
        let got = par_map(6, 3, |i| i * 2);
        assert_eq!(got, vec![0, 2, 4, 6, 8, 10]);
    }
}
