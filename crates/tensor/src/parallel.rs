//! Deterministic work-splitting across scoped threads.
//!
//! Every hot loop in the workspace that fans out across threads goes through
//! this module so the policy lives in one place:
//!
//! * **Thread count.** [`num_threads`] honors an `IBRAR_THREADS` environment
//!   override (read once per process), falling back to
//!   `std::thread::available_parallelism`. Tests and benchmarks can force a
//!   count for the current thread with [`with_threads`].
//! * **Fixed chunk boundaries, no reduction-order dependence.** Work is
//!   split into contiguous index ranges; each worker writes only to its own
//!   disjoint output region (or returns a per-chunk value that the caller
//!   combines *sequentially in index order*). Because chunks are contiguous
//!   and in-order, the flattened item sequence is identical for any thread
//!   count — so callers that follow the contract below get **bitwise
//!   identical** results whether `IBRAR_THREADS` is 1, 4, or unset.
//!
//! # Caller contract
//!
//! Per-item work must depend only on the item index and shared read-only
//! inputs. Floating-point accumulation **across** items must never happen
//! inside a chunk-sized partial sum that is later combined (that would make
//! results depend on chunk boundaries); instead return per-item values from
//! [`par_map`] and fold them serially, or accumulate exactly-representable
//! values (integers, disjoint writes).
//!
//! # Examples
//!
//! ```
//! use ibrar_tensor::parallel;
//!
//! let doubled = parallel::par_map(4, parallel::num_threads(), |i| i * 2);
//! assert_eq!(doubled, vec![0, 2, 4, 6]);
//!
//! let _guard = parallel::with_threads(3);
//! assert_eq!(parallel::num_threads(), 3);
//! ```

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

use ibrar_telemetry as tel;

/// Below roughly this many "work units" (caller-estimated scalar operations)
/// per extra thread, spawning is not worth it; see [`threads_for`].
pub const MIN_WORK_PER_THREAD: usize = 32 * 1024;

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        let n = match std::env::var("IBRAR_THREADS") {
            Ok(v) => v.trim().parse::<usize>().ok().filter(|&n| n >= 1),
            Err(_) => None,
        }
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        });
        tel::gauge("parallel.threads", n as f64);
        n
    })
}

/// The worker-thread budget for the current thread: the innermost
/// [`with_threads`] override if one is active, else `IBRAR_THREADS`, else
/// the machine's available parallelism. Always ≥ 1.
pub fn num_threads() -> usize {
    OVERRIDE.with(Cell::get).unwrap_or_else(env_threads).max(1)
}

/// Thread budget scaled to a caller-estimated amount of work: small jobs run
/// serially rather than paying thread-spawn latency. An active
/// [`with_threads`] override is returned unscaled so tests and benchmarks
/// can force the parallel path on small fixtures.
pub fn threads_for(work: usize) -> usize {
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    let cap = 1 + work / MIN_WORK_PER_THREAD;
    env_threads().min(cap).max(1)
}

/// RAII guard restoring the previous thread-count override on drop.
#[derive(Debug)]
pub struct ThreadScope {
    prev: Option<usize>,
}

impl Drop for ThreadScope {
    fn drop(&mut self) {
        OVERRIDE.with(|o| o.set(self.prev));
    }
}

/// Overrides [`num_threads`] for the current thread until the returned guard
/// is dropped. Nests; `0` is treated as `1`.
#[must_use = "the override ends when the guard drops"]
pub fn with_threads(n: usize) -> ThreadScope {
    let prev = OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    ThreadScope { prev }
}

/// Splits `0..n` into at most `threads` contiguous chunks, runs `f` on each
/// chunk (on scoped worker threads when `threads > 1`), and returns the
/// per-chunk results **in chunk order**.
///
/// Chunks are contiguous and in order, so concatenating per-chunk sequences
/// reproduces item order `0..n` exactly, for any thread count.
pub fn run_chunked<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let chunk = n.div_ceil(threads);
    let nchunks = n.div_ceil(chunk);
    if threads == 1 {
        tel::counter("parallel.serial", 1);
        return (0..nchunks)
            .map(|c| f(c * chunk..((c + 1) * chunk).min(n)))
            .collect();
    }
    tel::counter("parallel.scopes", 1);
    tel::counter("parallel.chunks", nchunks as u64);
    let mut slots: Vec<Option<R>> = (0..nchunks).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (c, slot) in slots.iter_mut().enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                *slot = Some(f(c * chunk..((c + 1) * chunk).min(n)));
            });
        }
    })
    .expect("parallel worker panicked");
    slots
        .into_iter()
        .map(|s| s.expect("every chunk ran"))
        .collect()
}

/// Maps each index in `0..n` to a value on worker threads; results are
/// returned **in index order**. The per-item closure must not depend on any
/// cross-item state (see the module contract).
pub fn par_map<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_chunked(n, threads, |range| range.map(&f).collect::<Vec<R>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Splits `out` into consecutive per-item regions of `item_len` elements,
/// groups the items into at most `threads` contiguous chunks, and calls
/// `f(item_range, chunk_region)` for each chunk (on scoped worker threads
/// when `threads > 1`). Chunk regions are disjoint, so writes cannot race.
///
/// `out.len()` must be a multiple of `item_len`.
pub fn par_chunks_mut<T, F>(out: &mut [T], item_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    if out.is_empty() || item_len == 0 {
        return;
    }
    debug_assert_eq!(out.len() % item_len, 0, "out must be item-aligned");
    let n = out.len() / item_len;
    let threads = threads.clamp(1, n);
    let chunk = n.div_ceil(threads);
    if threads == 1 {
        tel::counter("parallel.serial", 1);
        f(0..n, out);
        return;
    }
    tel::counter("parallel.scopes", 1);
    tel::counter("parallel.chunks", n.div_ceil(chunk) as u64);
    crossbeam::thread::scope(|scope| {
        for (c, region) in out.chunks_mut(chunk * item_len).enumerate() {
            let f = &f;
            let start = c * chunk;
            scope.spawn(move |_| {
                let items = region.len() / item_len;
                f(start..start + items, region);
            });
        }
    })
    .expect("parallel worker panicked");
}

/// Splits `out` into consecutive per-item regions of `item_len` elements and
/// calls `f(item_index, item_region)` for every item, fanning contiguous
/// item chunks out to worker threads. Item regions are disjoint, so writes
/// cannot race and results are identical for any thread count.
///
/// `out.len()` must be a multiple of `item_len`.
pub fn par_items_mut<T, F>(out: &mut [T], item_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut(out, item_len, threads, |range, region| {
        for (k, item) in region.chunks_mut(item_len).enumerate() {
            f(range.start + k, item);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_index_order() {
        for threads in [1, 2, 3, 7] {
            let got = par_map(10, threads, |i| i * i);
            assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_chunked_concatenation_is_item_order() {
        for threads in [1, 2, 4] {
            let flat: Vec<usize> = run_chunked(9, threads, |r| r.collect::<Vec<_>>())
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(flat, (0..9).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_items_mut_writes_disjoint_regions() {
        for threads in [1, 2, 4] {
            let mut out = vec![0.0f32; 12];
            par_items_mut(&mut out, 3, threads, |i, item| {
                for (k, v) in item.iter_mut().enumerate() {
                    *v = (i * 10 + k) as f32;
                }
            });
            let expect: Vec<f32> = (0..4)
                .flat_map(|i| (0..3).map(move |k| (i * 10 + k) as f32))
                .collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn par_chunks_mut_covers_all_items_once() {
        for threads in [1, 2, 3, 5] {
            let mut out = vec![0u32; 20]; // 10 items of length 2
            par_chunks_mut(&mut out, 2, threads, |range, region| {
                assert_eq!(region.len(), range.len() * 2);
                for (k, item) in region.chunks_mut(2).enumerate() {
                    item[0] += (range.start + k) as u32;
                    item[1] += 1;
                }
            });
            for (i, item) in out.chunks(2).enumerate() {
                assert_eq!(item, &[i as u32, 1], "item {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(par_map(0, 4, |i| i).is_empty());
        assert!(run_chunked(0, 4, |r| r.len()).is_empty());
        let mut empty: Vec<f32> = Vec::new();
        par_items_mut(&mut empty, 4, 4, |_, _| panic!("no items"));
        let mut some = vec![1.0f32; 4];
        par_items_mut(&mut some, 0, 4, |_, _| panic!("zero item_len"));
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let base = num_threads();
        {
            let _g = with_threads(5);
            assert_eq!(num_threads(), 5);
            assert_eq!(threads_for(1), 5, "override bypasses work scaling");
            {
                let _inner = with_threads(2);
                assert_eq!(num_threads(), 2);
            }
            assert_eq!(num_threads(), 5);
        }
        assert_eq!(num_threads(), base);
    }

    #[test]
    fn with_threads_zero_clamps_to_one() {
        let _g = with_threads(0);
        assert_eq!(num_threads(), 1);
    }

    #[test]
    fn threads_for_scales_with_work() {
        // Without an override, tiny jobs stay serial.
        assert_eq!(threads_for(0), 1);
        assert!(threads_for(usize::MAX / 2) >= threads_for(0));
    }

    #[test]
    fn results_bitwise_equal_across_thread_counts() {
        // A float-heavy per-item computation: identical bits for any split.
        let compute = |threads: usize| {
            par_map(33, threads, |i| {
                let mut acc = 0.0f32;
                for t in 0..100 {
                    acc += ((i * 31 + t) as f32).sin() * 0.01;
                }
                acc
            })
        };
        let one = compute(1);
        for threads in [2, 3, 8] {
            assert_eq!(one, compute(threads));
        }
    }
}
