//! Wire-format compatibility: v1 frames (no trace flag) must keep working
//! against a v2 server, v2 frames must round-trip the trace id end to end,
//! and an unknown opcode must come back as a *typed* rejection on a live
//! connection instead of a dropped socket.

use ibrar_nn::{VggConfig, VggMini};
use ibrar_serve::protocol::{
    decode_request_traced, decode_response, encode_request, read_frame, write_frame, Request,
    Response,
};
use ibrar_serve::{
    save_to_path, Client, MetricsFormat, ModelRegistry, Opcode, ServeError, Server, ServerConfig,
    Status, TraceId, TRACE_FLAG,
};
use ibrar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "ibrar-serve-compat-{}-{tag}-{n}.ibsc",
        std::process::id()
    ))
}

fn image() -> Tensor {
    Tensor::from_fn(&[3, 16, 16], |idx| {
        ((idx[0] * 7 + idx[1] * 3 + idx[2]) % 17) as f32 / 17.0
    })
}

fn start_server() -> (Server, PathBuf) {
    let mut rng = StdRng::seed_from_u64(42);
    let model = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
    let path = temp_path("model");
    save_to_path(&model, &path).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    let ckpt = path.clone();
    registry.register("vgg", ckpt, move || {
        let mut rng = StdRng::seed_from_u64(999);
        Ok(Box::new(VggMini::new(VggConfig::tiny(10), &mut rng)?))
    });
    let server = Server::start("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    (server, path)
}

#[test]
fn v1_golden_frames_decode_unchanged() {
    // Literal v1 bytes, pinned: a Ping body is exactly one zero byte, and
    // no v1 opcode ever has the high bit set.
    let (req, trace) = decode_request_traced(bytes::Bytes::from_static(&[0x00])).unwrap();
    assert!(matches!(req, Request::Ping), "{req:?}");
    assert_eq!(trace, None);

    // The v1 encoder is still what `encode_request` produces: no trace
    // flag on the opcode byte, byte-for-byte.
    let body = encode_request(&Request::Classify {
        model: "vgg".into(),
        deadline_ms: 250,
        image: image(),
        with_logits: false,
    });
    assert_eq!(body[0], Opcode::Classify as u8);
    assert_eq!(body[0] & TRACE_FLAG, 0);
    let (req, trace) = decode_request_traced(body).unwrap();
    assert_eq!(trace, None);
    match req {
        Request::Classify {
            model, deadline_ms, ..
        } => {
            assert_eq!(model, "vgg");
            assert_eq!(deadline_ms, 250);
        }
        other => panic!("wrong decode: {other:?}"),
    }
}

#[test]
fn v1_frames_are_served_and_get_server_minted_trace_ids() {
    let (mut server, path) = start_server();
    // Raw socket speaking strict v1: no trace flag anywhere.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let body = encode_request(&Request::Classify {
        model: "vgg".into(),
        deadline_ms: 0,
        image: image(),
        with_logits: false,
    });
    assert_eq!(body[0] & TRACE_FLAG, 0);
    write_frame(&mut stream, &body).unwrap();
    let resp = read_frame(&mut stream).unwrap().unwrap();
    match decode_response(Opcode::Classify, resp).unwrap() {
        Response::Classified { logits: None, .. } => {}
        other => panic!("wrong response: {other:?}"),
    }
    // The server minted an id at ingress: the flight record exists and
    // carries a nonzero trace.
    assert_eq!(server.flight().len(), 1);
    let dump = server.flight().dump_json();
    assert!(!dump.contains("00000000000000000000000000000000"), "{dump}");

    drop(stream);
    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn v2_trace_id_round_trips_to_the_flight_recorder() {
    let (mut server, path) = start_server();
    let mut client = Client::connect(server.addr()).unwrap();

    let minted = TraceId::generate();
    let (label, echoed) = client
        .classify_traced("vgg", &image(), 0, Some(minted))
        .unwrap();
    assert_eq!(echoed, minted);
    assert!(label < 10);
    // The exact client-minted id shows up in the server's flight dump.
    let dump = client.metrics(MetricsFormat::Flight).unwrap();
    assert!(dump.contains(&minted.to_string()), "{dump}");

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn unknown_opcode_is_typed_and_keeps_the_connection() {
    let (mut server, path) = start_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    // Opcode 0x48 exists in no protocol version (and has no trace flag).
    write_frame(&mut stream, &[0x48]).unwrap();
    let resp = read_frame(&mut stream).unwrap().unwrap();
    match decode_response(Opcode::Ping, resp).unwrap() {
        Response::Error(Status::UnsupportedOpcode, msg) => {
            assert!(msg.contains("opcode"), "{msg}");
        }
        other => panic!("wrong response: {other:?}"),
    }

    // Same for a v2-flagged unknown opcode carrying a trace id.
    let mut body = vec![0x48 | TRACE_FLAG];
    body.extend_from_slice(TraceId::generate().as_bytes());
    write_frame(&mut stream, &body).unwrap();
    let resp = read_frame(&mut stream).unwrap().unwrap();
    match decode_response(Opcode::Ping, resp).unwrap() {
        Response::Error(Status::UnsupportedOpcode, _) => {}
        other => panic!("wrong response: {other:?}"),
    }

    // The connection survived both rejections.
    write_frame(&mut stream, &[0x00]).unwrap();
    let resp = read_frame(&mut stream).unwrap().unwrap();
    assert_eq!(decode_response(Opcode::Ping, resp).unwrap(), Response::Pong);

    // And the typed error maps back to ServeError::Unsupported on a real
    // client.
    let mut client = Client::connect(server.addr()).unwrap();
    // Force an Unsupported error via error_for round-trip: a Metrics call
    // is supported here, so instead check the protocol-level mapping.
    assert!(matches!(
        ibrar_serve::protocol::error_for(Status::UnsupportedOpcode, "x".into()),
        ServeError::Unsupported(_)
    ));
    client.ping().unwrap();

    drop(stream);
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(path);
}
