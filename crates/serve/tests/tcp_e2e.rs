//! End-to-end protocol tests: a real server on an ephemeral port, a real
//! blocking client, typed errors across the wire, and a clean shutdown.

use ibrar_nn::{ImageModel, Mode, Session, VggConfig, VggMini};
use ibrar_serve::{
    save_to_path, Client, EngineConfig, ModelRegistry, ProbeSpec, ServeError, Server, ServerConfig,
};
use ibrar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "ibrar-serve-e2e-{}-{tag}-{n}.ibsc",
        std::process::id()
    ))
}

fn image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], |idx| {
        ((idx[0] * 29 + idx[1] * 5 + idx[2] * 11 + i * 3) % 23) as f32 / 23.0
    })
}

/// Builds the reference model, saves its checkpoint, and returns a running
/// server plus the path (for cleanup) and a local copy of the model.
fn start_server(config: ServerConfig) -> (Server, PathBuf, Arc<dyn ImageModel>) {
    let mut rng = StdRng::seed_from_u64(42);
    let model = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
    let path = temp_path("model");
    save_to_path(&model, &path).unwrap();

    let registry = Arc::new(ModelRegistry::new());
    let ckpt = path.clone();
    // Different init seed than the donor: every correct answer below proves
    // the checkpoint actually loaded.
    registry.register("vgg", ckpt, move || {
        let mut rng = StdRng::seed_from_u64(999);
        Ok(Box::new(VggMini::new(VggConfig::tiny(10), &mut rng)?))
    });
    let server = Server::start("127.0.0.1:0", registry, config).unwrap();
    (server, path, Arc::new(model))
}

fn local_logits(model: &dyn ImageModel, img: &Tensor) -> Vec<f32> {
    let tape = ibrar_autograd::Tape::new();
    let sess = Session::new(&tape);
    let x = tape.leaf(Tensor::stack(std::slice::from_ref(img)).unwrap());
    let out = model.forward(&sess, x, Mode::Eval).unwrap();
    out.logits.value().row(0).unwrap().data().to_vec()
}

#[test]
fn classify_over_tcp_matches_local_forward_bitwise() {
    let (mut server, path, model) = start_server(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    client.ping().unwrap();
    for i in 0..5 {
        let img = image(i);
        let want = local_logits(model.as_ref(), &img);
        let (label, logits) = client.classify_with_logits("vgg", &img, 0).unwrap();
        let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        let got_bits: Vec<u32> = logits.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got_bits, want_bits, "image {i} logits drifted over TCP");

        let mut best = 0;
        for (j, &v) in want.iter().enumerate() {
            if v > want[best] {
                best = j;
            }
        }
        assert_eq!(label as usize, best);
        assert_eq!(client.classify("vgg", &img, 0).unwrap(), label);
    }

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn unknown_model_and_bad_shape_are_typed() {
    let (mut server, path, _model) = start_server(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    assert!(matches!(
        client.classify("nope", &image(0), 0),
        Err(ServeError::UnknownModel(name)) if name.contains("nope")
    ));
    assert!(matches!(
        client.classify("vgg", &Tensor::full(&[1, 2, 2], 0.1), 0),
        Err(ServeError::InvalidInput(_))
    ));
    // The connection survives typed errors.
    client.ping().unwrap();

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn robustness_probe_is_deterministic_and_consistent() {
    let (mut server, path, model) = start_server(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let img = image(2);
    let want = local_logits(model.as_ref(), &img);
    let mut clean_pred = 0;
    for (j, &v) in want.iter().enumerate() {
        if v > want[clean_pred] {
            clean_pred = j;
        }
    }

    for spec in [ProbeSpec::fgsm_default(), ProbeSpec::pgd_default()] {
        let a = client
            .robustness_probe("vgg", &img, clean_pred as u32, spec)
            .unwrap();
        let b = client
            .robustness_probe("vgg", &img, clean_pred as u32, spec)
            .unwrap();
        assert_eq!(a, b, "probe must be deterministic for {spec:?}");
        assert_eq!(a.clean_pred as usize, clean_pred);
        assert!(a.clean_correct);
        assert_eq!(a.adv_correct, a.adv_pred as usize == clean_pred);
    }

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn queue_full_and_deadline_cross_the_wire_typed() {
    let (mut server, path, _model) = start_server(ServerConfig {
        engine: EngineConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            queue_capacity: 3,
            workers: 1,
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();

    // First request lazily creates the engine.
    client.classify("vgg", &image(0), 0).unwrap();
    let engine = server.engine("vgg").unwrap();

    // Park the batcher, feed it one sacrificial job, and wait until it holds
    // that job (queue drained) so capacity accounting is deterministic.
    let gate = engine.pause();
    let _sacrificial = engine.submit(image(1), None).unwrap();
    let mut spins = 0;
    while engine.queue_depth() != 0 {
        std::thread::sleep(Duration::from_millis(1));
        spins += 1;
        assert!(spins < 5000, "batcher never picked up the sacrificial job");
    }
    let held: Vec<_> = (0..2)
        .map(|i| engine.submit(image(i + 2), None).unwrap())
        .collect();

    // A 5 ms-deadline request takes the last queue slot and waits behind
    // the parked batcher. It blocks until the gate opens, so it runs on its
    // own connection.
    let addr = server.addr();
    let doomed = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.classify("vgg", &image(7), 5)
    });
    let mut spins = 0;
    while engine.queue_depth() != 3 {
        std::thread::sleep(Duration::from_millis(1));
        spins += 1;
        assert!(spins < 5000, "doomed request never reached the queue");
    }

    // Queue now at capacity: typed queue-full travels over TCP.
    assert!(matches!(
        client.classify("vgg", &image(9), 0),
        Err(ServeError::QueueFull)
    ));

    // Let the doomed request's deadline lapse, then release the batcher.
    std::thread::sleep(Duration::from_millis(50));
    drop(gate);
    assert!(matches!(
        doomed.join().unwrap(),
        Err(ServeError::DeadlineExceeded)
    ));
    for p in held {
        p.wait().unwrap();
    }

    // Server still healthy afterwards.
    client.ping().unwrap();
    client.classify("vgg", &image(3), 0).unwrap();

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(path);
}
