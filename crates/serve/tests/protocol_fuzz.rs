//! Seeded protocol robustness fuzz against a live fleet server. The
//! contract being pinned:
//!
//! * a frame that *reads* (length prefix honored) but does not *decode* —
//!   unknown opcode, truncated body, trailing garbage — earns a typed
//!   error response and the connection survives;
//! * a frame that cannot be read safely — oversized length prefix — closes
//!   that connection, and the server keeps accepting new ones;
//! * a client vanishing mid-frame harms nobody else.
//!
//! Everything is driven by a SplitMix64 stream, so a failure reproduces
//! from the seed printed in the assertion message.

use ibrar_nn::{VggConfig, VggMini};
use ibrar_serve::protocol::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, MAX_FRAME,
};
use ibrar_serve::{
    save_to_path, Client, ModelRegistry, Opcode, Server, ServerConfig, Status, TRACE_FLAG,
};
use ibrar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Same-constant SplitMix64 as the serve trace module; local copy keeps
/// the fuzz stream independent of crate internals.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn temp_path() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("ibrar-serve-fuzz-{}-{n}.ibsc", std::process::id()))
}

fn start_fleet() -> (Server, PathBuf) {
    let mut rng = StdRng::seed_from_u64(42);
    let model = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
    let path = temp_path();
    save_to_path(&model, &path).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry.register("vgg", path.clone(), move || {
        let mut rng = StdRng::seed_from_u64(999);
        Ok(Box::new(VggMini::new(VggConfig::tiny(10), &mut rng)?))
    });
    let server = Server::start(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            replicas: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (server, path)
}

fn image() -> Tensor {
    Tensor::from_fn(&[3, 16, 16], |idx| {
        ((idx[0] * 7 + idx[1] * 3 + idx[2]) % 17) as f32 / 17.0
    })
}

/// One exchange on an existing connection; panics describe the payload.
fn exchange(stream: &mut TcpStream, body: &[u8], what: &str) -> Response {
    write_frame(stream, body).unwrap_or_else(|e| panic!("{what}: write failed: {e}"));
    let resp = read_frame(stream)
        .unwrap_or_else(|e| panic!("{what}: read failed: {e}"))
        .unwrap_or_else(|| panic!("{what}: server closed the connection"));
    decode_response(Opcode::Ping, resp).unwrap_or_else(|e| panic!("{what}: bad response: {e}"))
}

fn assert_alive(stream: &mut TcpStream, what: &str) {
    match exchange(stream, &[Opcode::Ping as u8], what) {
        Response::Pong => {}
        other => panic!("{what}: ping answered {other:?}"),
    }
}

#[test]
fn unknown_opcodes_are_typed_and_never_kill_the_connection() {
    let (mut server, path) = start_fleet();
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    // Every unassigned low-7-bit opcode (0..=6 are taken, Rollout last),
    // with and without the trace flag.
    for op in 7u8..128 {
        let what = format!("opcode {op:#04x}");
        match exchange(&mut stream, &[op], &what) {
            Response::Error(Status::UnsupportedOpcode, msg) => {
                assert!(msg.contains("opcode"), "{what}: {msg}");
            }
            other => panic!("{what}: expected typed rejection, got {other:?}"),
        }
        let mut v2 = vec![op | TRACE_FLAG];
        v2.extend_from_slice(&[0xAB; 16]);
        match exchange(&mut stream, &v2, &what) {
            Response::Error(Status::UnsupportedOpcode, _) => {}
            other => panic!("{what} (v2): expected typed rejection, got {other:?}"),
        }
    }
    assert_alive(&mut stream, "after unknown-opcode sweep");

    drop(stream);
    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn truncated_and_mangled_frames_get_typed_errors_on_a_live_connection() {
    let (mut server, path) = start_fleet();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut mix = Mix(0xF0C2_5EED);

    let valid = encode_request(&Request::Classify {
        model: "vgg".into(),
        deadline_ms: 0,
        image: image(),
        with_logits: false,
    });

    // Truncations of a valid frame at seeded offsets (plus the structural
    // corners: empty body, opcode-only, one-off-full).
    let mut cuts: Vec<usize> = vec![0, 1, valid.len() - 1];
    for _ in 0..40 {
        cuts.push(mix.below(valid.len() as u64) as usize);
    }
    for cut in cuts {
        let what = format!("classify truncated to {cut} bytes");
        match exchange(&mut stream, &valid[..cut], &what) {
            Response::Error(Status::BadRequest | Status::UnsupportedOpcode, msg) => {
                assert!(!msg.is_empty(), "{what}: empty error message");
            }
            other => panic!("{what}: expected typed rejection, got {other:?}"),
        }
    }

    // Trailing garbage after a complete request is rejected, not ignored.
    let mut padded = valid.to_vec();
    padded.extend_from_slice(&[0x5A; 3]);
    match exchange(&mut stream, &padded, "classify with trailing bytes") {
        Response::Error(Status::BadRequest, msg) => {
            assert!(msg.contains("trailing"), "{msg}");
        }
        other => panic!("trailing bytes: expected BadRequest, got {other:?}"),
    }

    // Seeded garbage bodies behind each *known* opcode byte. Noise can
    // occasionally form a valid empty-body request (Ping, Health), so the
    // assertion is on the raw frame: the server always answers with a
    // framed reply whose status byte is a known code — never a panic, a
    // hang, or a dropped connection.
    for round in 0..60 {
        let op = [0u8, 1, 2, 3, 4, 5, 6][mix.below(7) as usize];
        let flag = if mix.below(2) == 0 { 0 } else { TRACE_FLAG };
        let len = mix.below(64) as usize;
        let mut body = vec![op | flag];
        for _ in 0..len {
            body.push(mix.next() as u8);
        }
        let what = format!("garbage round {round} (opcode {op}, flag {flag:#x}, len {len})");
        write_frame(&mut stream, &body).unwrap_or_else(|e| panic!("{what}: write failed: {e}"));
        let resp = read_frame(&mut stream)
            .unwrap_or_else(|e| panic!("{what}: read failed: {e}"))
            .unwrap_or_else(|| panic!("{what}: server closed the connection"));
        assert!(!resp.is_empty(), "{what}: empty response frame");
        assert!(resp[0] <= 7, "{what}: unknown status byte {}", resp[0]);
    }
    assert_alive(&mut stream, "after mangled-frame sweep");

    // The whole time, a well-formed client on another connection works.
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.classify("vgg", &image(), 0).unwrap() < 10);

    drop(stream);
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn oversized_prefix_closes_only_that_connection() {
    let (mut server, path) = start_fleet();

    // A length prefix beyond MAX_FRAME must not trigger a 4 GiB allocation;
    // the server abandons the connection instead of reading the "body".
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let huge = (MAX_FRAME as u32) + 1;
    stream.write_all(&huge.to_le_bytes()).unwrap();
    stream.write_all(&[0u8; 64]).unwrap();
    let closed = match read_frame(&mut stream) {
        Ok(None) => true, // clean close
        Err(_) => true,   // reset mid-read
        Ok(Some(body)) => panic!("server answered an oversized frame: {body:?}"),
    };
    assert!(closed);

    // The listener is unharmed: fresh connections serve normally.
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();

    drop(stream);
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn mid_frame_disconnects_leave_the_server_accepting() {
    let (mut server, path) = start_fleet();
    let mut mix = Mix(0xDEAD_F00D);

    for round in 0..8 {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Promise a body, deliver a seeded fraction of it, vanish.
        let promised = 32 + mix.below(1024) as u32;
        let delivered = mix.below(promised as u64) as usize;
        stream.write_all(&promised.to_le_bytes()).unwrap();
        let junk: Vec<u8> = (0..delivered).map(|_| mix.next() as u8).collect();
        stream.write_all(&junk).unwrap();
        drop(stream);

        let mut client = Client::connect(server.addr()).unwrap();
        client
            .ping()
            .unwrap_or_else(|e| panic!("round {round}: server stopped accepting: {e}"));
    }

    server.shutdown();
    let _ = std::fs::remove_file(path);
}
