//! Fleet dispatch must be invisible in the bits: the same request batch
//! routed through 1/2/4 replicas, under either dispatch policy and either
//! kernel thread count, yields `to_bits`-identical logits to a
//! single-engine forward on the caller's thread. A replica is a placement
//! decision, never a numerical one.

use ibrar_nn::{ImageModel, Mode, Session, VggConfig, VggMini};
use ibrar_serve::{DispatchPolicy, EngineConfig, PoolConfig, ReplicaPool, TraceId};
use ibrar_tensor::{parallel, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const IMAGES: usize = 8;

fn model() -> Arc<dyn ImageModel> {
    let mut rng = StdRng::seed_from_u64(7);
    Arc::new(VggMini::new(VggConfig::tiny(10), &mut rng).unwrap())
}

fn image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], |idx| {
        ((idx[0] * 31 + idx[1] * 7 + idx[2] * 3 + i * 13) % 17) as f32 / 17.0
    })
}

/// Deterministic per-image trace id — under consistent hash this is also
/// the routing key, so the dispatch pattern is reproducible run to run.
fn trace(i: usize) -> TraceId {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&(0x5EED_0000u64 + i as u64).to_le_bytes());
    bytes[8..].copy_from_slice(&(!(i as u64)).to_le_bytes());
    TraceId::from_bytes(bytes)
}

/// Reference: single-image forward on the caller's thread, as bits.
fn single_forward(model: &dyn ImageModel, img: &Tensor) -> Vec<u32> {
    let tape = ibrar_autograd::Tape::new();
    let sess = Session::new(&tape);
    let x = tape.leaf(Tensor::stack(std::slice::from_ref(img)).unwrap());
    let out = model.forward(&sess, x, Mode::Eval).unwrap();
    out.logits
        .value()
        .row(0)
        .unwrap()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn fleet_logits_are_bitwise_identical_to_single_engine_forward() {
    let model = model();

    // The reference is computed single-threaded; the fleet must match it
    // bit for bit even when kernels run on 4 threads.
    let reference: Vec<Vec<u32>> = {
        let _one = parallel::with_threads(1);
        (0..IMAGES)
            .map(|i| single_forward(model.as_ref(), &image(i)))
            .collect()
    };

    for &threads in &[1usize, 4] {
        let _guard = parallel::with_threads(threads);
        for &replicas in &[1usize, 2, 4] {
            for policy in [
                DispatchPolicy::LeastQueueDepth,
                DispatchPolicy::ConsistentHash,
            ] {
                let pool = ReplicaPool::new(
                    Arc::clone(&model),
                    PoolConfig {
                        replicas,
                        engine: EngineConfig {
                            max_batch: 4,
                            max_wait: Duration::from_millis(5),
                            queue_capacity: 64,
                            workers: 2,
                        },
                        policy,
                        max_in_flight: None,
                    },
                )
                .unwrap();

                // Submit the whole wave before waiting so requests really
                // spread across replicas and coalesce into batches.
                let pending: Vec<_> = (0..IMAGES)
                    .map(|i| pool.submit_traced(image(i), None, Some(trace(i))).unwrap())
                    .collect();
                for (i, p) in pending.into_iter().enumerate() {
                    let row = p.wait().unwrap();
                    let got: Vec<u32> = row.data().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(
                        got, reference[i],
                        "bits diverged: image {i}, replicas={replicas}, \
                         policy={policy}, threads={threads}"
                    );
                }
                pool.shutdown();
            }
        }
    }
}

#[test]
fn consistent_hash_pins_a_trace_to_one_replica() {
    // Affinity behind the bitwise guarantee: every submission of the same
    // trace id lands on the same replica, even when other replicas are
    // idle and least-depth would have spread the load.
    let pool = ReplicaPool::new(
        model(),
        PoolConfig {
            replicas: 4,
            policy: DispatchPolicy::ConsistentHash,
            ..PoolConfig::default()
        },
    )
    .unwrap();
    let replicas = pool.replicas();
    let gates: Vec<_> = replicas.iter().map(|r| r.engine().pause()).collect();

    let pending: Vec<_> = (0..3)
        .map(|_| pool.submit_traced(image(0), None, Some(trace(3))).unwrap())
        .collect();
    let homes: Vec<usize> = replicas
        .iter()
        .filter(|r| r.engine().in_flight() > 0)
        .map(|r| r.id())
        .collect();
    assert_eq!(homes.len(), 1, "one trace id spread across {homes:?}");
    assert_eq!(replicas[homes[0]].engine().in_flight(), 3);

    // The home replica is the router's first candidate, independent of load.
    let router = ibrar_serve::Router::new(DispatchPolicy::ConsistentHash, 4);
    assert_eq!(
        router.candidates(&[7, 1, 3, 5], Some(&trace(3)))[0],
        homes[0]
    );

    drop(gates);
    for p in pending {
        p.wait().unwrap();
    }
    pool.shutdown();
}
