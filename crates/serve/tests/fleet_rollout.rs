//! Zero-downtime rollout and fault injection, proven deterministic via the
//! engine pause gate (no sleep-based synchronization):
//!
//! * hot-swap under load drains the old generation *exactly* — the drain
//!   counter equals the number of requests in flight at gate close, and
//!   every one of them resolves `Ok` (zero dropped);
//! * killing one replica mid-stream fails its queued requests with typed
//!   [`ServeError::Shutdown`] while survivors keep serving;
//! * a rollout whose architecture fingerprint differs from the serving
//!   fleet is rejected before anything is built or swapped;
//! * the wire-level `Rollout` opcode swaps checkpoints end to end with
//!   bitwise-verifiable before/after logits.

use ibrar_nn::{ImageModel, Mode, Session, VggConfig, VggMini};
use ibrar_serve::{
    save_to_path, Client, DispatchPolicy, EngineConfig, ModelRegistry, PoolConfig, ReplicaPool,
    RolloutReport, ServeError, Server, ServerConfig, TraceId,
};
use ibrar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn model(seed: u64) -> Arc<dyn ImageModel> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(VggMini::new(VggConfig::tiny(10), &mut rng).unwrap())
}

fn image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], |idx| {
        ((idx[0] * 11 + idx[1] * 5 + idx[2] * 2 + i * 23) % 19) as f32 / 19.0
    })
}

fn single_forward(model: &dyn ImageModel, img: &Tensor) -> Vec<u32> {
    let tape = ibrar_autograd::Tape::new();
    let sess = Session::new(&tape);
    let x = tape.leaf(Tensor::stack(std::slice::from_ref(img)).unwrap());
    let out = model.forward(&sess, x, Mode::Eval).unwrap();
    out.logits
        .value()
        .row(0)
        .unwrap()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// Bounded wait on a condition another thread flips; correctness never
/// depends on the sleep length, only liveness does.
fn spin_until(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..10_000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for {what}");
}

fn small_pool(replicas: usize, policy: DispatchPolicy) -> ReplicaPool {
    ReplicaPool::new(
        model(7),
        PoolConfig {
            replicas,
            engine: EngineConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(20),
                queue_capacity: 16,
                workers: 2,
            },
            policy,
            max_in_flight: None,
        },
    )
    .unwrap()
}

#[test]
fn rollout_under_load_drains_exactly_and_drops_nothing() {
    let pool = small_pool(2, DispatchPolicy::LeastQueueDepth);
    let old = pool.replicas();
    let mut gates: Vec<_> = old.iter().map(|r| Some(r.engine().pause())).collect();

    // Six requests spread 3/3 by least-depth (loads tick up as we submit).
    let pending: Vec<_> = (0..6)
        .map(|i| pool.submit(image(i), None).unwrap())
        .collect();
    assert_eq!(pool.in_flight(), 6);
    assert_eq!(old[0].engine().in_flight(), 3);
    assert_eq!(old[1].engine().in_flight(), 3);

    let report = std::thread::scope(|s| {
        let rollout = s.spawn(|| pool.rollout(model(8)).unwrap());

        // The swap lands while every old-generation request is still
        // captive behind the pause gates: new version serves immediately.
        spin_until("generation swap", || pool.version() == 2);
        assert_eq!(pool.in_flight(), 0, "new generation starts empty");

        // Release the old replicas one at a time, only after the drain
        // gate has provably closed on each (drain captures the in-flight
        // count under the same lock that guards completions, so observing
        // `is_draining` means the count was read with all 3 still live).
        for (i, r) in old.iter().enumerate() {
            spin_until("drain gate", || r.engine().is_draining());
            gates[i] = None;
        }
        rollout.join().unwrap()
    });

    assert_eq!(
        report,
        RolloutReport {
            from_version: 1,
            to_version: 2,
            drained: 6,
        }
    );
    // Zero dropped: every request accepted by the old generation was
    // answered, not failed.
    for p in pending {
        p.wait().unwrap();
    }

    // The fleet now serves the new model, bit for bit.
    let want = single_forward(model(8).as_ref(), &image(0));
    let got: Vec<u32> = pool
        .submit(image(0), None)
        .unwrap()
        .wait()
        .unwrap()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(got, want, "post-rollout logits are not checkpoint v2's");
    pool.shutdown();
}

#[test]
fn draining_engine_rejects_new_submissions_with_typed_error() {
    let pool = small_pool(1, DispatchPolicy::LeastQueueDepth);
    let old = pool.replicas();
    let gate = old[0].engine().pause();
    let captive = pool.submit(image(0), None).unwrap();

    std::thread::scope(|s| {
        let rollout = s.spawn(|| pool.rollout(model(8)).unwrap());
        spin_until("drain gate", || old[0].engine().is_draining());
        // Straight-to-engine submissions during the drain shed with the
        // typed transient error a router retries elsewhere.
        assert!(matches!(
            old[0].engine().submit(image(1), None),
            Err(ServeError::Draining)
        ));
        // The pool itself already routes to the new generation.
        pool.submit(image(2), None).unwrap().wait().unwrap();
        drop(gate);
        assert_eq!(rollout.join().unwrap().drained, 1);
    });
    captive.wait().unwrap();
    pool.shutdown();
}

#[test]
fn rollout_rejects_architecture_mismatch_before_building_anything() {
    let pool = small_pool(2, DispatchPolicy::LeastQueueDepth);
    let mut rng = StdRng::seed_from_u64(3);
    let alien: Arc<dyn ImageModel> = Arc::new(VggMini::new(VggConfig::tiny(5), &mut rng).unwrap());

    match pool.rollout(alien) {
        Err(ServeError::Checkpoint(msg)) => {
            assert!(msg.contains("fingerprint"), "{msg}");
        }
        other => panic!("expected typed checkpoint rejection, got {other:?}"),
    }
    // Nothing swapped; generation 1 keeps serving.
    assert_eq!(pool.version(), 1);
    pool.submit(image(0), None).unwrap().wait().unwrap();
    pool.shutdown();
}

#[test]
fn killing_a_replica_sheds_typed_errors_while_survivors_serve() {
    let pool = small_pool(2, DispatchPolicy::LeastQueueDepth);
    let replicas = pool.replicas();
    let gate0 = replicas[0].engine().pause();
    let gate1 = replicas[1].engine().pause();

    // Four requests spread 2/2: indices 0,2 on replica 0 and 1,3 on 1.
    let pending: Vec<_> = (0..4)
        .map(|i| pool.submit(image(i), None).unwrap())
        .collect();
    assert_eq!(replicas[0].engine().in_flight(), 2);
    assert_eq!(replicas[1].engine().in_flight(), 2);

    // Kill replica 0 while its requests are captive: shutdown releases the
    // pause gate itself and fails everything queued — typed, no hang.
    assert!(pool.kill_replica(0));
    assert!(!pool.kill_replica(17), "unknown id must report false");
    assert_eq!(pool.alive(), 1);
    drop(gate0); // shutdown already released the gate; dropping is a no-op
    let (victims, survivors): (Vec<_>, Vec<_>) = pending
        .into_iter()
        .enumerate()
        .partition(|(i, _)| i % 2 == 0);
    for (i, p) in victims {
        match p.wait() {
            Err(ServeError::Shutdown) => {} // captive on the victim: typed
            other => panic!("victim request {i}: {other:?}"),
        }
    }

    // Survivor keeps serving: release it, its captives complete, and fresh
    // load routes around the corpse.
    drop(gate1);
    for (i, p) in survivors {
        p.wait()
            .unwrap_or_else(|e| panic!("survivor request {i}: {e}"));
    }
    for i in 0..4 {
        pool.submit(image(i), None).unwrap().wait().unwrap();
    }
    assert_eq!(
        replicas[0].engine().queue_depth(),
        0,
        "routing still offered work to the dead replica"
    );

    // Killing the last replica leaves nothing to serve: typed Shutdown.
    assert!(pool.kill_replica(1));
    assert!(matches!(
        pool.submit(image(0), None),
        Err(ServeError::Shutdown)
    ));
    pool.shutdown();
}

#[test]
fn hash_keys_of_a_dead_replica_move_while_survivor_keys_stay() {
    let pool = small_pool(2, DispatchPolicy::ConsistentHash);

    // Find one trace homed on each replica via the pool's own router.
    let router = ibrar_serve::Router::new(DispatchPolicy::ConsistentHash, 2);
    let trace_for = |home: usize| -> TraceId {
        for k in 0u64..10_000 {
            let mut bytes = [0u8; 16];
            bytes[..8].copy_from_slice(&k.to_le_bytes());
            let id = TraceId::from_bytes(bytes);
            if router.candidates(&[0, 0], Some(&id))[0] == home {
                return id;
            }
        }
        panic!("no key homed on replica {home}")
    };
    let key0 = trace_for(0);
    let key1 = trace_for(1);

    assert!(pool.kill_replica(0));
    // Replica 0's keys fail over across the ring to the survivor...
    pool.submit_traced(image(0), None, Some(key0))
        .unwrap()
        .wait()
        .unwrap();
    // ...and replica 1's keys never noticed.
    pool.submit_traced(image(1), None, Some(key1))
        .unwrap()
        .wait()
        .unwrap();
    pool.shutdown();
}

#[test]
fn fleet_cap_sheds_with_typed_queue_full() {
    let pool = ReplicaPool::new(
        model(7),
        PoolConfig {
            replicas: 2,
            engine: EngineConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(20),
                queue_capacity: 16,
                workers: 1,
            },
            policy: DispatchPolicy::LeastQueueDepth,
            max_in_flight: Some(3),
        },
    )
    .unwrap();
    let replicas = pool.replicas();
    let gates: Vec<_> = replicas.iter().map(|r| r.engine().pause()).collect();

    let pending: Vec<_> = (0..3)
        .map(|i| pool.submit(image(i), None).unwrap())
        .collect();
    // Admission control trips before any replica queue does.
    assert!(matches!(
        pool.submit(image(9), None),
        Err(ServeError::QueueFull)
    ));
    drop(gates);
    for p in pending {
        p.wait().unwrap();
    }
    pool.shutdown();
}

// ---------------------------------------------------------------------------
// Wire-level rollout: the admin opcode end to end.
// ---------------------------------------------------------------------------

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "ibrar-serve-fleet-{}-{tag}-{n}.ibsc",
        std::process::id()
    ))
}

fn save_model(seed: u64, classes: usize, tag: &str) -> PathBuf {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = VggMini::new(VggConfig::tiny(classes), &mut rng).unwrap();
    let path = temp_path(tag);
    save_to_path(&m, &path).unwrap();
    path
}

#[test]
fn wire_rollout_swaps_checkpoints_with_bitwise_proof() {
    // The metrics assertions at the end read the global recorder, which is
    // disabled by default in tests.
    ibrar_telemetry::global().enable();
    let path_a = save_model(42, 10, "a");
    let path_b = save_model(4242, 10, "b");
    let path_alien = save_model(5, 5, "alien");

    let registry = Arc::new(ModelRegistry::new());
    registry.register("vgg", path_a.clone(), move || {
        let mut rng = StdRng::seed_from_u64(999);
        Ok(Box::new(VggMini::new(VggConfig::tiny(10), &mut rng)?))
    });
    let mut server = Server::start(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            replicas: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Before: generation 1 serves checkpoint A, bit for bit.
    let want_a = single_forward(model(42).as_ref(), &image(0));
    let (_, logits) = client.classify_with_logits("vgg", &image(0), 0).unwrap();
    let got: Vec<u32> = logits.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want_a, "pre-rollout logits are not checkpoint A's");
    assert_eq!(client.health().unwrap().engines, 2);

    // A checkpoint with a different architecture is rejected and changes
    // nothing — still checkpoint A on the wire.
    assert!(client.rollout("vgg", path_alien.to_str().unwrap()).is_err());
    let (_, logits) = client.classify_with_logits("vgg", &image(0), 0).unwrap();
    assert_eq!(
        logits.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
        want_a,
        "failed rollout disturbed the serving model"
    );

    // An unknown model name is a typed rejection.
    assert!(matches!(
        client.rollout("nope", path_b.to_str().unwrap()),
        Err(ServeError::UnknownModel(_))
    ));

    // The real swap: version bumps, nothing was in flight to drain, and
    // the fleet now answers with checkpoint B's bits.
    let ack = client.rollout("vgg", path_b.to_str().unwrap()).unwrap();
    assert_eq!(ack.version, 2);
    assert_eq!(ack.drained, 0);
    let want_b = single_forward(model(4242).as_ref(), &image(0));
    let (_, logits) = client.classify_with_logits("vgg", &image(0), 0).unwrap();
    assert_eq!(
        logits.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
        want_b,
        "post-rollout logits are not checkpoint B's"
    );
    assert_eq!(client.health().unwrap().engines, 2, "fleet size changed");

    // The swap is visible on the observability plane.
    let json = client.metrics(ibrar_serve::MetricsFormat::Json).unwrap();
    assert!(json.contains("serve.pool.swap"), "{json}");
    assert!(json.contains("serve.pool.dispatch.r"), "{json}");

    drop(client);
    server.shutdown();
    for p in [path_a, path_b, path_alien] {
        let _ = std::fs::remove_file(p);
    }
}
