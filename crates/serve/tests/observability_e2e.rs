//! End-to-end observability-plane test: per-stage histograms account for
//! every request, the metrics endpoint serves both exposition formats over
//! the wire, health answers, and the flight recorder captures an injected
//! slow request with its trace id.
//!
//! Everything lives in ONE test function: the server shares the global
//! telemetry recorder with this process, so parallel tests in this binary
//! would race its counters.

use ibrar_nn::{VggConfig, VggMini};
use ibrar_serve::{
    save_to_path, Client, MetricsFormat, ModelRegistry, Server, ServerConfig, TraceId,
};
use ibrar_telemetry as tel;
use ibrar_telemetry::json::Json;
use ibrar_telemetry::Snapshot;
use ibrar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], |idx| {
        ((idx[0] * 13 + idx[1] * 7 + idx[2] + i * 5) % 19) as f32 / 19.0
    })
}

#[test]
fn observability_plane_end_to_end() {
    tel::global().enable();
    tel::global().reset_metrics();

    let mut rng = StdRng::seed_from_u64(42);
    let model = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
    let path: PathBuf =
        std::env::temp_dir().join(format!("ibrar-serve-obs-{}.ibsc", std::process::id()));
    save_to_path(&model, &path).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    let ckpt = path.clone();
    registry.register("vgg", ckpt, move || {
        let mut rng = StdRng::seed_from_u64(999);
        Ok(Box::new(VggMini::new(VggConfig::tiny(10), &mut rng)?))
    });
    let mut server = Server::start(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            flight_capacity: 64,
            slo_ms: Some(40.0),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // --- Stage accounting: N requests → exactly N observations in every
    // engine-side stage histogram.
    const N: usize = 8;
    let mut traces = Vec::new();
    for i in 0..N {
        let (label, trace) = client.classify_traced("vgg", &image(i), 0, None).unwrap();
        assert!(label < 10);
        traces.push(trace);
    }
    let snap = tel::snapshot();
    for stage in [
        "serve.stage.queue_ms",
        "serve.stage.batch_ms",
        "serve.stage.forward_ms",
    ] {
        let h = snap
            .histogram(stage)
            .unwrap_or_else(|| panic!("missing {stage}"));
        assert_eq!(h.count, N as u64, "{stage} count");
        assert!(h.p50.is_finite() && h.p99 >= h.p50, "{stage}: {h:?}");
    }
    // Encode is measured per response (one per request so far).
    assert_eq!(
        snap.histogram("serve.stage.encode_ms").unwrap().count,
        N as u64
    );
    assert_eq!(snap.counter("serve.requests"), Some(N as u64));

    // --- Health over the wire.
    let health = client.health().unwrap();
    assert_eq!(health.engines, 1);
    assert_eq!(health.queue_depth, 0);

    // --- Metrics over the wire: Prometheus text parses line-by-line and
    // carries the stage families with quantiles.
    let prom = client.metrics(MetricsFormat::Prometheus).unwrap();
    for family in [
        "ibrar_serve_stage_queue_ms",
        "ibrar_serve_stage_batch_ms",
        "ibrar_serve_stage_forward_ms",
        "ibrar_serve_stage_encode_ms",
        "ibrar_serve_requests",
    ] {
        assert!(prom.contains(family), "missing {family} in:\n{prom}");
    }
    assert!(prom.contains("quantile=\"0.99\""), "{prom}");
    for line in prom
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').expect(line);
        assert!(!name.is_empty());
        assert!(
            value.parse::<f64>().is_ok() || value == "NaN" || value == "+Inf" || value == "-Inf",
            "unparseable sample: {line}"
        );
    }

    // --- JSON snapshot round-trips through the typed parser.
    let json_payload = client.metrics(MetricsFormat::Json).unwrap();
    let parsed = Snapshot::from_json(&json_payload).unwrap();
    assert_eq!(
        parsed.histogram("serve.stage.queue_ms").unwrap().count,
        N as u64
    );
    assert!(parsed.counter("serve.requests").unwrap() >= N as u64);

    // --- Flight recorder: the recent ring saw all N classifies (admin
    // opcodes are excluded), each with its client-minted trace id.
    assert_eq!(server.flight().len(), N);
    let dump = client.metrics(MetricsFormat::Flight).unwrap();
    let flight = Json::parse(&dump).unwrap();
    assert_eq!(flight.get("slo_ms").unwrap().as_f64(), Some(40.0));
    for trace in &traces {
        assert!(dump.contains(&trace.to_string()), "missing {trace}");
    }

    // --- Injected slow request: park the batcher so one request's queue
    // stage dominates, breaching the 40ms SLO end to end.
    let engine = server.engine("vgg").unwrap();
    let gate = engine.pause();
    let slow_trace = TraceId::generate();
    let addr = server.addr();
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.classify_traced("vgg", &image(99), 0, Some(slow_trace))
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(120));
    drop(gate);
    let (_, echoed) = slow.join().unwrap();
    assert_eq!(echoed, slow_trace);

    assert!(server.flight().breach_count() >= 1);
    let dump = client.metrics(MetricsFormat::Flight).unwrap();
    let flight = Json::parse(&dump).unwrap();
    let breaches = flight.get("breaches").unwrap().as_array().unwrap();
    let breach = breaches
        .iter()
        .find(|b| b.get("trace").unwrap().as_str() == Some(&slow_trace.to_string()))
        .expect("slow request missing from breach ring");
    assert!(breach.get("total_ms").unwrap().as_f64().unwrap() > 40.0);
    // The time went where we injected it: the gate parks the batcher
    // *after* dequeue, so the stall shows up in the batch-formation stage.
    let batch_ms = breach.get("batch_ms").unwrap().as_f64().unwrap();
    assert!(batch_ms > 40.0, "batch_ms {batch_ms}");
    assert!(tel::snapshot().counter("serve.slo_breaches").unwrap_or(0) >= 1);

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(path);
}
