//! Property tests for the versioned checkpoint format: round-trips are
//! bitwise lossless across every architecture, and corrupt or mismatched
//! files fail with clear, typed errors.

use ibrar_nn::{
    architecture_fingerprint, ImageModel, ResNetConfig, ResNetMini, VggConfig, VggMini, VibHead,
    VibHeadConfig, WideResNetConfig, WideResNetMini,
};
use ibrar_serve::{checkpoint, load_from_path, read_header, save_to_path, ServeError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique scratch path; tests clean up behind themselves best-effort.
fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "ibrar-serve-test-{}-{tag}-{n}.ibsc",
        std::process::id()
    ))
}

fn build_arch(arch: usize, num_classes: usize, seed: u64) -> Box<dyn ImageModel> {
    let mut rng = StdRng::seed_from_u64(seed);
    match arch {
        0 => Box::new(VggMini::new(VggConfig::tiny(num_classes), &mut rng).unwrap()),
        1 => Box::new(ResNetMini::new(ResNetConfig::tiny_fast(num_classes), &mut rng).unwrap()),
        2 => Box::new(WideResNetMini::new(WideResNetConfig::tiny(num_classes), &mut rng).unwrap()),
        _ => {
            let inner = VggMini::new(VggConfig::tiny(num_classes), &mut rng).unwrap();
            Box::new(VibHead::new(inner, VibHeadConfig::paper_default(), &mut rng).unwrap())
        }
    }
}

/// Every parameter of `b` equals `a` bit for bit (`f32::to_bits`), so the
/// round-trip preserves NaN payloads, signed zeros, and denormals exactly.
fn assert_params_bitwise(a: &dyn ImageModel, b: &dyn ImageModel) {
    let (pa, pb) = (a.params(), b.params());
    assert_eq!(pa.len(), pb.len());
    for (x, y) in pa.iter().zip(&pb) {
        assert_eq!(x.name(), y.name());
        let (vx, vy) = (x.value(), y.value());
        assert_eq!(vx.shape(), vy.shape(), "shape drift on {}", x.name());
        for (a_bits, b_bits) in vx.data().iter().zip(vy.data()) {
            assert_eq!(
                a_bits.to_bits(),
                b_bits.to_bits(),
                "bits drift on {}",
                x.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Save-to-disk + load-into-fresh-instance is bitwise lossless for all
    /// three model families plus the VIB-wrapped head, any seed, any width.
    #[test]
    fn file_roundtrip_is_bitwise_lossless(
        arch in 0usize..4,
        num_classes in 2usize..8,
        seed in 0u64..500,
    ) {
        let donor = build_arch(arch, num_classes, seed);
        let target = build_arch(arch, num_classes, seed.wrapping_add(1));
        let path = temp_path("roundtrip");

        save_to_path(donor.as_ref(), &path).unwrap();
        let header = load_from_path(target.as_ref(), &path).unwrap();
        let _ = std::fs::remove_file(&path);

        prop_assert_eq!(header.arch.as_str(), donor.name());
        prop_assert_eq!(header.fingerprint, architecture_fingerprint(donor.as_ref()));
        prop_assert_eq!(header.params.len(), donor.params().len());
        assert_params_bitwise(donor.as_ref(), target.as_ref());
    }

    /// The in-memory encode/decode pair agrees with the file path.
    #[test]
    fn bytes_roundtrip_is_bitwise_lossless(seed in 0u64..500) {
        let donor = build_arch(0, 4, seed);
        let target = build_arch(0, 4, seed.wrapping_add(7));
        let bytes = checkpoint::encode_checkpoint(donor.as_ref());
        checkpoint::decode_checkpoint(target.as_ref(), bytes).unwrap();
        assert_params_bitwise(donor.as_ref(), target.as_ref());
    }

    /// The VIB head's extra parameters (μ/σ encoders, learned prior,
    /// bottleneck classifier) ride the same format: the round-trip stays
    /// bitwise lossless at any bottleneck width, and the manifest carries
    /// the `vib.*` names so the serve registry can audit them.
    #[test]
    fn vib_head_roundtrip_is_bitwise_lossless(
        bottleneck in 1usize..24,
        num_classes in 2usize..8,
        seed in 0u64..500,
    ) {
        let build = |s: u64| {
            let mut rng = StdRng::seed_from_u64(s);
            let inner = VggMini::new(VggConfig::tiny(num_classes), &mut rng).unwrap();
            let config = VibHeadConfig::paper_default().with_bottleneck(bottleneck);
            VibHead::new(inner, config, &mut rng).unwrap()
        };
        let donor = build(seed);
        let target = build(seed.wrapping_add(3));
        let path = temp_path("vib");

        save_to_path(&donor, &path).unwrap();
        let header = load_from_path(&target, &path).unwrap();
        let _ = std::fs::remove_file(&path);

        prop_assert_eq!(header.arch.as_str(), "VggMini-vib");
        prop_assert_eq!(header.fingerprint, architecture_fingerprint(&donor));
        for name in ["vib.mu", "vib.sigma", "vib.prior_mu", "vib.prior_rho", "vib.classifier"] {
            prop_assert!(
                header.params.iter().any(|p| p.name.starts_with(name)),
                "manifest is missing the {} parameters", name
            );
        }
        assert_params_bitwise(&donor, &target);
    }
}

#[test]
fn wrong_architecture_fails_fast_with_both_names() {
    let vgg = build_arch(0, 5, 1);
    let resnet = build_arch(1, 5, 1);
    let path = temp_path("mismatch");
    save_to_path(vgg.as_ref(), &path).unwrap();

    let err = load_from_path(resnet.as_ref(), &path).unwrap_err();
    let _ = std::fs::remove_file(&path);
    let msg = err.to_string();
    assert!(
        msg.contains(vgg.name()) && msg.contains(resnet.name()),
        "message should name both architectures: {msg}"
    );
    // Fails before any weight is decoded, so the target is untouched.
    assert!(matches!(err, ServeError::Checkpoint(_)));
}

#[test]
fn raw_save_params_payload_is_rejected_with_hint() {
    let model = build_arch(0, 4, 2);
    let path = temp_path("raw");
    std::fs::write(&path, ibrar_nn::save_params(model.as_ref())).unwrap();

    let err = load_from_path(model.as_ref(), &path).unwrap_err();
    let _ = std::fs::remove_file(&path);
    assert!(err.to_string().contains("IBSC"), "got: {err}");
}

#[test]
fn truncated_and_padded_files_are_rejected() {
    let model = build_arch(0, 4, 3);
    let full = checkpoint::encode_checkpoint(model.as_ref());

    let truncated = full.slice(0..full.len() - 5);
    assert!(matches!(
        checkpoint::decode_checkpoint(model.as_ref(), truncated),
        Err(ServeError::Checkpoint(_))
    ));

    let mut padded = full.to_vec();
    padded.extend_from_slice(&[0u8; 3]);
    assert!(matches!(
        checkpoint::decode_checkpoint(model.as_ref(), bytes::Bytes::from(padded)),
        Err(ServeError::Checkpoint(_))
    ));
}

#[test]
fn header_inspection_does_not_need_a_model() {
    let model = build_arch(2, 6, 4);
    let path = temp_path("header");
    save_to_path(model.as_ref(), &path).unwrap();

    let header = read_header(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(header.version, checkpoint::FORMAT_VERSION);
    assert_eq!(header.arch.as_str(), model.name());
    let manifest_names: Vec<&str> = header.params.iter().map(|p| p.name.as_str()).collect();
    let model_names: Vec<String> = model
        .params()
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    assert_eq!(manifest_names, model_names);
}
