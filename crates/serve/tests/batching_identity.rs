//! Batching must be invisible: row `i` of a coalesced batch is bitwise
//! identical to a single-request forward of image `i`, for every batch
//! size, engine worker count, and kernel thread count.

use ibrar_nn::{ImageModel, Mode, Session, VggConfig, VggMini};
use ibrar_serve::{BatchEngine, EngineConfig};
use ibrar_tensor::{parallel, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn model() -> Arc<dyn ImageModel> {
    let mut rng = StdRng::seed_from_u64(7);
    Arc::new(VggMini::new(VggConfig::tiny(10), &mut rng).unwrap())
}

fn image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], |idx| {
        ((idx[0] * 31 + idx[1] * 7 + idx[2] * 3 + i * 13) % 17) as f32 / 17.0
    })
}

/// Reference: single-image forward on the caller's thread.
fn single_forward(model: &dyn ImageModel, img: &Tensor) -> Vec<u32> {
    let tape = ibrar_autograd::Tape::new();
    let sess = Session::new(&tape);
    let x = tape.leaf(Tensor::stack(std::slice::from_ref(img)).unwrap());
    let out = model.forward(&sess, x, Mode::Eval).unwrap();
    out.logits
        .value()
        .row(0)
        .unwrap()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn batched_rows_are_bitwise_identical_to_single_requests() {
    let model = model();

    // The reference itself must not depend on the kernel thread count.
    let reference: Vec<Vec<u32>> = {
        let _one = parallel::with_threads(1);
        (0..8)
            .map(|i| single_forward(model.as_ref(), &image(i)))
            .collect()
    };
    {
        let _four = parallel::with_threads(4);
        for (i, want) in reference.iter().enumerate() {
            assert_eq!(
                &single_forward(model.as_ref(), &image(i)),
                want,
                "kernel thread count changed single-forward bits (image {i})"
            );
        }
    }

    // Engine shapes: batch sizes 1, 3, and max_batch, each under 1 and 4
    // worker threads.
    for &workers in &[1usize, 4] {
        for &max_batch in &[1usize, 3, 8] {
            let engine = BatchEngine::new(
                Arc::clone(&model),
                EngineConfig {
                    max_batch,
                    // Generous window so a whole submission wave coalesces
                    // into max_batch-sized batches deterministically.
                    max_wait: Duration::from_millis(200),
                    queue_capacity: 64,
                    workers,
                },
            )
            .unwrap();

            for &n in &[1usize, 3, max_batch] {
                let pending: Vec<_> = (0..n)
                    .map(|i| engine.submit(image(i), None).unwrap())
                    .collect();
                for (i, p) in pending.into_iter().enumerate() {
                    let row = p.wait().unwrap();
                    let got: Vec<u32> = row.data().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(
                        got, reference[i],
                        "bits diverged: image {i}, n={n}, \
                         max_batch={max_batch}, workers={workers}"
                    );
                }
            }
            engine.shutdown();
        }
    }
}

#[test]
fn classify_matches_argmax_of_logits() {
    let model = model();
    let engine = BatchEngine::new(Arc::clone(&model), EngineConfig::default()).unwrap();
    for i in 0..4 {
        let c = engine.classify(image(i), None).unwrap();
        let reference = single_forward(model.as_ref(), &image(i));
        let want = reference
            .iter()
            .map(|b| f32::from_bits(*b))
            .collect::<Vec<f32>>();
        let mut best = 0;
        for (j, &v) in want.iter().enumerate() {
            if v > want[best] {
                best = j;
            }
        }
        assert_eq!(c.label, best);
        assert_eq!(c.logits, want);
    }
}

#[test]
fn queue_full_is_typed_and_deterministic() {
    let engine = BatchEngine::new(
        model(),
        EngineConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            queue_capacity: 4,
            workers: 1,
        },
    )
    .unwrap();

    // Park the batcher between its first dequeue and batch assembly, so the
    // queue can be filled to capacity without racing the drain.
    let gate = engine.pause();
    let _sacrificial = engine.submit(image(0), None).unwrap();
    let mut spins = 0;
    while engine.queue_depth() != 0 {
        std::thread::sleep(Duration::from_millis(1));
        spins += 1;
        assert!(spins < 5000, "batcher never picked up the sacrificial job");
    }

    let held: Vec<_> = (0..4)
        .map(|i| engine.submit(image(i + 1), None).unwrap())
        .collect();
    assert_eq!(engine.queue_depth(), 4);
    // Capacity + 1 is rejected with the typed backpressure error...
    assert!(matches!(
        engine.submit(image(9), None),
        Err(ibrar_serve::ServeError::QueueFull)
    ));

    // ...and releasing the gate drains everything that *was* accepted.
    drop(gate);
    for p in held {
        p.wait().unwrap();
    }
    engine.shutdown();
}

#[test]
fn expired_deadlines_are_typed() {
    let engine = BatchEngine::new(
        model(),
        EngineConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_capacity: 8,
            workers: 1,
        },
    )
    .unwrap();

    let gate = engine.pause();
    let sacrificial = engine.submit(image(0), None).unwrap();
    let mut spins = 0;
    while engine.queue_depth() != 0 {
        std::thread::sleep(Duration::from_millis(1));
        spins += 1;
        assert!(spins < 5000, "batcher never picked up the sacrificial job");
    }

    // Queued behind the paused batcher with a 5 ms budget.
    let doomed = engine
        .submit(image(1), Some(Duration::from_millis(5)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    drop(gate);

    sacrificial.wait().unwrap();
    assert!(matches!(
        doomed.wait(),
        Err(ibrar_serve::ServeError::DeadlineExceeded)
    ));
    engine.shutdown();
}

#[test]
fn expired_at_submit_is_rejected_without_enqueueing() {
    let engine = BatchEngine::new(model(), EngineConfig::default()).unwrap();
    // A zero budget can never be met: submit must reject synchronously with
    // the typed error instead of burning a bounded-queue slot on a request
    // dispatch would expire anyway. No sleeps — the expiry is structural.
    assert!(matches!(
        engine.submit(image(0), Some(Duration::ZERO)),
        Err(ibrar_serve::ServeError::DeadlineExceeded)
    ));
    assert_eq!(engine.queue_depth(), 0, "rejected request occupied a slot");
    // A live budget still flows through normally.
    engine
        .submit(image(1), Some(Duration::from_secs(30)))
        .unwrap()
        .wait()
        .unwrap();
    engine.shutdown();
}

#[test]
fn shutdown_fails_queued_requests_without_hanging() {
    let engine = BatchEngine::new(
        model(),
        EngineConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            queue_capacity: 8,
            workers: 1,
        },
    )
    .unwrap();
    let gate = engine.pause();
    let _sacrificial = engine.submit(image(0), None).unwrap();
    let held: Vec<_> = (0..3)
        .map(|i| engine.submit(image(i + 1), None).unwrap())
        .collect();
    drop(gate);
    engine.shutdown();
    for p in held {
        // Either answered before shutdown won the race, or typed Shutdown —
        // never a hang or a silent drop.
        match p.wait() {
            Ok(_) | Err(ibrar_serve::ServeError::Shutdown) => {}
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    // Submitting after shutdown is rejected immediately.
    assert!(matches!(
        engine.submit(image(5), None),
        Err(ibrar_serve::ServeError::Shutdown)
    ));
}

#[test]
fn invalid_shape_is_rejected_before_enqueue() {
    let engine = BatchEngine::new(model(), EngineConfig::default()).unwrap();
    let bad = Tensor::full(&[1, 4, 4], 0.5);
    assert!(matches!(
        engine.submit(bad, None),
        Err(ibrar_serve::ServeError::InvalidInput(_))
    ));
    assert_eq!(engine.queue_depth(), 0);
}
