//! Blocking TCP server: accept loop, per-connection handlers, and the
//! request → engine/registry dispatch.
//!
//! The server is std-only (`std::net`): one accept thread plus one thread
//! per connection, which is the right trade for a research serving stack —
//! connection counts are small, and every request does real tensor work
//! anyway. Inference requests funnel into a per-model [`ReplicaPool`] of
//! [`BatchEngine`] replicas (created lazily on a model's first request),
//! so concurrent connections are what *feeds* the micro-batchers; the
//! `Rollout` admin opcode hot-swaps a pool onto a new checkpoint with the
//! old generation draining to zero dropped requests.
//!
//! Shutdown is cooperative and complete: the accept loop is woken by a
//! self-connection, open connection sockets are shut down so blocked reads
//! return, every thread is joined, and the engines fail any still-queued
//! requests with a typed error. No request is silently dropped.
//!
//! The same port also answers the admin opcodes: `Health` (uptime, engine
//! count, aggregate queue depth) and `Metrics` (Prometheus text, JSON
//! snapshot, or the flight-recorder dump) — no second listener, no extra
//! dependency, and the `ibrar-top` dashboard polls them over the ordinary
//! client. Every request gets a [`TraceId`] (client-minted on v2 frames,
//! server-minted otherwise) and a completed [`FlightRecord`] in the bounded
//! [`FlightRecorder`].

use crate::engine::{argmax, BatchEngine, Classification, EngineConfig, StageTimings};
use crate::flight::{FlightRecord, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
use crate::pool::{PoolConfig, ReplicaPool};
use crate::protocol::{
    classification_response, decode_request_traced, encode_response, opcode_for, read_frame,
    status_for, write_frame, AttackKind, MetricsFormat, Opcode, ProbeReport, ProbeSpec, Request,
    Response, Status,
};
use crate::registry::ModelRegistry;
use crate::router::DispatchPolicy;
use crate::trace::TraceId;
use crate::{Result, ServeError};
use ibrar_attacks::{Attack, Fgsm, Pgd};
use ibrar_nn::{ImageModel, Mode, Session};
use ibrar_telemetry as tel;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Configuration applied to each replica engine of each lazily-created
    /// per-model pool.
    pub engine: EngineConfig,
    /// Replicas per model pool (each with its own queue and workers).
    pub replicas: usize,
    /// Fleet dispatch policy; see [`DispatchPolicy`].
    pub policy: DispatchPolicy,
    /// Fleet-wide in-flight admission cap per pool; `None` leaves the
    /// per-replica queue bounds as the only backpressure.
    pub max_in_flight: Option<usize>,
    /// Capacity of each flight-recorder ring (recent and SLO breaches).
    /// Zero disables retention (the rings only count drops).
    pub flight_capacity: usize,
    /// End-to-end latency SLO in milliseconds; requests slower than this
    /// are retained in the breach ring and counted in
    /// `serve.slo_breaches`. `None` disables breach tracking.
    pub slo_ms: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            engine: EngineConfig::default(),
            replicas: 1,
            policy: DispatchPolicy::LeastQueueDepth,
            max_in_flight: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            slo_ms: None,
        }
    }
}

struct Shared {
    registry: Arc<ModelRegistry>,
    pools: Mutex<HashMap<String, Arc<ReplicaPool>>>,
    config: ServerConfig,
    flight: FlightRecorder,
    started: Instant,
    shutdown: AtomicBool,
    conns: Mutex<Vec<(TcpStream, JoinHandle<()>)>>,
}

/// A running server; dropping it shuts everything down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// models from `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the bind fails.
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let flight = FlightRecorder::new(config.flight_capacity, config.slo_ms);
        let shared = Arc::new(Shared {
            registry,
            pools: Mutex::new(HashMap::new()),
            config,
            flight,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| ServeError::Io(e.to_string()))?;
        tel::event(
            tel::Level::Info,
            "serve.started",
            &[("addr", local.to_string().into())],
        );
        Ok(Server {
            addr: local,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The first replica engine serving `model`, if its pool has been
    /// created yet. Exposed so tests can reach [`BatchEngine::pause`] and
    /// queue metrics; with the default single-replica config this *is* the
    /// model's engine.
    pub fn engine(&self, model: &str) -> Option<Arc<BatchEngine>> {
        self.pool(model)
            .and_then(|p| p.replicas().first().map(|r| Arc::clone(r.engine())))
    }

    /// The replica pool serving `model`, if one has been created yet.
    pub fn pool(&self, model: &str) -> Option<Arc<ReplicaPool>> {
        self.shared.pools.lock().get(model).cloned()
    }

    /// The server's flight recorder (also dumpable over the wire via the
    /// Metrics opcode's `Flight` format).
    pub fn flight(&self) -> &FlightRecorder {
        &self.shared.flight
    }

    /// Stops accepting, closes open connections, joins all threads, and
    /// shuts down every engine. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop out of `accept()`.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Unblock connection reads, then join the handlers.
        let conns = std::mem::take(&mut *self.shared.conns.lock());
        for (stream, _) in &conns {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for (_, handle) in conns {
            let _ = handle.join();
        }
        for (_, pool) in self.shared.pools.lock().drain() {
            pool.shutdown();
        }
        tel::event(tel::Level::Info, "serve.stopped", &[]);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        tel::counter("serve.connections", 1);
        let conn_shared = Arc::clone(&shared);
        let peer = stream.try_clone();
        let conn_stream = match peer {
            Ok(clone) => clone,
            Err(_) => continue,
        };
        let spawned = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || connection_loop(conn_stream, conn_shared));
        if let Ok(handle) = spawned {
            shared.conns.lock().push((stream, handle));
        }
    }
}

/// What the handler learned about a request, threaded out for the flight
/// record.
#[derive(Default)]
struct RequestMeta {
    model: String,
    stages: StageTimings,
}

fn connection_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    serve_connection(&mut stream, &shared);
    // The accept loop keeps a clone of this socket alive for shutdown
    // wake-ups, so dropping `stream` alone would leave an abandoned peer
    // (e.g. one that sent an unreadable frame) blocked on a response that
    // will never come. Close the socket itself.
    let _ = stream.shutdown(Shutdown::Both);
}

fn serve_connection(mut stream: &mut TcpStream, shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let body = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            Ok(None) | Err(_) => break,
        };
        let received = Instant::now();
        let mut meta = RequestMeta::default();
        // (response, trace id, opcode) — opcode is None when the frame
        // never decoded into a request.
        let (response, trace, opcode) = {
            let _s = tel::span!("serve.request");
            tel::counter("serve.proto.requests", 1);
            match decode_request_traced(body) {
                Ok((request, trace)) => {
                    // v2 clients mint the id; for v1 frames the server
                    // mints one at ingress so every request is traceable.
                    let trace = trace.unwrap_or_else(TraceId::generate);
                    let opcode = opcode_for(&request);
                    let response = dispatch(shared, request, trace, &mut meta);
                    (response, trace, Some(opcode))
                }
                Err(e) => (
                    Response::Error(status_for(&e), e.to_string()),
                    TraceId::generate(),
                    None,
                ),
            }
        };
        if let Response::Error(status, _) = &response {
            tel::counter(
                match status {
                    Status::QueueFull => "serve.proto.queue_full",
                    Status::DeadlineExceeded => "serve.proto.deadline",
                    _ => "serve.proto.errors",
                },
                1,
            );
        }
        let encode_start = Instant::now();
        let frame = encode_response(&response);
        let encode_ms = encode_start.elapsed().as_secs_f64() * 1e3;
        tel::observe("serve.stage.encode_ms", encode_ms);
        // Record *before* the frame hits the wire: once the client has read
        // the response it must be able to observe the flight record (tests
        // and dashboards poll right after a reply). Admin opcodes
        // (Health/Metrics) are cheap, polled continuously by dashboards,
        // and would drown real traffic out of the ring.
        if let Some(opcode) = opcode {
            if !matches!(opcode, Opcode::Health | Opcode::Metrics) {
                let status = match &response {
                    Response::Error(status, _) => *status,
                    _ => Status::Ok,
                };
                shared.flight.record(FlightRecord {
                    trace,
                    model: meta.model,
                    opcode,
                    status,
                    total_ms: received.elapsed().as_secs_f64() * 1e3,
                    stages: meta.stages,
                    encode_ms,
                    ts_ms: unix_ms(),
                });
            }
        }
        if write_frame(&mut stream, &frame).is_err() {
            break;
        }
    }
}

fn dispatch(shared: &Shared, request: Request, trace: TraceId, meta: &mut RequestMeta) -> Response {
    match handle(shared, request, trace, meta) {
        Ok(response) => response,
        Err(e) => Response::Error(status_for(&e), e.to_string()),
    }
}

fn handle(
    shared: &Shared,
    request: Request,
    trace: TraceId,
    meta: &mut RequestMeta,
) -> Result<Response> {
    match request {
        Request::Ping => Ok(Response::Pong),
        Request::Classify {
            model,
            deadline_ms,
            image,
            with_logits,
        } => {
            let pool = pool_for(shared, &model)?;
            meta.model = model;
            let budget = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
            let (logits, stages) = pool
                .submit_traced(image, budget, Some(trace))?
                .wait_detailed()?;
            meta.stages = stages;
            let classification = Classification {
                label: argmax(logits.data()),
                logits: logits.data().to_vec(),
            };
            Ok(classification_response(&classification, with_logits))
        }
        Request::RobustnessProbe {
            model,
            label,
            spec,
            image,
        } => {
            let handle = shared.registry.get(&model)?;
            meta.model = model;
            let report = run_probe(handle.as_ref(), &image, label, &spec)?;
            Ok(Response::Probed(report))
        }
        Request::Health => {
            // `engines` reports live replica engines across every pool, so
            // the single-replica default still reads 1 per loaded model.
            let pools: Vec<Arc<ReplicaPool>> = shared.pools.lock().values().cloned().collect();
            let queue_depth: u64 = pools.iter().map(|p| p.queue_depth() as u64).sum();
            let count: u32 = pools.iter().map(|p| p.alive() as u32).sum();
            Ok(Response::Healthy {
                uptime_ms: shared.started.elapsed().as_millis() as u64,
                engines: count,
                queue_depth,
            })
        }
        Request::Metrics { format } => {
            let payload = match format {
                MetricsFormat::Prometheus => tel::snapshot().prometheus_text(),
                MetricsFormat::Json => tel::snapshot().to_json(),
                MetricsFormat::Flight => shared.flight.dump_json(),
            };
            Ok(Response::Metrics(payload))
        }
        Request::Rollout { model, checkpoint } => {
            meta.model = model.clone();
            // Load-validate the new checkpoint and bump the registry first:
            // a bad path or corrupt file fails typed here, before any
            // replica is touched, and the old generation keeps serving.
            let (version, new_model) = shared.registry.retarget(&model, &checkpoint)?;
            let pool = shared.pools.lock().get(&model).cloned();
            let drained = match pool {
                // Swap-then-drain; the report proves zero dropped requests.
                Some(pool) => pool.rollout(new_model)?.drained as u64,
                // No traffic yet: the retargeted registry alone suffices —
                // the pool lazily built by the first request serves the
                // new checkpoint.
                None => 0,
            };
            tel::event(
                tel::Level::Info,
                "serve.rollout",
                &[
                    ("model", model.into()),
                    ("version", (version as f64).into()),
                    ("drained", (drained as f64).into()),
                ],
            );
            Ok(Response::RolledOut { version, drained })
        }
    }
}

/// Milliseconds since the Unix epoch (flight-record timestamps).
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn pool_for(shared: &Shared, name: &str) -> Result<Arc<ReplicaPool>> {
    // The first request for a model pays checkpoint load + fleet spawn
    // under the map lock; concurrent first requests for *different* models
    // briefly serialize, which is fine at registry scale.
    let mut pools = shared.pools.lock();
    if let Some(pool) = pools.get(name) {
        return Ok(Arc::clone(pool));
    }
    let model = shared.registry.get(name)?;
    let pool = Arc::new(ReplicaPool::new(
        model,
        PoolConfig {
            replicas: shared.config.replicas,
            engine: shared.config.engine.clone(),
            policy: shared.config.policy,
            max_in_flight: shared.config.max_in_flight,
        },
    )?);
    pools.insert(name.to_string(), Arc::clone(&pool));
    Ok(pool)
}

/// Runs the probe's attack synchronously on the connection thread: attacks
/// are iterative whole-model loops, so there is nothing to micro-batch.
fn run_probe(
    model: &dyn ImageModel,
    image: &ibrar_tensor::Tensor,
    label: u32,
    spec: &ProbeSpec,
) -> Result<ProbeReport> {
    let _s = tel::span!("serve.probe");
    if !model.supports_input_gradients() {
        // Inference-only paths (e.g. the int8 quantized forward) run outside
        // the tape; an attack against them would see zero gradients and
        // report fake robustness. Reject loudly instead.
        return Err(ServeError::Unsupported(format!(
            "robustness probes need input gradients; model '{}' is inference-only",
            model.name()
        )));
    }
    if image.shape() != model.input_shape() {
        return Err(ServeError::InvalidInput(format!(
            "image shape {:?} does not match model input {:?}",
            image.shape(),
            model.input_shape()
        )));
    }
    let batch = ibrar_tensor::Tensor::stack(std::slice::from_ref(image))?;
    let labels = [label as usize];
    let attack: Box<dyn Attack> = match spec.kind {
        AttackKind::Fgsm => Box::new(Fgsm::new(spec.eps)),
        // Deterministic PGD: a serving endpoint should answer the same
        // probe identically on every call.
        AttackKind::Pgd => {
            Box::new(Pgd::new(spec.eps, spec.alpha, spec.steps as usize).without_random_start())
        }
    };
    let adversarial = attack.perturb(model, &batch, &labels)?;
    let clean_pred = predict_one(model, &batch)?;
    let adv_pred = predict_one(model, &adversarial)?;
    Ok(ProbeReport {
        clean_pred,
        adv_pred,
        clean_correct: clean_pred == label,
        adv_correct: adv_pred == label,
    })
}

fn predict_one(model: &dyn ImageModel, batch: &ibrar_tensor::Tensor) -> Result<u32> {
    let tape = ibrar_autograd::Tape::new();
    let sess = Session::new(&tape);
    let x = tape.leaf(batch.clone());
    let out = model.forward(&sess, x, Mode::Eval)?;
    let preds = out.logits.value().argmax_rows()?;
    Ok(preds[0] as u32)
}
