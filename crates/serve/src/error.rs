use ibrar_attacks::AttackError;
use ibrar_nn::NnError;
use ibrar_tensor::TensorError;
use std::fmt;

/// Error type for checkpoint, registry, engine, and protocol operations.
///
/// The two load-shedding variants — [`ServeError::QueueFull`] and
/// [`ServeError::DeadlineExceeded`] — are *typed* so callers (and the wire
/// protocol) can distinguish backpressure from genuine failures. They map
/// 1:1 onto protocol status codes; everything else becomes
/// `Status::Internal` or `Status::BadRequest` at the boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded request queue is at capacity; the request was rejected,
    /// not enqueued. Retry later or lower the request rate.
    QueueFull,
    /// The request's deadline passed before a worker started its batch.
    DeadlineExceeded,
    /// No model with this name is registered.
    UnknownModel(String),
    /// A checkpoint file is malformed or does not match the target model.
    Checkpoint(String),
    /// The engine or server is shutting down.
    Shutdown,
    /// The engine is draining for a rollout: in-flight requests finish,
    /// new submissions are rejected. Typed separately from
    /// [`ServeError::Shutdown`] because the condition is transient — a
    /// fleet router retries another replica, a client retries the fleet.
    Draining,
    /// A malformed frame or bad field on the wire.
    Protocol(String),
    /// A well-formed request for an opcode (or sub-selector) this server
    /// does not implement. Typed so newer clients probing for optional
    /// endpoints get a clean rejection on a live connection.
    Unsupported(String),
    /// A request's tensor does not match what the model expects.
    InvalidInput(String),
    /// Socket or filesystem failure (message only: `std::io::Error` is not
    /// `Clone`).
    Io(String),
    /// A model forward pass or parameter operation failed.
    Nn(NnError),
    /// A raw tensor operation failed.
    Tensor(TensorError),
    /// A robustness probe's attack failed.
    Attack(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "request queue full"),
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServeError::UnknownModel(name) => write!(f, "unknown model: {name}"),
            ServeError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            ServeError::Shutdown => write!(f, "server shutting down"),
            ServeError::Draining => write!(f, "engine draining for rollout; retry"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Unsupported(msg) => write!(f, "unsupported request: {msg}"),
            ServeError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            ServeError::Io(msg) => write!(f, "i/o error: {msg}"),
            ServeError::Nn(e) => write!(f, "model error: {e}"),
            ServeError::Tensor(e) => write!(f, "tensor error: {e}"),
            ServeError::Attack(msg) => write!(f, "attack error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Nn(e) => Some(e),
            ServeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for ServeError {
    fn from(e: NnError) -> Self {
        ServeError::Nn(e)
    }
}

impl From<TensorError> for ServeError {
    fn from(e: TensorError) -> Self {
        ServeError::Tensor(e)
    }
}

impl From<AttackError> for ServeError {
    fn from(e: AttackError) -> Self {
        ServeError::Attack(e.to_string())
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_distinct() {
        let variants = [
            ServeError::QueueFull,
            ServeError::DeadlineExceeded,
            ServeError::UnknownModel("m".into()),
            ServeError::Checkpoint("c".into()),
            ServeError::Shutdown,
            ServeError::Draining,
            ServeError::Protocol("p".into()),
            ServeError::Unsupported("u".into()),
            ServeError::Io("i".into()),
            ServeError::Attack("a".into()),
        ];
        let texts: Vec<String> = variants.iter().map(|e| e.to_string()).collect();
        for (i, a) in texts.iter().enumerate() {
            assert!(!a.is_empty());
            for b in texts.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn conversions_work() {
        let e: ServeError = std::io::Error::other("x").into();
        assert!(matches!(e, ServeError::Io(_)));
        let e: ServeError = NnError::Config("bad".into()).into();
        assert!(matches!(e, ServeError::Nn(_)));
    }
}
