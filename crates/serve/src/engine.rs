//! Dynamic micro-batching inference engine.
//!
//! Latency-bound serving wants small batches; throughput wants large ones.
//! The engine splits the difference with the classic coalescing loop:
//!
//! ```text
//! submit() --try_send--> [bounded queue] --recv--> batcher --> [batch chan]
//!                                                                 |
//!                                              workers <----------+
//!                                  (deadline check, stacked forward,
//!                                   per-row reply)
//! ```
//!
//! * **Backpressure is explicit.** [`BatchEngine::submit`] uses a bounded
//!   queue and `try_send`: a full queue returns [`ServeError::QueueFull`]
//!   immediately — requests are never silently dropped and producers are
//!   never blocked.
//! * **The batcher coalesces.** The first request of a batch starts a
//!   [`EngineConfig::max_wait`] window; the batch flushes when it reaches
//!   [`EngineConfig::max_batch`] or the window closes, whichever is first.
//! * **Deadlines are honored at dispatch.** A worker checks each request's
//!   deadline immediately before the forward pass; expired requests get a
//!   typed [`ServeError::DeadlineExceeded`] instead of a stale answer.
//! * **Batching is invisible to results.** Forward runs in `Mode::Eval`
//!   (running statistics), and every kernel in this workspace is
//!   row-independent and deterministic, so row `i` of a batched forward is
//!   bitwise identical to a single-request forward of image `i` — see
//!   `tests/batching_identity.rs`.
//!
//! The [`BatchEngine::pause`] gate exists for deterministic tests: it holds
//! the batcher *between* taking a request and assembling the rest of the
//! batch, so a test can fill the queue to capacity and observe a typed
//! queue-full rejection without racing the drain.
//!
//! # Stage taxonomy
//!
//! Every request that reaches a worker records a per-stage latency
//! breakdown ([`StageTimings`], returned by
//! [`PendingResponse::wait_detailed`]) and feeds the stage histograms:
//!
//! | stage     | histogram                | measures                        |
//! |-----------|--------------------------|---------------------------------|
//! | `queue`   | `serve.stage.queue_ms`   | submit → batcher dequeue        |
//! | `batch`   | `serve.stage.batch_ms`   | dequeue → batch dispatch        |
//! | `forward` | `serve.stage.forward_ms` | stack + batched forward pass    |
//!
//! (The fourth stage, `encode`, is measured server-side around response
//! encoding — see `server`.) Timestamps are captured unconditionally:
//! `Instant::now` costs tens of nanoseconds against millisecond-scale
//! forwards, so the breakdown is always available and the
//! zero-overhead-when-disabled contract only concerns histogram inserts.

use crate::trace::TraceId;
use crate::{Result, ServeError};
use ibrar_nn::{ImageModel, Mode, Session};
use ibrar_telemetry as tel;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked threads wake to re-check the shutdown flag.
const TICK: Duration = Duration::from_millis(10);

/// Tuning knobs for a [`BatchEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Largest batch a worker will run (flush trigger #1).
    pub max_batch: usize,
    /// Longest a request waits for co-batched company (flush trigger #2),
    /// measured from the first request of the forming batch.
    pub max_wait: Duration,
    /// Bounded request-queue capacity; `submit` beyond this rejects with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Worker threads running batched forwards.
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
            workers: 1,
        }
    }
}

impl EngineConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidInput`] when any knob is zero.
    pub fn validate(&self) -> Result<()> {
        if self.max_batch == 0 || self.queue_capacity == 0 || self.workers == 0 {
            return Err(ServeError::InvalidInput(format!(
                "max_batch, queue_capacity, and workers must be positive, got {self:?}"
            )));
        }
        Ok(())
    }
}

/// A classification result: argmax label plus the raw logits row.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Argmax class index.
    pub label: usize,
    /// Raw logits, one per class.
    pub logits: Vec<f32>,
}

/// Per-stage latency breakdown for one completed request, in milliseconds.
///
/// Stages partition the request's life inside the engine: `queue_ms`
/// (submit → batcher dequeue) + `batch_ms` (dequeue → batch dispatch) +
/// `forward_ms` (stack + batched forward) ≈ total engine latency. The
/// server adds a fourth, encode-side stage before the response hits the
/// wire.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimings {
    /// Time spent waiting in the bounded submit queue.
    pub queue_ms: f64,
    /// Time spent waiting for the batch to form and reach a worker.
    pub batch_ms: f64,
    /// Time spent in the batched stack + forward pass.
    pub forward_ms: f64,
}

impl StageTimings {
    /// Sum of the engine-side stages.
    pub fn total_ms(&self) -> f64 {
        self.queue_ms + self.batch_ms + self.forward_ms
    }
}

struct Job {
    image: ibrar_tensor::Tensor,
    deadline: Option<Instant>,
    enqueued: Instant,
    /// Set by the batcher at dequeue; equals `enqueued` until then.
    dequeued: Instant,
    trace: Option<TraceId>,
    reply: mpsc::Sender<Result<(ibrar_tensor::Tensor, StageTimings)>>,
    /// Accounting token: alive from acceptance until the reply is sent
    /// (or the job is dropped on any path), so [`BatchEngine::drain`] can
    /// prove every accepted request was answered.
    _inflight: InflightToken,
}

/// Count of requests accepted but not yet answered, with a condvar so
/// [`BatchEngine::drain`] can wait for it to hit zero.
#[derive(Default)]
struct Inflight {
    count: Mutex<usize>,
    cv: Condvar,
}

/// RAII increment of the in-flight count; the `Drop` decrement fires on
/// *every* job-consumption path — successful reply, typed error reply,
/// shutdown fail-drain, or a dropped channel — so the count can never
/// leak. One token is minted per accepted request in `submit_traced`.
struct InflightToken(Arc<Inflight>);

impl InflightToken {
    fn mint(inflight: &Arc<Inflight>) -> Self {
        *inflight.count.lock() += 1;
        InflightToken(Arc::clone(inflight))
    }
}

impl Drop for InflightToken {
    fn drop(&mut self) {
        let mut n = self.0.count.lock();
        *n = n.saturating_sub(1);
        if *n == 0 {
            self.0.cv.notify_all();
        }
    }
}

/// Test-only gate that parks the batcher between dequeue and assembly.
#[derive(Default)]
struct Gate {
    paused: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait_open(&self) {
        let mut paused = self.paused.lock();
        while *paused {
            self.cv.wait(&mut paused);
        }
    }

    fn set(&self, value: bool) {
        *self.paused.lock() = value;
        if !value {
            self.cv.notify_all();
        }
    }
}

/// Holds the batcher paused; dropping it resumes draining.
pub struct PauseGuard<'e> {
    gate: &'e Gate,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        self.gate.set(false);
    }
}

/// An in-flight request handle returned by [`BatchEngine::submit`].
pub struct PendingResponse {
    rx: mpsc::Receiver<Result<(ibrar_tensor::Tensor, StageTimings)>>,
}

impl PendingResponse {
    /// Blocks until the engine answers.
    ///
    /// # Errors
    ///
    /// Propagates the engine's typed error ([`ServeError::DeadlineExceeded`],
    /// [`ServeError::Shutdown`], or a forward failure).
    pub fn wait(self) -> Result<ibrar_tensor::Tensor> {
        self.wait_detailed().map(|(t, _)| t)
    }

    /// Like [`PendingResponse::wait`], also returning the request's
    /// per-stage latency breakdown.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PendingResponse::wait`].
    pub fn wait_detailed(self) -> Result<(ibrar_tensor::Tensor, StageTimings)> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

/// Micro-batching executor for one model.
pub struct BatchEngine {
    model: Arc<dyn ImageModel>,
    config: EngineConfig,
    submit_tx: SyncSender<Job>,
    queue_depth: Arc<AtomicUsize>,
    inflight: Arc<Inflight>,
    draining: AtomicBool,
    gate: Arc<Gate>,
    shutdown: Arc<AtomicBool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl BatchEngine {
    /// Spawns the batcher and worker threads for `model`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidInput`] on a zero-valued config knob.
    pub fn new(model: Arc<dyn ImageModel>, config: EngineConfig) -> Result<Self> {
        config.validate()?;
        let (submit_tx, submit_rx) = mpsc::sync_channel::<Job>(config.queue_capacity);
        // Small buffer so the batcher can run ahead of a busy worker without
        // unbounded batch pile-up.
        let (batch_tx, batch_rx) = mpsc::sync_channel::<Vec<Job>>(config.workers * 2);
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let queue_depth = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Gate::default());
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut threads = Vec::with_capacity(config.workers + 1);
        {
            let depth = Arc::clone(&queue_depth);
            let gate = Arc::clone(&gate);
            let shutdown = Arc::clone(&shutdown);
            let cfg = config.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("serve-batcher".into())
                    .spawn(move || batcher_loop(submit_rx, batch_tx, depth, gate, shutdown, cfg))
                    .map_err(|e| ServeError::Io(e.to_string()))?,
            );
        }
        for i in 0..config.workers {
            let model = Arc::clone(&model);
            let rx = Arc::clone(&batch_rx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(model, rx))
                    .map_err(|e| ServeError::Io(e.to_string()))?,
            );
        }

        Ok(BatchEngine {
            model,
            config,
            submit_tx,
            queue_depth,
            inflight: Arc::new(Inflight::default()),
            draining: AtomicBool::new(false),
            gate,
            shutdown,
            threads: Mutex::new(threads),
        })
    }

    /// The model this engine serves.
    pub fn model(&self) -> &Arc<dyn ImageModel> {
        &self.model
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Requests currently waiting in the bounded queue (not yet batched).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::SeqCst)
    }

    /// Requests accepted but not yet answered: queued, batching, or in a
    /// forward pass. This is the load signal the fleet router balances on
    /// (`queue_depth` alone goes dark the instant the batcher dequeues).
    pub fn in_flight(&self) -> usize {
        *self.inflight.count.lock()
    }

    /// Whether [`BatchEngine::drain`] has closed the submit gate.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Closes the submit gate (new submissions fail with
    /// [`ServeError::Draining`]) and blocks until every already-accepted
    /// request has been answered. Returns the number of requests that were
    /// in flight when the gate closed — the exact count the rollout
    /// invariant ("zero dropped in-flight requests") is proven against.
    ///
    /// Idempotent; a second call returns the remaining count (usually 0).
    /// Callers typically follow with [`BatchEngine::shutdown`].
    pub fn drain(&self) -> usize {
        // Lock before publishing the flag: a completion racing the gate
        // close blocks on this mutex until `at_gate_close` is read, so
        // observers that see `is_draining()` know the count was captured
        // with every one of those requests still in flight. The exact-drain
        // test leans on this ordering.
        let mut n = self.inflight.count.lock();
        self.draining.store(true, Ordering::SeqCst);
        let at_gate_close = *n;
        while *n > 0 {
            self.inflight.cv.wait(&mut n);
        }
        tel::counter("serve.drained", at_gate_close as u64);
        at_gate_close
    }

    /// Parks the batcher until the guard drops (deterministic tests only).
    pub fn pause(&self) -> PauseGuard<'_> {
        self.gate.set(true);
        PauseGuard { gate: &self.gate }
    }

    /// Enqueues one `[c, h, w]` image for batched inference.
    ///
    /// `budget` bounds the time until a worker *starts* the request's
    /// forward pass; expiry yields [`ServeError::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] when the bounded queue is at
    /// capacity (the request is rejected, not enqueued),
    /// [`ServeError::Shutdown`] after [`BatchEngine::shutdown`], and
    /// [`ServeError::InvalidInput`] on a shape mismatch.
    pub fn submit(
        &self,
        image: ibrar_tensor::Tensor,
        budget: Option<Duration>,
    ) -> Result<PendingResponse> {
        self.submit_traced(image, budget, None)
    }

    /// [`BatchEngine::submit`] carrying a request [`TraceId`]: the id labels
    /// the request's JSONL trace event so a slow request can be grepped
    /// straight to its per-stage breakdown.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchEngine::submit`].
    pub fn submit_traced(
        &self,
        image: ibrar_tensor::Tensor,
        budget: Option<Duration>,
        trace: Option<TraceId>,
    ) -> Result<PendingResponse> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::Shutdown);
        }
        if self.draining.load(Ordering::SeqCst) {
            tel::counter("serve.rejected.draining", 1);
            return Err(ServeError::Draining);
        }
        let expect = self.model.input_shape();
        if image.shape() != expect {
            return Err(ServeError::InvalidInput(format!(
                "image shape {:?} does not match model input {:?}",
                image.shape(),
                expect
            )));
        }
        // An already-expired budget can never be met: reject at submit
        // instead of letting the request burn a queue slot only to be
        // expired by the dispatch-time check anyway. (`Duration::ZERO`
        // is the degenerate case; no clock read needed to see it.)
        if budget.is_some_and(|b| b.is_zero()) {
            tel::counter("serve.rejected.deadline", 1);
            return Err(ServeError::DeadlineExceeded);
        }
        let now = Instant::now();
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            image,
            deadline: budget.map(|b| now + b),
            enqueued: now,
            dequeued: now,
            trace,
            reply: reply_tx,
            // Minted before try_send; a rejected job drops the token on
            // the error path so the count never includes unaccepted work.
            _inflight: InflightToken::mint(&self.inflight),
        };
        // Count before sending: once the job is visible to the batcher its
        // increment must already be, or the counter underflows.
        let depth = self.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        match self.submit_tx.try_send(job) {
            Ok(()) => {
                tel::counter("serve.requests", 1);
                tel::gauge("serve.queue_depth", depth as f64);
                Ok(PendingResponse { rx: reply_rx })
            }
            Err(e) => {
                self.queue_depth.fetch_sub(1, Ordering::SeqCst);
                match e {
                    TrySendError::Full(_) => {
                        tel::counter("serve.rejected.queue_full", 1);
                        Err(ServeError::QueueFull)
                    }
                    TrySendError::Disconnected(_) => Err(ServeError::Shutdown),
                }
            }
        }
    }

    /// Convenience: [`BatchEngine::submit`] + wait + argmax.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchEngine::submit`] and
    /// [`PendingResponse::wait`].
    pub fn classify(
        &self,
        image: ibrar_tensor::Tensor,
        budget: Option<Duration>,
    ) -> Result<Classification> {
        let logits = self.submit(image, budget)?.wait()?;
        Ok(Classification {
            label: argmax(logits.data()),
            logits: logits.data().to_vec(),
        })
    }

    /// Stops the batcher and workers, failing queued requests with
    /// [`ServeError::Shutdown`]. Idempotent; blocks until threads join.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.gate.set(false);
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn batcher_loop(
    submit_rx: Receiver<Job>,
    batch_tx: SyncSender<Vec<Job>>,
    depth: Arc<AtomicUsize>,
    gate: Arc<Gate>,
    shutdown: Arc<AtomicBool>,
    cfg: EngineConfig,
) {
    let dequeue = |mut job: Job| -> Job {
        let d = depth.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
        tel::gauge("serve.queue_depth", d as f64);
        job.dequeued = Instant::now();
        job
    };
    loop {
        // Wait for the first request of the next batch.
        let first = match submit_rx.recv_timeout(TICK) {
            Ok(job) => dequeue(job),
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        // Test hook: hold here so tests can fill the queue deterministically.
        gate.wait_open();
        if shutdown.load(Ordering::SeqCst) {
            let _ = first.reply.send(Err(ServeError::Shutdown));
            break;
        }

        let mut batch = vec![first];
        let flush_at = Instant::now() + cfg.max_wait;
        while batch.len() < cfg.max_batch {
            let now = Instant::now();
            if now >= flush_at {
                break;
            }
            match submit_rx.recv_timeout(flush_at - now) {
                Ok(job) => batch.push(dequeue(job)),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        tel::counter("serve.batches", 1);
        tel::observe("serve.batch_size", batch.len() as f64);
        if batch_tx.send(batch).is_err() {
            break; // workers gone; shutdown in progress
        }
    }
    // Fail anything still queued so no caller hangs.
    while let Ok(job) = submit_rx.try_recv() {
        let job = dequeue(job);
        let _ = job.reply.send(Err(ServeError::Shutdown));
    }
}

fn worker_loop(model: Arc<dyn ImageModel>, batch_rx: Arc<Mutex<Receiver<Vec<Job>>>>) {
    loop {
        // Hold the lock only while waiting for one batch; processing runs
        // unlocked so other workers can pick up the next batch meanwhile.
        let msg = { batch_rx.lock().recv_timeout(TICK) };
        let batch = match msg {
            Ok(batch) => batch,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        run_batch(model.as_ref(), batch);
    }
}

fn run_batch(model: &dyn ImageModel, batch: Vec<Job>) {
    let _s = tel::span!("serve.batch");
    let now = Instant::now();
    // Deadline check at dispatch time: a stale answer helps nobody.
    let mut live = Vec::with_capacity(batch.len());
    for job in batch {
        if job.deadline.is_some_and(|d| d < now) {
            tel::counter("serve.rejected.deadline", 1);
            let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }

    // Stack straight from the job-owned tensors — no per-image clone; the
    // batch buffer itself comes from the scratch pool.
    let images: Vec<&ibrar_tensor::Tensor> = live.iter().map(|j| &j.image).collect();
    let fwd_start = Instant::now();
    let result = ibrar_tensor::Tensor::stack_refs(&images)
        .map_err(ServeError::from)
        .and_then(|x| forward_eval(model, &x));
    let forward_ms = fwd_start.elapsed().as_secs_f64() * 1e3;
    match result {
        Ok(logits) => {
            for (i, job) in live.into_iter().enumerate() {
                let row = logits.row(i).map_err(ServeError::from);
                let timings = StageTimings {
                    queue_ms: (job.dequeued - job.enqueued).as_secs_f64() * 1e3,
                    batch_ms: (now - job.dequeued).as_secs_f64().max(0.0) * 1e3,
                    forward_ms,
                };
                observe_stages(&timings);
                tel::observe(
                    "serve.request_ms",
                    job.enqueued.elapsed().as_secs_f64() * 1e3,
                );
                if let Some(trace) = job.trace {
                    tel::event(
                        tel::Level::Debug,
                        "serve.request",
                        &[
                            ("trace", trace.to_string().into()),
                            ("queue_ms", timings.queue_ms.into()),
                            ("batch_ms", timings.batch_ms.into()),
                            ("forward_ms", timings.forward_ms.into()),
                        ],
                    );
                }
                let _ = job.reply.send(row.map(|r| (r, timings)));
            }
        }
        Err(e) => {
            tel::counter("serve.batch_errors", 1);
            for job in live {
                let _ = job.reply.send(Err(e.clone()));
            }
        }
    }
}

fn observe_stages(t: &StageTimings) {
    tel::observe("serve.stage.queue_ms", t.queue_ms);
    tel::observe("serve.stage.batch_ms", t.batch_ms);
    tel::observe("serve.stage.forward_ms", t.forward_ms);
}

/// First index of the maximum element (ties break low, matching
/// `Tensor::argmax_rows`).
pub(crate) fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

fn forward_eval(model: &dyn ImageModel, x: &ibrar_tensor::Tensor) -> Result<ibrar_tensor::Tensor> {
    let tape = ibrar_autograd::Tape::new();
    let sess = Session::new(&tape);
    let xv = tape.leaf(x.clone());
    let out = model.forward(&sess, xv, Mode::Eval)?;
    Ok(out.logits.value())
}
