//! Flight recorder: a bounded ring of recently completed requests.
//!
//! Aggregate histograms answer "how slow is the p99?"; the flight recorder
//! answers "*which* request was slow, and where did its time go?". Two
//! bounded rings, sized at construction:
//!
//! * **recent** — the last N traced requests, whatever their latency, so a
//!   dump always has fresh exemplars to look at.
//! * **breaches** — every request whose end-to-end latency exceeded the
//!   configured SLO, kept separately so a burst of healthy traffic cannot
//!   evict the interesting outliers.
//!
//! Both rings drop oldest-first and count what they dropped; the dump
//! ([`FlightRecorder::dump_json`]) is served live over the wire via the
//! Metrics opcode's `Flight` format. Recording is two ring pushes under one
//! mutex — nanoseconds against a millisecond-scale request — and happens on
//! the server's connection threads, never inside the batch loop.

use crate::engine::StageTimings;
use crate::protocol::{Opcode, Status};
use crate::trace::TraceId;
use ibrar_telemetry::json;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Default capacity of each ring.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One completed request, as remembered by the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// The request's trace id.
    pub trace: TraceId,
    /// Target model name (empty for model-less opcodes like Ping).
    pub model: String,
    /// Request opcode.
    pub opcode: Opcode,
    /// Final status sent to the client.
    pub status: Status,
    /// End-to-end server-side latency (receive → response encoded), ms.
    pub total_ms: f64,
    /// Engine-side stage breakdown (zeros for requests that never reached
    /// the engine, e.g. rejected or model-less ones).
    pub stages: StageTimings,
    /// Response-encoding stage, ms.
    pub encode_ms: f64,
    /// Wall-clock completion time, ms since the Unix epoch.
    pub ts_ms: u64,
}

impl FlightRecord {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"trace\":");
        json::write_string(&self.trace.to_string(), out);
        out.push_str(",\"model\":");
        json::write_string(&self.model, out);
        out.push_str(",\"opcode\":");
        json::write_string(&format!("{:?}", self.opcode), out);
        out.push_str(",\"status\":");
        json::write_string(&format!("{:?}", self.status), out);
        out.push_str(",\"total_ms\":");
        json::write_f64(self.total_ms, out);
        out.push_str(",\"queue_ms\":");
        json::write_f64(self.stages.queue_ms, out);
        out.push_str(",\"batch_ms\":");
        json::write_f64(self.stages.batch_ms, out);
        out.push_str(",\"forward_ms\":");
        json::write_f64(self.stages.forward_ms, out);
        out.push_str(",\"encode_ms\":");
        json::write_f64(self.encode_ms, out);
        out.push_str(",\"ts_ms\":");
        out.push_str(&self.ts_ms.to_string());
        out.push('}');
    }
}

#[derive(Debug, Default)]
struct Ring {
    records: VecDeque<FlightRecord>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, record: FlightRecord, capacity: usize) {
        if capacity == 0 {
            self.dropped += 1;
            return;
        }
        while self.records.len() >= capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }
}

/// Bounded retention of recent and SLO-breaching requests.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    slo_ms: Option<f64>,
    inner: Mutex<(Ring, Ring)>,
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `capacity` requests per ring and
    /// flagging requests slower than `slo_ms` (when set) as breaches.
    pub fn new(capacity: usize, slo_ms: Option<f64>) -> Self {
        FlightRecorder {
            capacity,
            slo_ms,
            inner: Mutex::new((Ring::default(), Ring::default())),
        }
    }

    /// The configured latency SLO, if any.
    pub fn slo_ms(&self) -> Option<f64> {
        self.slo_ms
    }

    /// Remembers one completed request. Requests breaching the SLO are
    /// additionally retained in the breach ring (and counted).
    pub fn record(&self, record: FlightRecord) {
        let breach = self.slo_ms.is_some_and(|slo| record.total_ms > slo);
        let mut inner = self.inner.lock();
        if breach {
            ibrar_telemetry::counter("serve.slo_breaches", 1);
            inner.1.push(record.clone(), self.capacity);
        }
        inner.0.push(record, self.capacity);
    }

    /// Number of requests currently in the recent ring.
    pub fn len(&self) -> usize {
        self.inner.lock().0.records.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of requests currently in the breach ring.
    pub fn breach_count(&self) -> usize {
        self.inner.lock().1.records.len()
    }

    /// Serializes both rings as one JSON document:
    /// `{"slo_ms":…,"recent":[…],"breaches":[…],"dropped_recent":…,
    /// "dropped_breaches":…}`.
    pub fn dump_json(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::with_capacity(256 + 200 * inner.0.records.len());
        out.push_str("{\"slo_ms\":");
        match self.slo_ms {
            Some(slo) => json::write_f64(slo, &mut out),
            None => out.push_str("null"),
        }
        for (key, ring) in [("recent", &inner.0), ("breaches", &inner.1)] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":[");
            for (i, r) in ring.records.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                r.write_json(&mut out);
            }
            out.push(']');
        }
        out.push_str(&format!(
            ",\"dropped_recent\":{},\"dropped_breaches\":{}}}",
            inner.0.dropped, inner.1.dropped
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibrar_telemetry::json::Json;

    fn record(total_ms: f64) -> FlightRecord {
        FlightRecord {
            trace: TraceId::generate(),
            model: "vgg".into(),
            opcode: Opcode::Classify,
            status: Status::Ok,
            total_ms,
            stages: StageTimings {
                queue_ms: 0.1,
                batch_ms: 0.2,
                forward_ms: total_ms * 0.8,
            },
            encode_ms: 0.05,
            ts_ms: 1_700_000_000_000,
        }
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let fr = FlightRecorder::new(4, None);
        let first = record(1.0);
        fr.record(first.clone());
        for _ in 0..6 {
            fr.record(record(1.0));
        }
        assert_eq!(fr.len(), 4);
        let dump = Json::parse(&fr.dump_json()).unwrap();
        let recent = dump.get("recent").unwrap().as_array().unwrap();
        assert_eq!(recent.len(), 4);
        assert_eq!(dump.get("dropped_recent").unwrap().as_f64(), Some(3.0));
        // The very first record was the first to go.
        let kept: Vec<_> = recent
            .iter()
            .map(|r| r.get("trace").unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(!kept.contains(&first.trace.to_string()));
    }

    #[test]
    fn slo_breaches_are_retained_separately() {
        let fr = FlightRecorder::new(2, Some(10.0));
        let slow = record(50.0);
        fr.record(slow.clone());
        // Healthy traffic churns the recent ring but must not evict the
        // breach.
        for _ in 0..5 {
            fr.record(record(1.0));
        }
        assert_eq!(fr.breach_count(), 1);
        let dump = Json::parse(&fr.dump_json()).unwrap();
        let breaches = dump.get("breaches").unwrap().as_array().unwrap();
        assert_eq!(breaches.len(), 1);
        assert_eq!(
            breaches[0].get("trace").unwrap().as_str(),
            Some(slow.trace.to_string().as_str())
        );
        assert_eq!(breaches[0].get("total_ms").unwrap().as_f64(), Some(50.0));
        // The recent ring no longer holds it.
        let recent = dump.get("recent").unwrap().as_array().unwrap();
        assert!(recent
            .iter()
            .all(|r| r.get("trace").unwrap().as_str() != Some(&slow.trace.to_string())));
    }

    #[test]
    fn no_slo_means_no_breaches() {
        let fr = FlightRecorder::new(8, None);
        fr.record(record(1e6));
        assert_eq!(fr.breach_count(), 0);
        assert_eq!(fr.len(), 1);
    }

    #[test]
    fn dump_includes_all_stage_fields() {
        let fr = FlightRecorder::new(8, Some(5.0));
        fr.record(record(2.0));
        let dump = Json::parse(&fr.dump_json()).unwrap();
        assert_eq!(dump.get("slo_ms").unwrap().as_f64(), Some(5.0));
        let r = &dump.get("recent").unwrap().as_array().unwrap()[0];
        for key in [
            "trace",
            "model",
            "opcode",
            "status",
            "total_ms",
            "queue_ms",
            "batch_ms",
            "forward_ms",
            "encode_ms",
            "ts_ms",
        ] {
            assert!(r.get(key).is_some(), "missing {key}");
        }
        assert_eq!(r.get("opcode").unwrap().as_str(), Some("Classify"));
        assert_eq!(r.get("status").unwrap().as_str(), Some("Ok"));
    }
}
