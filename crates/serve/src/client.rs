//! Blocking TCP client for the serving protocol.
//!
//! One [`Client`] wraps one connection and issues strictly sequential
//! request/response exchanges. Typed server-side rejections come back as
//! the same [`ServeError`] variants the engine produces locally:
//! [`ServeError::QueueFull`] and [`ServeError::DeadlineExceeded`] survive
//! the wire, so retry logic is identical for in-process and remote callers.

use crate::protocol::{
    decode_response, encode_request, error_for, read_frame, write_frame, Opcode, ProbeReport,
    ProbeSpec, Request, Response,
};
use crate::{Result, ServeError};
use ibrar_tensor::Tensor;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to a serve endpoint.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Applies a read timeout to all subsequent calls (`None` blocks
    /// forever, the default).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the socket rejects the option.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Liveness round-trip.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] / [`ServeError::Protocol`] on transport
    /// failures.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Classifies one `[c, h, w]` image; returns the argmax label.
    ///
    /// `deadline_ms == 0` means no deadline.
    ///
    /// # Errors
    ///
    /// Returns the server's typed rejection ([`ServeError::QueueFull`],
    /// [`ServeError::DeadlineExceeded`], [`ServeError::UnknownModel`], …)
    /// or a transport error.
    pub fn classify(&mut self, model: &str, image: &Tensor, deadline_ms: u64) -> Result<u32> {
        let req = Request::Classify {
            model: model.to_string(),
            deadline_ms,
            image: image.clone(),
            with_logits: false,
        };
        match self.call(&req)? {
            Response::Classified { label, .. } => Ok(label),
            other => Err(unexpected(&other)),
        }
    }

    /// Like [`Client::classify`], also returning the raw logits row.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::classify`].
    pub fn classify_with_logits(
        &mut self,
        model: &str,
        image: &Tensor,
        deadline_ms: u64,
    ) -> Result<(u32, Vec<f32>)> {
        let req = Request::Classify {
            model: model.to_string(),
            deadline_ms,
            image: image.clone(),
            with_logits: true,
        };
        match self.call(&req)? {
            Response::Classified {
                label,
                logits: Some(row),
            } => Ok((label, row)),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs a server-side robustness probe on one labeled image.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::classify`], plus attack failures
    /// surfaced as [`ServeError::Io`] with the server's message.
    pub fn robustness_probe(
        &mut self,
        model: &str,
        image: &Tensor,
        label: u32,
        spec: ProbeSpec,
    ) -> Result<ProbeReport> {
        let req = Request::RobustnessProbe {
            model: model.to_string(),
            label,
            spec,
            image: image.clone(),
        };
        match self.call(&req)? {
            Response::Probed(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response> {
        let op = match req {
            Request::Ping => Opcode::Ping,
            Request::Classify {
                with_logits: false, ..
            } => Opcode::Classify,
            Request::Classify { .. } => Opcode::ClassifyLogits,
            Request::RobustnessProbe { .. } => Opcode::RobustnessProbe,
        };
        write_frame(&mut self.stream, &encode_request(req))?;
        let body = read_frame(&mut self.stream)?
            .ok_or_else(|| ServeError::Io("server closed the connection".into()))?;
        match decode_response(op, body)? {
            Response::Error(status, message) => Err(error_for(status, message)),
            ok => Ok(ok),
        }
    }
}

fn unexpected(resp: &Response) -> ServeError {
    ServeError::Protocol(format!("unexpected response variant: {resp:?}"))
}
