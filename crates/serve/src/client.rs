//! Blocking TCP client for the serving protocol.
//!
//! One [`Client`] wraps one connection and issues strictly sequential
//! request/response exchanges. Typed server-side rejections come back as
//! the same [`ServeError`] variants the engine produces locally:
//! [`ServeError::QueueFull`] and [`ServeError::DeadlineExceeded`] survive
//! the wire, so retry logic is identical for in-process and remote callers.

use crate::protocol::{
    decode_response, encode_request_traced, error_for, opcode_for, read_frame, write_frame,
    MetricsFormat, ProbeReport, ProbeSpec, Request, Response,
};
use crate::trace::TraceId;
use crate::{Result, ServeError};
use ibrar_tensor::Tensor;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Acknowledgment of a completed hot-swap, returned by [`Client::rollout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutAck {
    /// Checkpoint generation now serving (registry version).
    pub version: u64,
    /// Exact count of old-generation in-flight requests answered during
    /// the drain (zero were dropped).
    pub drained: u64,
}

/// Server liveness summary returned by [`Client::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Number of per-model engines created so far.
    pub engines: u32,
    /// Requests waiting in engine queues, summed over all engines.
    pub queue_depth: u64,
}

/// A blocking connection to a serve endpoint.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Applies a read timeout to all subsequent calls (`None` blocks
    /// forever, the default).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the socket rejects the option.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Liveness round-trip.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] / [`ServeError::Protocol`] on transport
    /// failures.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Classifies one `[c, h, w]` image; returns the argmax label.
    ///
    /// `deadline_ms == 0` means no deadline.
    ///
    /// # Errors
    ///
    /// Returns the server's typed rejection ([`ServeError::QueueFull`],
    /// [`ServeError::DeadlineExceeded`], [`ServeError::UnknownModel`], …)
    /// or a transport error.
    pub fn classify(&mut self, model: &str, image: &Tensor, deadline_ms: u64) -> Result<u32> {
        let req = Request::Classify {
            model: model.to_string(),
            deadline_ms,
            image: image.clone(),
            with_logits: false,
        };
        match self.call(&req)? {
            Response::Classified { label, .. } => Ok(label),
            other => Err(unexpected(&other)),
        }
    }

    /// Like [`Client::classify`], sending a request [`TraceId`] on the v2
    /// wire format (minting one when `trace` is `None`) and returning it
    /// alongside the label. The id labels the request's server-side trace
    /// events and flight-recorder entry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::classify`].
    pub fn classify_traced(
        &mut self,
        model: &str,
        image: &Tensor,
        deadline_ms: u64,
        trace: Option<TraceId>,
    ) -> Result<(u32, TraceId)> {
        let trace = trace.unwrap_or_else(TraceId::generate);
        let req = Request::Classify {
            model: model.to_string(),
            deadline_ms,
            image: image.clone(),
            with_logits: false,
        };
        match self.call_traced(&req, Some(&trace))? {
            Response::Classified { label, .. } => Ok((label, trace)),
            other => Err(unexpected(&other)),
        }
    }

    /// Server liveness summary: uptime, engine count, aggregate queue depth.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Unsupported`] against pre-v2 servers, or a
    /// transport error.
    pub fn health(&mut self) -> Result<HealthReport> {
        match self.call(&Request::Health)? {
            Response::Healthy {
                uptime_ms,
                engines,
                queue_depth,
            } => Ok(HealthReport {
                uptime_ms,
                engines,
                queue_depth,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's metrics in the requested format: Prometheus
    /// text exposition, a JSON telemetry snapshot, or the flight-recorder
    /// dump.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Unsupported`] against pre-v2 servers, or a
    /// transport error.
    pub fn metrics(&mut self, format: MetricsFormat) -> Result<String> {
        match self.call(&Request::Metrics { format })? {
            Response::Metrics(payload) => Ok(payload),
            other => Err(unexpected(&other)),
        }
    }

    /// Like [`Client::classify`], also returning the raw logits row.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::classify`].
    pub fn classify_with_logits(
        &mut self,
        model: &str,
        image: &Tensor,
        deadline_ms: u64,
    ) -> Result<(u32, Vec<f32>)> {
        let req = Request::Classify {
            model: model.to_string(),
            deadline_ms,
            image: image.clone(),
            with_logits: true,
        };
        match self.call(&req)? {
            Response::Classified {
                label,
                logits: Some(row),
            } => Ok((label, row)),
            other => Err(unexpected(&other)),
        }
    }

    /// Admin: hot-swaps `model` onto the checkpoint at the server-local
    /// path `checkpoint`. Returns once the old replica generation has
    /// fully drained — every request it had accepted was answered.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for unregistered names, a
    /// typed rejection when the checkpoint is unloadable or its
    /// architecture fingerprint does not match the serving fleet, or a
    /// transport error.
    pub fn rollout(&mut self, model: &str, checkpoint: &str) -> Result<RolloutAck> {
        let req = Request::Rollout {
            model: model.to_string(),
            checkpoint: checkpoint.to_string(),
        };
        match self.call(&req)? {
            Response::RolledOut { version, drained } => Ok(RolloutAck { version, drained }),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs a server-side robustness probe on one labeled image.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::classify`], plus attack failures
    /// surfaced as [`ServeError::Io`] with the server's message.
    pub fn robustness_probe(
        &mut self,
        model: &str,
        image: &Tensor,
        label: u32,
        spec: ProbeSpec,
    ) -> Result<ProbeReport> {
        let req = Request::RobustnessProbe {
            model: model.to_string(),
            label,
            spec,
            image: image.clone(),
        };
        match self.call(&req)? {
            Response::Probed(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response> {
        self.call_traced(req, None)
    }

    fn call_traced(&mut self, req: &Request, trace: Option<&TraceId>) -> Result<Response> {
        let op = opcode_for(req);
        write_frame(&mut self.stream, &encode_request_traced(req, trace))?;
        let body = read_frame(&mut self.stream)?
            .ok_or_else(|| ServeError::Io("server closed the connection".into()))?;
        match decode_response(op, body)? {
            Response::Error(status, message) => Err(error_for(status, message)),
            ok => Ok(ok),
        }
    }
}

fn unexpected(resp: &Response) -> ServeError {
    ServeError::Protocol(format!("unexpected response variant: {resp:?}"))
}
