//! Length-prefixed binary protocol over TCP.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! u32 le body length | body
//! ```
//!
//! A request body is `u8 opcode` followed by opcode-specific fields; a
//! response body is `u8 status` followed by status-specific fields (an
//! error message for non-OK statuses). Tensors travel in the workspace
//! `IBT1` encoding ([`ibrar_tensor::Tensor::encode`]); strings are
//! `u32 le length + utf8`. The protocol is strictly request/response per
//! connection — no pipelining — which keeps the blocking client trivial.
//!
//! # Version 2: wire-propagated trace ids
//!
//! The high bit of the opcode byte ([`TRACE_FLAG`]) marks a v2 frame: the
//! opcode byte is followed by a 16-byte [`TraceId`] before the normal
//! fields. v1 frames (high bit clear) decode unchanged, and v1 servers
//! never see the flag from v1 clients, so the bump is fully backward
//! compatible. Requests without an id are assigned one at server ingress;
//! either way the id labels the request's trace events and its
//! flight-recorder entry.
//!
//! Load-shedding conditions keep their types across the wire:
//! [`ServeError::QueueFull`] and [`ServeError::DeadlineExceeded`] map to
//! dedicated status codes so clients can implement retry/backoff without
//! string matching. An opcode the server does not recognize comes back as
//! [`Status::UnsupportedOpcode`] — a typed response on a live connection,
//! not a dropped socket — so newer clients can probe for optional
//! endpoints (Health, Metrics) and fall back gracefully.

use crate::trace::TraceId;

use crate::{Classification, Result, ServeError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ibrar_tensor::Tensor;
use std::io::{Read, Write};

/// Largest accepted frame body (64 MiB): a corrupt length prefix must not
/// trigger a giant allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// High bit of the opcode byte: a 16-byte [`TraceId`] follows the opcode
/// (protocol v2). Frames without the flag are unchanged v1 frames.
pub const TRACE_FLAG: u8 = 0x80;

/// Request opcodes (the low 7 bits of the opcode byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness check; empty body, empty OK response.
    Ping = 0,
    /// Classify one image; responds with the argmax label.
    Classify = 1,
    /// Classify one image; responds with the label and the logits row.
    ClassifyLogits = 2,
    /// Run a white-box attack on one labeled image and report clean vs
    /// adversarial predictions.
    RobustnessProbe = 3,
    /// Liveness + readiness: uptime, loaded-engine count, queue depth.
    Health = 4,
    /// Observability scrape: Prometheus text, JSON snapshot, or a flight-
    /// recorder dump, selected by a format byte.
    Metrics = 5,
    /// Admin: hot-swap a model onto a new checkpoint. The old replica
    /// generation drains (every accepted request is answered) while the
    /// new one serves; responds with the new version and the exact count
    /// of requests drained.
    Rollout = 6,
}

impl Opcode {
    fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(Opcode::Ping),
            1 => Ok(Opcode::Classify),
            2 => Ok(Opcode::ClassifyLogits),
            3 => Ok(Opcode::RobustnessProbe),
            4 => Ok(Opcode::Health),
            5 => Ok(Opcode::Metrics),
            6 => Ok(Opcode::Rollout),
            other => Err(ServeError::Unsupported(format!("unknown opcode {other}"))),
        }
    }
}

/// Payload selector carried by a Metrics request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MetricsFormat {
    /// Prometheus text exposition of the full metric snapshot.
    Prometheus = 0,
    /// JSON serialization of the full metric snapshot
    /// (see [`ibrar_telemetry::Snapshot::to_json`]).
    Json = 1,
    /// JSON dump of the flight recorder (recent + SLO-breaching requests).
    Flight = 2,
}

impl MetricsFormat {
    fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(MetricsFormat::Prometheus),
            1 => Ok(MetricsFormat::Json),
            2 => Ok(MetricsFormat::Flight),
            other => Err(ServeError::Unsupported(format!(
                "unknown metrics format {other}"
            ))),
        }
    }
}

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success; body is opcode-specific.
    Ok = 0,
    /// Typed backpressure: the request queue was full.
    QueueFull = 1,
    /// Typed expiry: the deadline passed before dispatch.
    DeadlineExceeded = 2,
    /// The named model is not registered.
    UnknownModel = 3,
    /// Malformed request (bad frame, bad field, bad tensor shape).
    BadRequest = 4,
    /// Server-side failure (forward error, checkpoint error, shutdown).
    Internal = 5,
    /// The opcode (or a sub-selector like the metrics format) is not
    /// supported by this server. The connection stays open.
    UnsupportedOpcode = 6,
    /// Typed transient rejection: the target engine is draining for a
    /// rollout. Retry; the fleet (or its successor generation) will
    /// accept.
    Draining = 7,
}

impl Status {
    fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(Status::Ok),
            1 => Ok(Status::QueueFull),
            2 => Ok(Status::DeadlineExceeded),
            3 => Ok(Status::UnknownModel),
            4 => Ok(Status::BadRequest),
            5 => Ok(Status::Internal),
            6 => Ok(Status::UnsupportedOpcode),
            7 => Ok(Status::Draining),
            other => Err(ServeError::Protocol(format!("unknown status {other}"))),
        }
    }
}

/// Maps a server-side error to its wire status.
pub fn status_for(err: &ServeError) -> Status {
    match err {
        ServeError::QueueFull => Status::QueueFull,
        ServeError::DeadlineExceeded => Status::DeadlineExceeded,
        ServeError::Draining => Status::Draining,
        ServeError::UnknownModel(_) => Status::UnknownModel,
        ServeError::Unsupported(_) => Status::UnsupportedOpcode,
        ServeError::Protocol(_) | ServeError::InvalidInput(_) | ServeError::Tensor(_) => {
            Status::BadRequest
        }
        _ => Status::Internal,
    }
}

/// Reconstructs the typed error for a non-OK status on the client side.
pub fn error_for(status: Status, message: String) -> ServeError {
    match status {
        Status::Ok => ServeError::Protocol("error_for called with Status::Ok".into()),
        Status::QueueFull => ServeError::QueueFull,
        Status::DeadlineExceeded => ServeError::DeadlineExceeded,
        Status::UnknownModel => ServeError::UnknownModel(message),
        Status::BadRequest => ServeError::InvalidInput(message),
        Status::Internal => ServeError::Io(message),
        Status::UnsupportedOpcode => ServeError::Unsupported(message),
        Status::Draining => ServeError::Draining,
    }
}

/// Which attack a [`ProbeSpec`] runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackKind {
    /// Single-step FGSM at `eps`.
    Fgsm,
    /// PGD without random start: deterministic, `steps` iterations of
    /// `alpha` projected onto the `eps` ball.
    Pgd,
}

/// Attack configuration carried by a robustness-probe request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSpec {
    /// Attack family.
    pub kind: AttackKind,
    /// L∞ budget.
    pub eps: f32,
    /// PGD step size (ignored for FGSM).
    pub alpha: f32,
    /// PGD iteration count (ignored for FGSM).
    pub steps: u32,
}

impl ProbeSpec {
    /// The paper's default FGSM budget (ε = 8/255).
    pub fn fgsm_default() -> Self {
        ProbeSpec {
            kind: AttackKind::Fgsm,
            eps: ibrar_attacks::DEFAULT_EPS,
            alpha: 0.0,
            steps: 0,
        }
    }

    /// The paper's default PGD budget (ε = 8/255, α = 2/255, 10 steps).
    pub fn pgd_default() -> Self {
        ProbeSpec {
            kind: AttackKind::Pgd,
            eps: ibrar_attacks::DEFAULT_EPS,
            alpha: ibrar_attacks::DEFAULT_ALPHA,
            steps: ibrar_attacks::DEFAULT_STEPS as u32,
        }
    }
}

/// Result of a robustness probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeReport {
    /// Model prediction on the clean image.
    pub clean_pred: u32,
    /// Model prediction on the adversarial image.
    pub adv_pred: u32,
    /// Whether the clean prediction matched the supplied label.
    pub clean_correct: bool,
    /// Whether the adversarial prediction matched the supplied label.
    pub adv_correct: bool,
}

/// A decoded request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Classify `image` with `model`, optionally bounded by `deadline_ms`.
    Classify {
        /// Registry name of the target model.
        model: String,
        /// Milliseconds of deadline budget; `0` means none.
        deadline_ms: u64,
        /// `[c, h, w]` image.
        image: Tensor,
        /// Whether to include the logits row in the response.
        with_logits: bool,
    },
    /// Attack `image` (true label `label`) on `model` per `spec`.
    RobustnessProbe {
        /// Registry name of the target model.
        model: String,
        /// Ground-truth class of `image`.
        label: u32,
        /// Attack configuration.
        spec: ProbeSpec,
        /// `[c, h, w]` image.
        image: Tensor,
    },
    /// Liveness + readiness check.
    Health,
    /// Observability scrape in the requested format.
    Metrics {
        /// Which payload to return.
        format: MetricsFormat,
    },
    /// Admin: hot-swap `model` onto the checkpoint at `checkpoint` (a
    /// server-local path). Architecture-fingerprint-checked server-side.
    Rollout {
        /// Registry name of the target model.
        model: String,
        /// Server-local path of the replacement checkpoint.
        checkpoint: String,
    },
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Empty success (ping).
    Pong,
    /// Classification success. `logits` is present iff the request asked.
    Classified {
        /// Argmax class index.
        label: u32,
        /// Logits row, when requested.
        logits: Option<Vec<f32>>,
    },
    /// Robustness probe success.
    Probed(ProbeReport),
    /// Health success.
    Healthy {
        /// Milliseconds since the server started.
        uptime_ms: u64,
        /// Number of lazily instantiated engines.
        engines: u32,
        /// Total jobs currently queued across engines.
        queue_depth: u64,
    },
    /// Metrics success: the payload text in the requested format.
    Metrics(String),
    /// Rollout success.
    RolledOut {
        /// Checkpoint generation now serving (registry version).
        version: u64,
        /// Exact count of old-generation in-flight requests that were
        /// answered (not dropped) during the drain.
        drained: u64,
    },
    /// Any non-OK status with its human-readable message.
    Error(Status, String),
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes, what: &str) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(ServeError::Protocol(format!("truncated {what} length")));
    }
    let len = buf.get_u32_le() as usize;
    if len > MAX_FRAME {
        return Err(ServeError::Protocol(format!(
            "implausible {what} length {len}"
        )));
    }
    if buf.remaining() < len {
        return Err(ServeError::Protocol(format!("truncated {what}")));
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| ServeError::Protocol(format!("{what} is not utf-8")))
}

fn get_tensor(buf: &mut Bytes) -> Result<Tensor> {
    Tensor::decode(buf).map_err(|e| ServeError::Protocol(format!("bad tensor: {e}")))
}

/// The opcode a request encodes to.
pub fn opcode_for(req: &Request) -> Opcode {
    match req {
        Request::Ping => Opcode::Ping,
        Request::Classify {
            with_logits: true, ..
        } => Opcode::ClassifyLogits,
        Request::Classify { .. } => Opcode::Classify,
        Request::RobustnessProbe { .. } => Opcode::RobustnessProbe,
        Request::Health => Opcode::Health,
        Request::Metrics { .. } => Opcode::Metrics,
        Request::Rollout { .. } => Opcode::Rollout,
    }
}

/// Encodes a v1 request body (no frame prefix, no trace id).
pub fn encode_request(req: &Request) -> Bytes {
    encode_request_traced(req, None)
}

/// Encodes a request body; with a trace id the frame is v2 (the opcode
/// byte carries [`TRACE_FLAG`] and the 16 id bytes follow it).
pub fn encode_request_traced(req: &Request, trace: Option<&TraceId>) -> Bytes {
    let mut buf = BytesMut::new();
    let op = opcode_for(req) as u8;
    match trace {
        Some(id) => {
            buf.put_u8(op | TRACE_FLAG);
            buf.put_slice(id.as_bytes());
        }
        None => buf.put_u8(op),
    }
    match req {
        Request::Ping | Request::Health => {}
        Request::Classify {
            model,
            deadline_ms,
            image,
            ..
        } => {
            put_str(&mut buf, model);
            buf.put_u64_le(*deadline_ms);
            buf.put_slice(&image.encode());
        }
        Request::RobustnessProbe {
            model,
            label,
            spec,
            image,
        } => {
            put_str(&mut buf, model);
            buf.put_u32_le(*label);
            buf.put_u8(match spec.kind {
                AttackKind::Fgsm => 0,
                AttackKind::Pgd => 1,
            });
            buf.put_f32_le(spec.eps);
            buf.put_f32_le(spec.alpha);
            buf.put_u32_le(spec.steps);
            buf.put_slice(&image.encode());
        }
        Request::Metrics { format } => buf.put_u8(*format as u8),
        Request::Rollout { model, checkpoint } => {
            put_str(&mut buf, model);
            put_str(&mut buf, checkpoint);
        }
    }
    buf.freeze()
}

/// Decodes a request body, discarding any trace id (v1 view).
///
/// # Errors
///
/// Returns [`ServeError::Unsupported`] on unknown opcodes and
/// [`ServeError::Protocol`] on malformed or trailing bytes.
pub fn decode_request(body: Bytes) -> Result<Request> {
    decode_request_traced(body).map(|(req, _)| req)
}

/// Decodes a request body together with its trace id, if the frame
/// carried one (v2).
///
/// # Errors
///
/// Returns [`ServeError::Unsupported`] on unknown opcodes and
/// [`ServeError::Protocol`] on malformed or trailing bytes.
pub fn decode_request_traced(mut body: Bytes) -> Result<(Request, Option<TraceId>)> {
    if body.remaining() < 1 {
        return Err(ServeError::Protocol("empty request body".into()));
    }
    let op_byte = body.get_u8();
    let trace = if op_byte & TRACE_FLAG != 0 {
        if body.remaining() < 16 {
            return Err(ServeError::Protocol("truncated trace id".into()));
        }
        let mut id = [0u8; 16];
        body.copy_to_slice(&mut id);
        Some(TraceId::from_bytes(id))
    } else {
        None
    };
    let op = Opcode::from_u8(op_byte & !TRACE_FLAG)?;
    let req = match op {
        Opcode::Ping => Request::Ping,
        Opcode::Classify | Opcode::ClassifyLogits => {
            let model = get_str(&mut body, "model name")?;
            if body.remaining() < 8 {
                return Err(ServeError::Protocol("truncated deadline".into()));
            }
            let deadline_ms = body.get_u64_le();
            let image = get_tensor(&mut body)?;
            Request::Classify {
                model,
                deadline_ms,
                image,
                with_logits: op == Opcode::ClassifyLogits,
            }
        }
        Opcode::RobustnessProbe => {
            let model = get_str(&mut body, "model name")?;
            if body.remaining() < 17 {
                return Err(ServeError::Protocol("truncated probe spec".into()));
            }
            let label = body.get_u32_le();
            let kind = match body.get_u8() {
                0 => AttackKind::Fgsm,
                1 => AttackKind::Pgd,
                other => {
                    return Err(ServeError::Protocol(format!("unknown attack kind {other}")));
                }
            };
            let eps = body.get_f32_le();
            let alpha = body.get_f32_le();
            let steps = body.get_u32_le();
            let image = get_tensor(&mut body)?;
            Request::RobustnessProbe {
                model,
                label,
                spec: ProbeSpec {
                    kind,
                    eps,
                    alpha,
                    steps,
                },
                image,
            }
        }
        Opcode::Health => Request::Health,
        Opcode::Metrics => {
            if body.remaining() < 1 {
                return Err(ServeError::Protocol("truncated metrics format".into()));
            }
            Request::Metrics {
                format: MetricsFormat::from_u8(body.get_u8())?,
            }
        }
        Opcode::Rollout => {
            let model = get_str(&mut body, "model name")?;
            let checkpoint = get_str(&mut body, "checkpoint path")?;
            Request::Rollout { model, checkpoint }
        }
    };
    if body.has_remaining() {
        return Err(ServeError::Protocol(format!(
            "{} trailing byte(s) after request",
            body.remaining()
        )));
    }
    Ok((req, trace))
}

/// Encodes a response body (no frame prefix).
pub fn encode_response(resp: &Response) -> Bytes {
    let mut buf = BytesMut::new();
    match resp {
        Response::Pong => buf.put_u8(Status::Ok as u8),
        Response::Classified { label, logits } => {
            buf.put_u8(Status::Ok as u8);
            buf.put_u32_le(*label);
            match logits {
                Some(row) => {
                    buf.put_u8(1);
                    buf.put_u32_le(row.len() as u32);
                    for &v in row {
                        buf.put_f32_le(v);
                    }
                }
                None => buf.put_u8(0),
            }
        }
        Response::Probed(r) => {
            buf.put_u8(Status::Ok as u8);
            buf.put_u32_le(r.clean_pred);
            buf.put_u32_le(r.adv_pred);
            buf.put_u8(u8::from(r.clean_correct));
            buf.put_u8(u8::from(r.adv_correct));
        }
        Response::Healthy {
            uptime_ms,
            engines,
            queue_depth,
        } => {
            buf.put_u8(Status::Ok as u8);
            buf.put_u64_le(*uptime_ms);
            buf.put_u32_le(*engines);
            buf.put_u64_le(*queue_depth);
        }
        Response::Metrics(payload) => {
            buf.put_u8(Status::Ok as u8);
            put_str(&mut buf, payload);
        }
        Response::RolledOut { version, drained } => {
            buf.put_u8(Status::Ok as u8);
            buf.put_u64_le(*version);
            buf.put_u64_le(*drained);
        }
        Response::Error(status, message) => {
            buf.put_u8(*status as u8);
            put_str(&mut buf, message);
        }
    }
    buf.freeze()
}

/// Decodes a response body for the given request opcode.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on malformed bodies.
pub fn decode_response(op: Opcode, mut body: Bytes) -> Result<Response> {
    if body.remaining() < 1 {
        return Err(ServeError::Protocol("empty response body".into()));
    }
    let status = Status::from_u8(body.get_u8())?;
    if status != Status::Ok {
        let message = get_str(&mut body, "error message")?;
        return Ok(Response::Error(status, message));
    }
    let resp = match op {
        Opcode::Ping => Response::Pong,
        Opcode::Classify | Opcode::ClassifyLogits => {
            if body.remaining() < 5 {
                return Err(ServeError::Protocol("truncated classification".into()));
            }
            let label = body.get_u32_le();
            let logits = match body.get_u8() {
                0 => None,
                1 => {
                    if body.remaining() < 4 {
                        return Err(ServeError::Protocol("truncated logits length".into()));
                    }
                    let n = body.get_u32_le() as usize;
                    if body.remaining() < n * 4 {
                        return Err(ServeError::Protocol("truncated logits".into()));
                    }
                    Some((0..n).map(|_| body.get_f32_le()).collect())
                }
                other => {
                    return Err(ServeError::Protocol(format!("bad logits flag {other}")));
                }
            };
            Response::Classified { label, logits }
        }
        Opcode::RobustnessProbe => {
            if body.remaining() < 10 {
                return Err(ServeError::Protocol("truncated probe report".into()));
            }
            Response::Probed(ProbeReport {
                clean_pred: body.get_u32_le(),
                adv_pred: body.get_u32_le(),
                clean_correct: body.get_u8() != 0,
                adv_correct: body.get_u8() != 0,
            })
        }
        Opcode::Health => {
            if body.remaining() < 20 {
                return Err(ServeError::Protocol("truncated health report".into()));
            }
            Response::Healthy {
                uptime_ms: body.get_u64_le(),
                engines: body.get_u32_le(),
                queue_depth: body.get_u64_le(),
            }
        }
        Opcode::Metrics => Response::Metrics(get_str(&mut body, "metrics payload")?),
        Opcode::Rollout => {
            if body.remaining() < 16 {
                return Err(ServeError::Protocol("truncated rollout ack".into()));
            }
            Response::RolledOut {
                version: body.get_u64_le(),
                drained: body.get_u64_le(),
            }
        }
    };
    if body.has_remaining() {
        return Err(ServeError::Protocol(format!(
            "{} trailing byte(s) after response",
            body.remaining()
        )));
    }
    Ok(resp)
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Returns [`ServeError::Io`] on socket failures and
/// [`ServeError::Protocol`] when `body` exceeds [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<()> {
    if body.len() > MAX_FRAME {
        return Err(ServeError::Protocol(format!(
            "frame body {} exceeds max {MAX_FRAME}",
            body.len()
        )));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary.
///
/// # Errors
///
/// Returns [`ServeError::Io`] on socket failures and
/// [`ServeError::Protocol`] on an oversized length prefix or a mid-frame
/// close.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Bytes>> {
    let mut prefix = [0u8; 4];
    match r.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(ServeError::Protocol(format!(
            "frame length {len} exceeds max {MAX_FRAME}"
        )));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| ServeError::Protocol(format!("connection closed mid-frame: {e}")))?;
    Ok(Some(Bytes::from(body)))
}

/// Converts an engine [`Classification`] into a wire response.
pub fn classification_response(c: &Classification, with_logits: bool) -> Response {
    Response::Classified {
        label: c.label as u32,
        logits: with_logits.then(|| c.logits.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> Tensor {
        Tensor::from_fn(&[3, 4, 4], |i| (i[0] * 16 + i[1] * 4 + i[2]) as f32 / 48.0)
    }

    #[test]
    fn request_roundtrips() {
        let reqs = [
            Request::Ping,
            Request::Classify {
                model: "vgg".into(),
                deadline_ms: 250,
                image: image(),
                with_logits: true,
            },
            Request::RobustnessProbe {
                model: "resnet".into(),
                label: 3,
                spec: ProbeSpec::pgd_default(),
                image: image(),
            },
            Request::Health,
            Request::Metrics {
                format: MetricsFormat::Prometheus,
            },
            Request::Metrics {
                format: MetricsFormat::Flight,
            },
            Request::Rollout {
                model: "vgg".into(),
                checkpoint: "/tmp/vgg-v2.ibsc".into(),
            },
        ];
        for req in reqs {
            let (back, trace) = decode_request_traced(encode_request(&req)).unwrap();
            assert_eq!(format!("{req:?}"), format!("{back:?}"));
            assert_eq!(trace, None, "v1 frame must carry no trace id");
        }
    }

    #[test]
    fn v2_frames_round_trip_the_trace_id() {
        let id = TraceId::generate();
        let reqs = [
            Request::Ping,
            Request::Classify {
                model: "vgg".into(),
                deadline_ms: 100,
                image: image(),
                with_logits: false,
            },
            Request::Health,
            Request::Metrics {
                format: MetricsFormat::Json,
            },
        ];
        for req in reqs {
            let body = encode_request_traced(&req, Some(&id));
            assert_eq!(body[0] & TRACE_FLAG, TRACE_FLAG);
            let (back, trace) = decode_request_traced(body).unwrap();
            assert_eq!(format!("{req:?}"), format!("{back:?}"));
            assert_eq!(trace, Some(id));
        }
    }

    #[test]
    fn truncated_trace_id_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u8(Opcode::Ping as u8 | TRACE_FLAG);
        raw.put_slice(&[0u8; 8]); // half an id
        assert!(matches!(
            decode_request_traced(raw.freeze()),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn response_roundtrips() {
        let cases = [
            (Opcode::Ping, Response::Pong),
            (
                Opcode::Classify,
                Response::Classified {
                    label: 7,
                    logits: None,
                },
            ),
            (
                Opcode::ClassifyLogits,
                Response::Classified {
                    label: 2,
                    logits: Some(vec![0.5, -1.25, 3.0]),
                },
            ),
            (
                Opcode::RobustnessProbe,
                Response::Probed(ProbeReport {
                    clean_pred: 1,
                    adv_pred: 4,
                    clean_correct: true,
                    adv_correct: false,
                }),
            ),
            (
                Opcode::Health,
                Response::Healthy {
                    uptime_ms: 12_345,
                    engines: 2,
                    queue_depth: 7,
                },
            ),
            (
                Opcode::Metrics,
                Response::Metrics("# TYPE ibrar_serve_requests counter\n".into()),
            ),
            (
                Opcode::Classify,
                Response::Error(Status::QueueFull, "request queue full".into()),
            ),
            (
                Opcode::Metrics,
                Response::Error(Status::UnsupportedOpcode, "unknown opcode 99".into()),
            ),
            (
                Opcode::Rollout,
                Response::RolledOut {
                    version: 2,
                    drained: 17,
                },
            ),
            (
                Opcode::Classify,
                Response::Error(
                    Status::Draining,
                    "engine draining for rollout; retry".into(),
                ),
            ),
        ];
        for (op, resp) in cases {
            let back = decode_response(op, encode_response(&resp)).unwrap();
            assert_eq!(resp, back);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut raw = BytesMut::new();
        raw.put_slice(&encode_request(&Request::Ping));
        raw.put_u8(0);
        assert!(matches!(
            decode_request(raw.freeze()),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn unknown_opcode_is_typed_unsupported() {
        // 0x48 = unknown opcode 72; 0xC8 = the same with the trace flag,
        // which must be masked off before the opcode check.
        let mut raw = BytesMut::new();
        raw.put_u8(0x48);
        assert!(matches!(
            decode_request(raw.freeze()),
            Err(ServeError::Unsupported(_))
        ));
        let mut raw = BytesMut::new();
        raw.put_u8(0xC8);
        raw.put_slice(&[0u8; 16]);
        assert!(matches!(
            decode_request(raw.freeze()),
            Err(ServeError::Unsupported(_))
        ));
        assert_eq!(
            status_for(&ServeError::Unsupported("x".into())),
            Status::UnsupportedOpcode
        );
        assert!(matches!(
            error_for(Status::UnsupportedOpcode, "unknown opcode 72".into()),
            ServeError::Unsupported(m) if m.contains("72")
        ));
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(&read_frame(&mut cursor).unwrap().unwrap()[..], b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap().len(), 0);
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn typed_statuses_roundtrip_to_typed_errors() {
        assert_eq!(
            error_for(Status::QueueFull, String::new()),
            ServeError::QueueFull
        );
        assert_eq!(
            error_for(Status::DeadlineExceeded, String::new()),
            ServeError::DeadlineExceeded
        );
        assert_eq!(status_for(&ServeError::QueueFull), Status::QueueFull);
        assert_eq!(
            status_for(&ServeError::DeadlineExceeded),
            Status::DeadlineExceeded
        );
        assert_eq!(status_for(&ServeError::Draining), Status::Draining);
        assert_eq!(
            error_for(Status::Draining, String::new()),
            ServeError::Draining
        );
    }
}
