//! Named checkpoint registry with lazy loading and caching.
//!
//! A [`ModelRegistry`] maps model names to a *builder* (how to construct a
//! fresh, randomly-initialized instance of the right architecture) plus a
//! checkpoint path (which weights to load into it). Nothing is built or
//! read from disk at registration; the first [`ModelRegistry::get`] pays
//! the build + load cost, and every later `get` returns the cached
//! `Arc<dyn ImageModel>`.
//!
//! A failed load is not cached: the error is returned and the next `get`
//! retries, so a checkpoint written after registration (or a transient
//! filesystem failure) heals without a restart.

use crate::checkpoint::load_from_path;
use crate::{Result, ServeError};
use ibrar_nn::ImageModel;
use ibrar_telemetry as tel;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Constructs a fresh instance of a registered architecture.
pub type ModelBuilder = dyn Fn() -> ibrar_nn::Result<Box<dyn ImageModel>> + Send + Sync;

/// Turns a checkpoint path into a ready-to-serve model. The general form of
/// registration: [`ModelRegistry::register`] is the common build-then-load
/// case, while [`ModelRegistry::register_loader`] accepts any loader — e.g.
/// the int8 path, which loads an f32 `VggMini` and then quantizes it into an
/// [`crate::Int8Vgg`] before serving.
pub type ModelLoader = dyn Fn(&std::path::Path) -> crate::Result<Arc<dyn ImageModel>> + Send + Sync;

struct Entry {
    path: PathBuf,
    load: Arc<ModelLoader>,
    cached: Option<Arc<dyn ImageModel>>,
    /// Checkpoint generation: 1 at registration, +1 per successful
    /// [`ModelRegistry::retarget`]. Monotonic for the life of the entry so
    /// rollout acks can be ordered.
    version: u64,
}

/// Thread-safe map from model name to lazily-loaded checkpointed model.
#[derive(Default)]
pub struct ModelRegistry {
    entries: Mutex<HashMap<String, Entry>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Registers `name` as `builder`'s architecture with weights at `path`.
    ///
    /// Re-registering a name replaces the entry and drops any cached model.
    pub fn register<F>(&self, name: &str, path: impl Into<PathBuf>, builder: F)
    where
        F: Fn() -> ibrar_nn::Result<Box<dyn ImageModel>> + Send + Sync + 'static,
    {
        self.register_loader(name, path, move |path| {
            let model: Box<dyn ImageModel> = builder()?;
            load_from_path(model.as_ref(), path)?;
            Ok(Arc::from(model))
        });
    }

    /// Registers `name` with an arbitrary checkpoint loader — the hook for
    /// serving paths that post-process a loaded model, like int8
    /// quantization ([`crate::Int8Vgg`]). Same laziness and caching as
    /// [`ModelRegistry::register`].
    pub fn register_loader<F>(&self, name: &str, path: impl Into<PathBuf>, loader: F)
    where
        F: Fn(&std::path::Path) -> crate::Result<Arc<dyn ImageModel>> + Send + Sync + 'static,
    {
        self.entries.lock().insert(
            name.to_string(),
            Entry {
                path: path.into(),
                load: Arc::new(loader),
                cached: None,
                version: 1,
            },
        );
    }

    /// The checkpoint generation for `name` (1 until the first retarget),
    /// or `None` for unregistered names.
    pub fn version(&self, name: &str) -> Option<u64> {
        self.entries.lock().get(name).map(|e| e.version)
    }

    /// Points `name` at a new checkpoint and returns the bumped version
    /// plus the freshly-loaded model — the registry half of a hot swap.
    ///
    /// The new checkpoint is loaded through the entry's existing loader
    /// *before* anything is installed: a malformed or missing file leaves
    /// the entry (path, cache, version) untouched and still serving the
    /// old weights.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for unregistered names and
    /// propagates loader failures without mutating the entry.
    pub fn retarget(
        &self,
        name: &str,
        path: impl Into<PathBuf>,
    ) -> Result<(u64, Arc<dyn ImageModel>)> {
        let path = path.into();
        let load = {
            let entries = self.entries.lock();
            let entry = entries
                .get(name)
                .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
            Arc::clone(&entry.load)
        };

        // Validate-by-loading outside the lock, same as `get`.
        let _s = tel::span!("serve.registry.load");
        tel::counter("serve.registry.load", 1);
        let model: Arc<dyn ImageModel> = load(&path)?;

        let mut entries = self.entries.lock();
        let entry = entries
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        entry.path = path;
        entry.cached = Some(Arc::clone(&model));
        entry.version += 1;
        tel::counter("serve.registry.retarget", 1);
        Ok((entry.version, model))
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Whether `name`'s model is currently built and cached.
    pub fn is_loaded(&self, name: &str) -> bool {
        self.entries
            .lock()
            .get(name)
            .is_some_and(|e| e.cached.is_some())
    }

    /// Drops the cached model for `name` (the next `get` reloads from disk).
    /// Returns `false` when the name is unknown.
    pub fn evict(&self, name: &str) -> bool {
        match self.entries.lock().get_mut(name) {
            Some(e) => {
                e.cached = None;
                true
            }
            None => false,
        }
    }

    /// Returns the model for `name`, loading its checkpoint on first use.
    ///
    /// The registry lock is *not* held during the build + load (which can
    /// take long for big checkpoints); two concurrent first requests may
    /// both load, and the first to finish wins the cache slot — both get a
    /// fully-loaded model either way.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for unregistered names and
    /// propagates build ([`ServeError::Nn`]) and checkpoint errors. Errors
    /// are not cached; the next call retries.
    pub fn get(&self, name: &str) -> Result<Arc<dyn ImageModel>> {
        let (path, load) = {
            let entries = self.entries.lock();
            let entry = entries
                .get(name)
                .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
            if let Some(cached) = &entry.cached {
                tel::counter("serve.registry.hit", 1);
                return Ok(Arc::clone(cached));
            }
            (entry.path.clone(), Arc::clone(&entry.load))
        };

        let _s = tel::span!("serve.registry.load");
        tel::counter("serve.registry.load", 1);
        let model: Arc<dyn ImageModel> = load(&path)?;

        let mut entries = self.entries.lock();
        match entries.get_mut(name) {
            // Keep an existing winner so every caller shares one instance.
            Some(e) => match &e.cached {
                Some(winner) => Ok(Arc::clone(winner)),
                None => {
                    e.cached = Some(Arc::clone(&model));
                    Ok(model)
                }
            },
            // Entry was replaced/removed mid-load; hand back what we built.
            None => Ok(model),
        }
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("names", &self.names())
            .finish()
    }
}
