//! Fleet dispatch: which replica serves the next request.
//!
//! Two policies, both deterministic given the same fleet state:
//!
//! * [`DispatchPolicy::LeastQueueDepth`] (default) — pick the replica with
//!   the fewest outstanding requests (queued *and* dispatched; ties break
//!   to the lowest replica id). Remaining replicas are candidates in load
//!   order, so the pool can fail over past a full or draining replica.
//! * [`DispatchPolicy::ConsistentHash`] — hash the request's
//!   [`TraceId::routing_key`] onto a fixed ring of virtual nodes
//!   ([`VNODES`] per replica). The same trace id always lands on the same
//!   replica, and when a replica dies only its arc of the ring moves — keys
//!   whose primary survives keep their primary. Requests without a trace id
//!   fall back to least-depth ordering.
//!
//! The router ranks candidates; the [`pool`](crate::pool) owns the
//! liveness/backpressure semantics of actually trying them in order.

use crate::trace::{splitmix64, TraceId};

/// Virtual nodes per replica on the consistent-hash ring. 32 keeps the
/// arc-length imbalance across a handful of replicas within a few percent
/// while the ring stays small enough to scan-build at pool construction.
pub const VNODES: usize = 32;

/// Replica-selection policy for a [`crate::ReplicaPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Route to the replica with the fewest outstanding requests.
    LeastQueueDepth,
    /// Route by consistent hash of the request's trace id.
    ConsistentHash,
}

impl std::str::FromStr for DispatchPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "least-depth" | "least" => Ok(DispatchPolicy::LeastQueueDepth),
            "hash" | "consistent-hash" => Ok(DispatchPolicy::ConsistentHash),
            other => Err(format!(
                "unknown dispatch policy {other:?} (expected least-depth or consistent-hash)"
            )),
        }
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchPolicy::LeastQueueDepth => write!(f, "least-depth"),
            DispatchPolicy::ConsistentHash => write!(f, "consistent-hash"),
        }
    }
}

/// Ranks replicas for dispatch under a fixed policy and replica count.
pub struct Router {
    policy: DispatchPolicy,
    /// `(point, replica)` sorted by point; empty under least-depth.
    ring: Vec<(u64, usize)>,
}

impl Router {
    /// Builds a router for `replicas` slots.
    pub fn new(policy: DispatchPolicy, replicas: usize) -> Self {
        let ring = match policy {
            DispatchPolicy::LeastQueueDepth => Vec::new(),
            DispatchPolicy::ConsistentHash => {
                let mut ring = Vec::with_capacity(replicas * VNODES);
                for r in 0..replicas {
                    for v in 0..VNODES {
                        // Fixed per-(replica, vnode) points: the ring is a
                        // pure function of the replica count, so every
                        // router in a fleet agrees on key placement.
                        let point = splitmix64(((r as u64) << 32) | v as u64);
                        ring.push((point, r));
                    }
                }
                ring.sort_unstable();
                ring
            }
        };
        Router { policy, ring }
    }

    /// The policy this router ranks with.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Replica indices in preference order for one request.
    ///
    /// `loads[i]` is replica `i`'s outstanding-request count. Under
    /// consistent hash the order is the ring walk from the trace's point
    /// (so index 1 is the key's natural failover target); under
    /// least-depth it is ascending load with ties to the lowest id.
    pub fn candidates(&self, loads: &[usize], trace: Option<&TraceId>) -> Vec<usize> {
        match (self.policy, trace) {
            (DispatchPolicy::ConsistentHash, Some(id)) => self.ring_walk(id.routing_key()),
            _ => {
                let mut order: Vec<usize> = (0..loads.len()).collect();
                order.sort_by_key(|&i| (loads[i], i));
                order
            }
        }
    }

    /// Distinct replicas in ring order starting at the first point ≥ `key`.
    fn ring_walk(&self, key: u64) -> Vec<usize> {
        let n_replicas = self
            .ring
            .iter()
            .map(|&(_, r)| r + 1)
            .max()
            .unwrap_or_default();
        let start = self.ring.partition_point(|&(p, _)| p < key);
        let mut seen = vec![false; n_replicas];
        let mut order = Vec::with_capacity(n_replicas);
        for i in 0..self.ring.len() {
            let (_, r) = self.ring[(start + i) % self.ring.len()];
            if !seen[r] {
                seen[r] = true;
                order.push(r);
                if order.len() == n_replicas {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_id(k: u64) -> TraceId {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&k.to_le_bytes());
        TraceId::from_bytes(bytes)
    }

    #[test]
    fn policy_parses_and_displays() {
        assert_eq!(
            "least-depth".parse::<DispatchPolicy>().unwrap(),
            DispatchPolicy::LeastQueueDepth
        );
        assert_eq!(
            "consistent-hash".parse::<DispatchPolicy>().unwrap(),
            DispatchPolicy::ConsistentHash
        );
        assert!("round-robin".parse::<DispatchPolicy>().is_err());
        assert_eq!(DispatchPolicy::LeastQueueDepth.to_string(), "least-depth");
    }

    #[test]
    fn least_depth_orders_by_load_with_low_id_ties() {
        let r = Router::new(DispatchPolicy::LeastQueueDepth, 4);
        assert_eq!(r.candidates(&[3, 0, 2, 0], None), vec![1, 3, 2, 0]);
        assert_eq!(r.candidates(&[0, 0, 0, 0], None), vec![0, 1, 2, 3]);
    }

    #[test]
    fn hash_is_deterministic_and_covers_all_replicas() {
        let r = Router::new(DispatchPolicy::ConsistentHash, 4);
        for k in 0..200u64 {
            let id = key_id(splitmix64(k));
            let a = r.candidates(&[0; 4], Some(&id));
            let b = r.candidates(&[9, 9, 9, 9], Some(&id));
            assert_eq!(a, b, "hash order must ignore load");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "walk must cover the fleet");
        }
    }

    #[test]
    fn hash_spreads_keys_across_replicas() {
        let r = Router::new(DispatchPolicy::ConsistentHash, 4);
        let mut hits = [0usize; 4];
        for k in 0..4000u64 {
            let id = key_id(splitmix64(0xFEED ^ k));
            hits[r.candidates(&[0; 4], Some(&id))[0]] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 400, "replica {i} got only {h}/4000 keys: {hits:?}");
        }
    }

    #[test]
    fn hash_without_trace_falls_back_to_least_depth() {
        let r = Router::new(DispatchPolicy::ConsistentHash, 3);
        assert_eq!(r.candidates(&[5, 1, 2], None), vec![1, 2, 0]);
    }

    #[test]
    fn surviving_primaries_are_stable_when_a_replica_dies() {
        // The pool skips dead replicas in candidate order; consistent
        // hashing promises keys whose primary survives are untouched.
        let r = Router::new(DispatchPolicy::ConsistentHash, 4);
        let dead = 2usize;
        for k in 0..500u64 {
            let id = key_id(splitmix64(0xD1E ^ k));
            let order = r.candidates(&[0; 4], Some(&id));
            let served_by = *order.iter().find(|&&i| i != dead).unwrap();
            if order[0] != dead {
                assert_eq!(served_by, order[0], "live primary must keep its keys");
            }
        }
    }
}
