//! **ibrar-serve** — checkpointed model registry and dynamic micro-batching
//! inference server for the IB-RAR reproduction.
//!
//! The training side of this workspace produces models whose claim to fame
//! is *robustness*; this crate is the serving side that lets those models
//! answer queries — including adversarial-robustness queries — over a
//! socket. Four layers, bottom to top:
//!
//! 1. **Checkpoints** ([`checkpoint`]): a versioned on-disk format (`IBSC`)
//!    wrapping [`ibrar_nn::save_params`] payloads with an architecture
//!    fingerprint and a parameter manifest, so the wrong file fails fast
//!    with a named mismatch instead of a mid-stream shape error.
//! 2. **Registry** ([`registry::ModelRegistry`]): named checkpoints, built
//!    and loaded lazily on first use, cached behind a lock.
//! 3. **Engine** ([`engine::BatchEngine`]): a bounded request queue with
//!    explicit [`ServeError::QueueFull`] backpressure, a batcher that
//!    coalesces up to `max_batch` requests or flushes after `max_wait`,
//!    worker threads running batched forwards, and per-request deadlines
//!    with typed [`ServeError::DeadlineExceeded`] expiry. Batching never
//!    changes answers: results are bitwise identical to single-request
//!    inference.
//! 4. **Protocol** ([`protocol`], [`server::Server`], [`client::Client`]):
//!    a length-prefixed binary protocol over plain `std::net` TCP with
//!    `classify`, `classify_with_logits`, and `robustness_probe` (FGSM /
//!    deterministic PGD from `ibrar-attacks`) calls.
//!
//! Telemetry rides along throughout: `serve.queue_depth` gauge,
//! `serve.batch_size` and `serve.request_ms` histograms, per-stage
//! latency histograms (`serve.stage.{queue,batch,forward,encode}_ms`),
//! and `serve.batch` / `serve.request` spans (see `ibrar-telemetry`).
//!
//! The observability plane stacks on top of that: every request carries a
//! [`TraceId`] (client-minted over the v2 wire format, or server-minted at
//! ingress), the server answers [`protocol::Opcode::Health`] and
//! [`protocol::Opcode::Metrics`] (Prometheus text, JSON snapshot, or the
//! [`flight`] recorder dump) on the same port as inference, and a bounded
//! [`FlightRecorder`] retains the last N traced requests plus every
//! SLO-breaching one for post-hoc inspection.
//!
//! # Example
//!
//! ```no_run
//! use ibrar_nn::{ImageModel, VggConfig, VggMini};
//! use ibrar_serve::{checkpoint, Client, ModelRegistry, Server, ServerConfig};
//! use ibrar_tensor::Tensor;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! // Save a trained model as a named checkpoint.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = VggMini::new(VggConfig::tiny(10), &mut rng)?;
//! checkpoint::save_to_path(&model, std::path::Path::new("vgg.ibsc"))?;
//!
//! // Serve it.
//! let registry = Arc::new(ModelRegistry::new());
//! registry.register("vgg", "vgg.ibsc", move || {
//!     let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//!     Ok(Box::new(VggMini::new(VggConfig::tiny(10), &mut rng)?))
//! });
//! let server = Server::start("127.0.0.1:0", registry, ServerConfig::default())?;
//!
//! // Query it.
//! let mut client = Client::connect(server.addr())?;
//! let label = client.classify("vgg", &Tensor::full(&[3, 16, 16], 0.5), 0)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod checkpoint;
pub mod client;
pub mod engine;
mod error;
pub mod flight;
pub mod pool;
pub mod protocol;
pub mod quant;
pub mod registry;
pub mod router;
pub mod server;
pub mod trace;

pub use checkpoint::{load_from_path, read_header, save_to_path, CheckpointHeader, ParamSpec};
pub use client::{Client, HealthReport, RolloutAck};
pub use engine::{
    BatchEngine, Classification, EngineConfig, PauseGuard, PendingResponse, StageTimings,
};
pub use error::ServeError;
pub use flight::{FlightRecord, FlightRecorder};
pub use pool::{PoolConfig, Replica, ReplicaPool, RolloutReport};
pub use protocol::{AttackKind, MetricsFormat, Opcode, ProbeReport, ProbeSpec, Status, TRACE_FLAG};
pub use quant::{
    int8_logit_bound, Int8Vgg, INT8_ACCURACY_DELTA, INT8_LOGIT_REL_TOLERANCE, INT8_LOGIT_TOLERANCE,
};
pub use registry::{ModelBuilder, ModelLoader, ModelRegistry};
pub use router::{DispatchPolicy, Router};
pub use server::{Server, ServerConfig};
pub use trace::TraceId;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
