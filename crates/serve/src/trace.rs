//! Request trace identity.
//!
//! A [`TraceId`] is 16 opaque bytes identifying one request end to end:
//! clients may mint one and send it on the wire (protocol v2 frames), or
//! the server mints one at ingress. The id labels the request's JSONL
//! trace events and its flight-recorder entry, so a slow request spotted
//! in `ibrar-top` can be grepped straight to its per-stage breakdown.
//!
//! Generation needs no RNG dependency: a per-process seed (wall clock ⊕
//! pid) and an atomic counter feed two rounds of SplitMix64, which is
//! collision-free within a process by construction (the counter) and
//! collision-resistant across processes (the seed).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// A 16-byte request trace identifier, rendered as 32 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId([u8; 16]);

pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TraceId {
    /// Mints a fresh process-unique id.
    pub fn generate() -> Self {
        static SEED: AtomicU64 = AtomicU64::new(0);
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let mut seed = SEED.load(Ordering::Relaxed);
        if seed == 0 {
            let wall = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED);
            seed = splitmix64(wall ^ (u64::from(std::process::id()) << 32)) | 1;
            SEED.store(seed, Ordering::Relaxed);
        }
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(seed ^ n);
        let lo = splitmix64(hi ^ n.rotate_left(32));
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&hi.to_le_bytes());
        bytes[8..].copy_from_slice(&lo.to_le_bytes());
        TraceId(bytes)
    }

    /// Wraps raw bytes (the wire decoder).
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        TraceId(bytes)
    }

    /// The raw bytes (the wire encoder).
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Folds the id into a 64-bit routing key for consistent-hash
    /// dispatch. Deterministic in the id bytes alone, so the same trace id
    /// maps to the same ring point on every router in the fleet.
    pub fn routing_key(&self) -> u64 {
        let hi = u64::from_le_bytes(self.0[..8].try_into().expect("8-byte slice"));
        let lo = u64::from_le_bytes(self.0[8..].try_into().expect("8-byte slice"));
        splitmix64(hi ^ splitmix64(lo))
    }

    /// Parses the 32-hex-digit rendering.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.len() != 32 {
            return None;
        }
        let mut bytes = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks_exact(2).enumerate() {
            let hex = std::str::from_utf8(chunk).ok()?;
            bytes[i] = u8::from_str_radix(hex, 16).ok()?;
        }
        Some(TraceId(bytes))
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = TraceId::generate();
            assert_ne!(id.as_bytes(), &[0u8; 16]);
            assert!(seen.insert(*id.as_bytes()), "duplicate id {id}");
        }
    }

    #[test]
    fn hex_round_trips() {
        let id = TraceId::generate();
        let hex = id.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(TraceId::from_hex(&hex), Some(id));
        assert_eq!(TraceId::from_hex("xyz"), None);
        assert_eq!(TraceId::from_hex(&hex[..30]), None);
    }

    #[test]
    fn bytes_round_trip() {
        let id = TraceId::generate();
        assert_eq!(TraceId::from_bytes(*id.as_bytes()), id);
    }

    #[test]
    fn routing_key_is_a_pure_function_of_the_bytes() {
        let id = TraceId::generate();
        let copy = TraceId::from_bytes(*id.as_bytes());
        assert_eq!(id.routing_key(), copy.routing_key());
        // Distinct ids should (overwhelmingly) land on distinct keys.
        let mut keys = std::collections::HashSet::new();
        for _ in 0..1000 {
            keys.insert(TraceId::generate().routing_key());
        }
        assert_eq!(keys.len(), 1000);
    }
}
