//! Int8 post-training-quantized serve path for `VggMini` checkpoints.
//!
//! [`Int8Vgg`] snapshots a loaded f32 [`VggMini`](ibrar_nn::VggMini) into
//! per-channel-quantized `i8` weights and replays its forward pass with the
//! exact integer GEMM from [`ibrar_tensor::qgemm`], dequantizing at each
//! layer boundary fused with bias and ReLU. The result is an
//! [`ImageModel`] the registry and [`BatchEngine`](crate::BatchEngine) can
//! serve unchanged — same wire protocol, same batching, cheaper math.
//!
//! # Quantization scheme (DESIGN.md §14)
//!
//! * **Weights**: symmetric per-output-channel scales, frozen at build time
//!   from the checkpoint (conv kernels flattened to `[oc, c·k·k]`, linear
//!   weights transposed to `[out, in]` so a row is always one output
//!   channel).
//! * **Activations**: symmetric per-row scales computed on the fly — one
//!   scale per sample (FC) or per output pixel (conv). Per-row scales keep
//!   a sample's quantization independent of whatever shares its batch, so
//!   the engine's batching-invisibility contract holds bitwise for the int8
//!   path too (`tests/int8_serving.rs`).
//!
//! # What it is *not*
//!
//! The forward runs outside the autograd tape: no hidden taps, no channel
//! masks, and [`ImageModel::supports_input_gradients`] returns `false`, so
//! gradient-based robustness probes are rejected with a typed
//! [`ServeError::Unsupported`] instead of returning garbage gradients.
//! Accuracy is bounded, not exact — the oracle policy treats int8 logits
//! under a documented drift tolerance against f32 as equivalent.

use crate::{Result, ServeError};
use ibrar_nn::{ImageModel, Mode, ModelOutput, NnError, Parameter, Session};
use ibrar_telemetry as tel;
use ibrar_tensor::qgemm::{gemm_i8_packed, gemm_i8_packed_into, PackedQuantB, QuantizedMatrix};
use ibrar_tensor::{gather_patch_rows, Conv2dSpec, Pool2dSpec, Tensor};

/// Absolute floor of the INT8 tier of the oracle tolerance policy
/// (DESIGN.md §10). The full bound is mixed absolute + relative — see
/// [`int8_logit_bound`] — because quantization error grows with the
/// activation magnitudes a trained network produces: each layer's error is
/// bounded by half a scale step per operand, and scale steps are
/// `maxabs / 127`.
pub const INT8_LOGIT_TOLERANCE: f32 = 0.15;

/// Relative component of the INT8 tier: allowed drift per unit of the f32
/// batch's largest absolute logit (2%, ≈2.5× the worst case observed on
/// the committed trained fixture).
pub const INT8_LOGIT_REL_TOLERANCE: f32 = 0.02;

/// The INT8 logit-drift bound for a batch whose f32 logits have largest
/// absolute value `f32_logit_scale`:
/// `INT8_LOGIT_TOLERANCE + INT8_LOGIT_REL_TOLERANCE · scale`.
pub fn int8_logit_bound(f32_logit_scale: f32) -> f32 {
    INT8_LOGIT_TOLERANCE + INT8_LOGIT_REL_TOLERANCE * f32_logit_scale
}

/// Largest clean-accuracy drop (fraction of samples) the int8 path may
/// cost against the f32 model on the committed fixture set — the
/// accuracy-delta gate enforced by `tests/int8_serving.rs` and CI.
pub const INT8_ACCURACY_DELTA: f64 = 0.05;

/// Pooling pattern of the five `VggMini` conv blocks (mirrors
/// `ibrar_nn::VggMini`: a 2×2 max pool after every block except the fourth).
const POOLED: [bool; 5] = [true, true, true, false, true];

struct QConv {
    /// Kernel flattened to `[oc, c·k·k]` and packed into the qgemm panel
    /// layout once at build time — weights are static across the serving
    /// process, so every batch reuses the panels.
    packed: PackedQuantB,
    /// Per-output-channel symmetric scales of the packed weight.
    weight_scales: Vec<f32>,
    bias: Vec<f32>,
    spec: Conv2dSpec,
}

struct QLinear {
    /// Weight transposed to `[out, in]` and panel-packed at build time.
    packed: PackedQuantB,
    /// Per-output-channel symmetric scales of the packed weight.
    weight_scales: Vec<f32>,
    bias: Vec<f32>,
}

/// An inference-only int8 snapshot of a loaded `VggMini`.
pub struct Int8Vgg {
    input: [usize; 3],
    num_classes: usize,
    last_conv: usize,
    convs: Vec<QConv>,
    fc1: QLinear,
    fc2: QLinear,
    classifier: QLinear,
}

impl Int8Vgg {
    /// Quantizes a loaded f32 model into an int8 serving snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Unsupported`] when `model` is not a `VggMini`
    /// (the parameter walk below is tied to its layer order), its parameter
    /// shapes deviate from VggMini's square-kernel geometry, or a channel
    /// mask is installed (the int8 forward cannot honor it), and propagates
    /// quantization failures.
    pub fn from_model(model: &dyn ImageModel) -> Result<Int8Vgg> {
        if model.name() != "VggMini" {
            return Err(ServeError::Unsupported(format!(
                "int8 quantization supports VggMini checkpoints, got architecture '{}'",
                model.name()
            )));
        }
        if model.channel_mask().is_some() {
            return Err(ServeError::Unsupported(
                "int8 quantization cannot honor an installed channel mask".into(),
            ));
        }
        let params = model.params();
        // VggMini's stable params order: five conv (weight, bias) pairs,
        // then fc1, fc2, classifier (weight, bias) pairs.
        if params.len() != 16 {
            return Err(ServeError::Unsupported(format!(
                "expected 16 VggMini parameters, got {}",
                params.len()
            )));
        }
        let pair = |i: usize| -> Result<(Tensor, Vec<f32>)> {
            let w = params[2 * i].value();
            let b = params[2 * i + 1].value();
            Ok((w, b.data().to_vec()))
        };
        let mut convs = Vec::with_capacity(5);
        for i in 0..5 {
            let (w, bias) = pair(i)?;
            let dims = w.shape().to_vec();
            if dims.len() != 4 {
                return Err(ServeError::Unsupported(format!(
                    "conv weight {} is rank {}, expected 4",
                    params[2 * i].name(),
                    dims.len()
                )));
            }
            if dims[2] != dims[3] {
                return Err(ServeError::Unsupported(format!(
                    "conv weight {} has non-square kernel {}×{}; int8 \
                     quantization assumes VggMini's square 3×3 geometry",
                    params[2 * i].name(),
                    dims[2],
                    dims[3]
                )));
            }
            let (oc, ic, k) = (dims[0], dims[1], dims[2]);
            if bias.len() != oc {
                return Err(ServeError::Unsupported(format!(
                    "conv bias {} has {} entries for {} output channels",
                    params[2 * i + 1].name(),
                    bias.len(),
                    oc
                )));
            }
            // [oc, ic, k, k] is already row-major per output channel. The
            // stride-1 / pad-1 spec mirrors VggMini's conv blocks; the name
            // and shape checks above are what make that assumption safe.
            let weight = QuantizedMatrix::quantize_rows(w.data(), oc, ic * k * k)?;
            convs.push(QConv {
                packed: PackedQuantB::pack(&weight.data, oc, ic * k * k)?,
                weight_scales: weight.scales,
                bias,
                spec: Conv2dSpec::new(ic, oc, k, 1, 1),
            });
        }
        let mut linears = Vec::with_capacity(3);
        for i in 5..8 {
            let (w, bias) = pair(i)?;
            let dims = w.shape().to_vec();
            if dims.len() != 2 {
                return Err(ServeError::Unsupported(format!(
                    "linear weight {} is rank {}, expected 2",
                    params[2 * i].name(),
                    dims.len()
                )));
            }
            // Linear stores [in, out]; transpose so a row is one output
            // channel (and the NT GEMM can dot rows against rows).
            let (rows_in, cols_out) = (dims[0], dims[1]);
            let src = w.data();
            let mut t = vec![0.0f32; src.len()];
            for r in 0..rows_in {
                for c in 0..cols_out {
                    t[c * rows_in + r] = src[r * cols_out + c];
                }
            }
            let weight = QuantizedMatrix::quantize_rows(&t, cols_out, rows_in)?;
            linears.push(QLinear {
                packed: PackedQuantB::pack(&weight.data, cols_out, rows_in)?,
                weight_scales: weight.scales,
                bias,
            });
        }
        let classifier = linears.pop().expect("three linears");
        let fc2 = linears.pop().expect("two linears");
        let fc1 = linears.pop().expect("one linear");
        Ok(Int8Vgg {
            input: model.input_shape(),
            num_classes: model.num_classes(),
            last_conv: model.last_conv_channels(),
            convs,
            fc1,
            fc2,
            classifier,
        })
    }

    /// One quantized conv block, fused per output row: gather the im2col
    /// patch rows of one `(sample, oy)` strip
    /// ([`ibrar_tensor::gather_patch_rows`] — the exact rows `im2col` would
    /// produce), quantize them per row, run the exact int GEMM against the
    /// pre-packed weight panels, and dequantize + bias + ReLU straight into
    /// NCHW. No `[n·oh·ow, patch]` matrix is ever materialized — the strip
    /// buffer stays cache-resident across the quantize/GEMM/scatter stages.
    ///
    /// Per-row patch maxima come from a separable sliding-window max over
    /// the sample's activation map ([`Self::patch_maxabs`]), computed once
    /// per sample instead of rescanning each input pixel once per kernel
    /// cell it appears in (a 3×3 kernel reads every pixel nine times in
    /// the naive row scan). `max` over absolute values is exact and
    /// order-free, so the window maxima — and therefore the scales and
    /// codes — are bitwise what the row scan produces.
    ///
    /// Each row's quantized codes, scale, and integer accumulators are pure
    /// functions of that row alone, so the result is bitwise identical to
    /// the historical whole-batch im2col formulation and the per-row-scale
    /// batching-invisibility contract is untouched. Samples split across
    /// threads on disjoint output regions, mirroring the f32 direct conv.
    /// `maxabs` of every output pixel's im2col patch for one `[c, h, w]`
    /// sample, as a `[oh, ow]` row-major map — separable sliding-window
    /// max: collapse channels (`cmax`), then the horizontal kernel window
    /// per input row (`hmax`), then the vertical window. Out-of-bounds
    /// taps contribute nothing, exactly like the explicit padding zeros in
    /// a gathered patch row (absolute values are non-negative, so a zero
    /// never raises the max; an entirely padded patch yields `0.0`, the
    /// same value the row scan's zero-initialized fold returns). Every
    /// reduction step is `f32::max` — exact, order-free, and NaN-skipping
    /// — so `pmax[oy·ow + ox]` is bitwise the maxabs
    /// [`QuantizedMatrix::quantize_rows_into`] would compute by scanning
    /// the gathered row.
    fn patch_maxabs(
        sample: &[f32],
        c: usize,
        h: usize,
        w: usize,
        spec: &Conv2dSpec,
        oh: usize,
        ow: usize,
    ) -> Vec<f32> {
        let (k, s, p) = (spec.kernel, spec.stride, spec.padding as isize);
        let mut cmax = vec![0.0f32; h * w];
        for ci in 0..c {
            let chan = &sample[ci * h * w..(ci + 1) * h * w];
            for (m, &v) in cmax.iter_mut().zip(chan) {
                *m = m.max(v.abs());
            }
        }
        let mut hmax = vec![0.0f32; h * ow];
        for y in 0..h {
            let crow = &cmax[y * w..(y + 1) * w];
            let hrow = &mut hmax[y * ow..(y + 1) * ow];
            for (ox, hv) in hrow.iter_mut().enumerate() {
                let ix0 = (ox * s) as isize - p;
                let mut m = 0.0f32;
                for kx in 0..k {
                    let ix = ix0 + kx as isize;
                    if ix >= 0 && (ix as usize) < w {
                        m = m.max(crow[ix as usize]);
                    }
                }
                *hv = m;
            }
        }
        let mut pmax = vec![0.0f32; oh * ow];
        for oy in 0..oh {
            let iy0 = (oy * s) as isize - p;
            let prow = &mut pmax[oy * ow..(oy + 1) * ow];
            for ky in 0..k {
                let iy = iy0 + ky as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                let hrow = &hmax[iy as usize * ow..(iy as usize + 1) * ow];
                for (mv, &hv) in prow.iter_mut().zip(hrow) {
                    *mv = mv.max(hv);
                }
            }
        }
        pmax
    }

    fn conv_block(&self, x: &Tensor, conv: &QConv, relu: bool) -> Result<Tensor> {
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = conv.spec.out_hw(h, w)?;
        let patch = conv.spec.patch_len();
        let oc = conv.spec.out_channels;
        let mut out = vec![0.0f32; n * oc * oh * ow];
        let plane = oh * ow;
        let data = x.data();
        let work = n * oc * plane * patch;
        let threads = ibrar_tensor::parallel::threads_for(work);
        ibrar_tensor::parallel::par_items_mut(&mut out, oc * plane, threads, |ni, sample_out| {
            let sample = &data[ni * c * h * w..(ni + 1) * c * h * w];
            // Strip-sized working set, allocated once per sample and reused
            // across every output row (the `_into` kernels overwrite fully).
            let mut rowbuf = vec![0.0f32; ow * patch];
            let mut codes = vec![0i8; ow * patch];
            let mut scales = vec![1.0f32; ow];
            let mut acc = vec![0i32; ow * oc];
            let pmax = Self::patch_maxabs(sample, c, h, w, &conv.spec, oh, ow);
            for oy in 0..oh {
                gather_patch_rows(sample, h, w, &conv.spec, oy, ow, &mut rowbuf);
                QuantizedMatrix::quantize_rows_with_maxabs(
                    &rowbuf,
                    ow,
                    patch,
                    &pmax[oy * ow..(oy + 1) * ow],
                    &mut codes,
                    &mut scales,
                )
                .expect("strip dimensions are consistent by construction");
                gemm_i8_packed_into(&codes, &conv.packed, ow, &mut acc)
                    .expect("strip dimensions are consistent by construction");
                // Channel-outer scatter: each channel writes one contiguous
                // `ow` segment of its output plane; the `[ox, oc]`
                // accumulator strip is small enough to stay cache-resident
                // across the strided reads.
                for ch in 0..oc {
                    let ws = conv.weight_scales[ch];
                    let bias = conv.bias[ch];
                    let orow = &mut sample_out[ch * plane + oy * ow..ch * plane + (oy + 1) * ow];
                    for (ox, o) in orow.iter_mut().enumerate() {
                        let mut v = acc[ox * oc + ch] as f32 * (scales[ox] * ws) + bias;
                        if relu {
                            v = v.max(0.0);
                        }
                        *o = v;
                    }
                }
            }
        });
        Ok(Tensor::from_vec(out, &[n, oc, oh, ow])?)
    }

    /// One quantized linear layer on a `[n, in]` batch.
    fn linear(&self, x: &Tensor, lin: &QLinear, relu: bool) -> Result<Tensor> {
        let (n, k) = (x.shape()[0], x.shape()[1]);
        let out_w = lin.packed.n;
        let qa = QuantizedMatrix::quantize_rows(x.data(), n, k)?;
        let acc = gemm_i8_packed(&qa.data, &lin.packed, n)?;
        let mut out = vec![0.0f32; n * out_w];
        for r in 0..n {
            let sa = qa.scales[r];
            for c in 0..out_w {
                let mut v = acc[r * out_w + c] as f32 * (sa * lin.weight_scales[c]) + lin.bias[c];
                if relu {
                    v = v.max(0.0);
                }
                out[r * out_w + c] = v;
            }
        }
        Ok(Tensor::from_vec(out, &[n, out_w])?)
    }

    /// The quantized forward pass on a raw `[n, c, h, w]` batch, outside any
    /// autograd tape.
    ///
    /// # Errors
    ///
    /// Propagates shape and quantization failures as [`ServeError`].
    pub fn forward_logits(&self, x: &Tensor) -> Result<Tensor> {
        let _s = tel::span!("serve.int8.forward");
        let pool = Pool2dSpec::new(2, 2);
        let mut h = self.conv_block(x, &self.convs[0], true)?;
        if POOLED[0] {
            h = ibrar_tensor::max_pool2d(&h, &pool)?.0;
        }
        for (conv, &pooled) in self.convs.iter().zip(POOLED.iter()).skip(1) {
            h = self.conv_block(&h, conv, true)?;
            if pooled {
                h = ibrar_tensor::max_pool2d(&h, &pool)?.0;
            }
        }
        let n = h.shape()[0];
        let flat = h.data().len() / n.max(1);
        let h = h.reshape(&[n, flat])?;
        let h = self.linear(&h, &self.fc1, true)?;
        let h = self.linear(&h, &self.fc2, true)?;
        self.linear(&h, &self.classifier, false)
    }
}

impl ImageModel for Int8Vgg {
    fn forward<'t>(
        &self,
        sess: &Session<'t>,
        x: ibrar_autograd::Var<'t>,
        _mode: Mode,
    ) -> ibrar_nn::Result<ModelOutput<'t>> {
        // Inference-only: compute logits out-of-graph and re-leaf them. No
        // gradient flows back to x — supports_input_gradients() says so.
        let logits = self
            .forward_logits(&x.value())
            .map_err(|e| NnError::Config(format!("int8 forward failed: {e}")))?;
        Ok(ModelOutput {
            logits: sess.tape().leaf(logits),
            hidden: Vec::new(),
            aux_loss: None,
        })
    }

    fn params(&self) -> Vec<Parameter> {
        // Weights are frozen i8 snapshots; nothing trainable or loadable.
        Vec::new()
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn input_shape(&self) -> [usize; 3] {
        self.input
    }

    fn last_conv_channels(&self) -> usize {
        self.last_conv
    }

    fn set_channel_mask(&self, mask: Option<Tensor>) -> ibrar_nn::Result<()> {
        match mask {
            Some(_) => Err(NnError::Config(
                "the int8 serving path does not support channel masks".into(),
            )),
            None => Ok(()),
        }
    }

    fn channel_mask(&self) -> Option<Tensor> {
        None
    }

    fn name(&self) -> &str {
        "VggMini-int8"
    }

    fn hidden_names(&self) -> Vec<String> {
        Vec::new()
    }

    fn supports_input_gradients(&self) -> bool {
        false
    }
}

impl std::fmt::Debug for Int8Vgg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Int8Vgg")
            .field("input", &self.input)
            .field("num_classes", &self.num_classes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibrar_autograd::Tape;
    use ibrar_nn::{VggConfig, VggMini};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn f32_model() -> VggMini {
        let mut rng = StdRng::seed_from_u64(0);
        VggMini::new(VggConfig::tiny(10), &mut rng).unwrap()
    }

    fn f32_logits(model: &dyn ImageModel, x: &Tensor) -> Tensor {
        let tape = Tape::new();
        let sess = Session::new(&tape);
        let xv = tape.leaf(x.clone());
        model.forward(&sess, xv, Mode::Eval).unwrap().logits.value()
    }

    fn probe_batch(n: usize) -> Tensor {
        Tensor::from_fn(&[n, 3, 16, 16], |i| {
            ((i[0] * 131 + i[1] * 37 + i[2] * 11 + i[3] * 3) % 97) as f32 / 97.0
        })
    }

    #[test]
    fn window_patch_maxabs_is_bitwise_the_row_scan() {
        // The separable sliding-window max must reproduce, bit for bit,
        // the maxabs a per-row scan of the gathered im2col rows computes —
        // including border rows (padding taps), negative values, and NaN
        // elements (skipped by `f32::max` in both formulations). Scales
        // are pure functions of maxabs, so comparing quantized scales
        // pins the claim end to end.
        let (c, h, w) = (3usize, 7usize, 6usize);
        for (kernel, stride, padding) in [(3usize, 1usize, 1usize), (2, 2, 0), (3, 2, 1)] {
            let spec = Conv2dSpec::new(c, 4, kernel, stride, padding);
            let (oh, ow) = spec.out_hw(h, w).unwrap();
            let patch = spec.patch_len();
            let mut sample: Vec<f32> = (0..c * h * w)
                .map(|i| ((i * 29 + 7) % 53) as f32 * 0.31 - 7.0)
                .collect();
            sample[5] = f32::NAN;
            sample[c * h * w - 2] = -123.5;
            let pmax = Int8Vgg::patch_maxabs(&sample, c, h, w, &spec, oh, ow);
            let mut rowbuf = vec![0.0f32; ow * patch];
            for oy in 0..oh {
                gather_patch_rows(&sample, h, w, &spec, oy, ow, &mut rowbuf);
                let scan = QuantizedMatrix::quantize_rows(&rowbuf, ow, patch).unwrap();
                let mut codes = vec![0i8; ow * patch];
                let mut scales = vec![0.0f32; ow];
                QuantizedMatrix::quantize_rows_with_maxabs(
                    &rowbuf,
                    ow,
                    patch,
                    &pmax[oy * ow..(oy + 1) * ow],
                    &mut codes,
                    &mut scales,
                )
                .unwrap();
                for (ox, (win, row)) in scales.iter().zip(&scan.scales).enumerate() {
                    assert_eq!(
                        win.to_bits(),
                        row.to_bits(),
                        "k={kernel} s={stride} p={padding} oy={oy} ox={ox}"
                    );
                }
                assert_eq!(codes, scan.data);
            }
        }
    }

    #[test]
    fn int8_logits_track_f32_within_drift_tolerance() {
        let m = f32_model();
        let q = Int8Vgg::from_model(&m).unwrap();
        let x = probe_batch(4);
        let f = f32_logits(&m, &x);
        let i = q.forward_logits(&x).unwrap();
        assert_eq!(f.shape(), i.shape());
        // The documented INT8 logit-drift tier: int8 logits stay within a
        // band of their f32 counterparts scaled to the batch's logit
        // magnitudes.
        let worst = f
            .data()
            .iter()
            .zip(i.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        let scale = f.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let bound = int8_logit_bound(scale);
        assert!(
            worst < bound,
            "logit drift {worst} exceeds tier bound {bound}"
        );
    }

    #[test]
    fn int8_forward_is_batching_invisible() {
        // Per-row activation scales: row i of a batched forward must be
        // bitwise identical to a single-sample forward of image i.
        let q = Int8Vgg::from_model(&f32_model()).unwrap();
        let x = probe_batch(3);
        let batched = q.forward_logits(&x).unwrap();
        for i in 0..3 {
            let single = Tensor::from_vec(
                x.data()[i * 3 * 16 * 16..(i + 1) * 3 * 16 * 16].to_vec(),
                &[1, 3, 16, 16],
            )
            .unwrap();
            let row = q.forward_logits(&single).unwrap();
            let want: Vec<u32> = row.data().iter().map(|v| v.to_bits()).collect();
            let got: Vec<u32> = batched
                .row(i)
                .unwrap()
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(want, got, "row {i} differs from single-sample forward");
        }
    }

    #[test]
    fn int8_rejects_masked_models_and_masks() {
        let m = f32_model();
        m.set_channel_mask(Some(Tensor::ones(&[64]))).unwrap();
        assert!(matches!(
            Int8Vgg::from_model(&m),
            Err(ServeError::Unsupported(_))
        ));
        m.set_channel_mask(None).unwrap();
        let q = Int8Vgg::from_model(&m).unwrap();
        assert!(q.set_channel_mask(Some(Tensor::ones(&[64]))).is_err());
        assert!(q.set_channel_mask(None).is_ok());
        assert!(!q.supports_input_gradients());
    }

    #[test]
    fn int8_serves_through_image_model_trait() {
        let m = f32_model();
        let q = Int8Vgg::from_model(&m).unwrap();
        let x = probe_batch(2);
        let via_trait = f32_logits(&q, &x);
        let direct = q.forward_logits(&x).unwrap();
        assert_eq!(
            via_trait
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            direct
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(q.input_shape(), m.input_shape());
        assert_eq!(q.num_classes(), 10);
        assert_eq!(q.name(), "VggMini-int8");
    }
}
