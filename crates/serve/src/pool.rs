//! Replica fleet: N independent [`BatchEngine`]s behind one submit path.
//!
//! A [`ReplicaPool`] owns a *generation* of replicas — same model `Arc`,
//! each with its own bounded queue, batcher, and workers — and routes every
//! request through a [`Router`] policy. Three fleet behaviors layer on top
//! of the single-engine guarantees:
//!
//! * **Admission control.** An optional fleet-wide in-flight cap sheds
//!   load with the same typed [`ServeError::QueueFull`] the engines use,
//!   before any replica queue is touched. Under least-depth dispatch a
//!   full replica triggers failover to the next candidate; only when every
//!   live replica rejects does the caller see `QueueFull`. Consistent-hash
//!   dispatch deliberately does *not* fail over on backpressure — affinity
//!   is the point — so a full primary sheds immediately.
//! * **Zero-downtime rollout.** [`ReplicaPool::rollout`] builds a full new
//!   generation for the incoming model, atomically swaps it in (new
//!   requests see only the new generation), then [`BatchEngine::drain`]s
//!   the old one. The drain gate closes *after* the swap, so every request
//!   accepted by the old generation is answered — zero dropped in-flight
//!   requests, proven by the exact drain counter the call returns. Rollout
//!   is keyed off the IBSC architecture fingerprint: a model whose
//!   fingerprint differs from the serving fleet is rejected with a typed
//!   checkpoint error before any replica is built.
//! * **Fault isolation.** [`ReplicaPool::kill_replica`] marks a replica
//!   dead and shuts its engine down; routing skips dead replicas, queued
//!   requests on the victim fail with typed [`ServeError::Shutdown`], and
//!   survivors keep serving.
//!
//! Determinism: every replica serves the same model `Arc`, every forward
//! runs in `Mode::Eval` on a fresh tape, and the single-engine
//! batching-identity guarantee (row `i` of a batch ≡ single forward of
//! image `i`) is replica-independent — so a request's logits are bitwise
//! identical whichever replica serves it. `tests/fleet_determinism.rs`
//! pins this at replicas {1, 2, 4} × both policies × thread counts.

use crate::engine::{BatchEngine, EngineConfig, PendingResponse};
use crate::router::{DispatchPolicy, Router};
use crate::trace::TraceId;
use crate::{Result, ServeError};
use ibrar_nn::{architecture_fingerprint, ImageModel};
use ibrar_telemetry as tel;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for a [`ReplicaPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Replica count per generation.
    pub replicas: usize,
    /// Per-replica engine configuration (each replica gets its own queue
    /// and workers at these sizes).
    pub engine: EngineConfig,
    /// Dispatch policy; see [`DispatchPolicy`].
    pub policy: DispatchPolicy,
    /// Fleet-wide in-flight cap: submissions beyond this shed with
    /// [`ServeError::QueueFull`] before touching a replica queue. `None`
    /// leaves per-replica queue bounds as the only backpressure.
    pub max_in_flight: Option<usize>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            replicas: 1,
            engine: EngineConfig::default(),
            policy: DispatchPolicy::LeastQueueDepth,
            max_in_flight: None,
        }
    }
}

impl PoolConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidInput`] when `replicas` or
    /// `max_in_flight` is zero, or the engine config is invalid.
    pub fn validate(&self) -> Result<()> {
        if self.replicas == 0 {
            return Err(ServeError::InvalidInput("replicas must be positive".into()));
        }
        if self.max_in_flight == Some(0) {
            return Err(ServeError::InvalidInput(
                "max_in_flight must be positive when set".into(),
            ));
        }
        self.engine.validate()
    }
}

/// One engine slot in a generation: a [`BatchEngine`] plus fleet metadata.
pub struct Replica {
    id: usize,
    engine: Arc<BatchEngine>,
    alive: AtomicBool,
}

impl Replica {
    /// Slot index, stable across generations (replica 0 of generation 2
    /// replaces replica 0 of generation 1).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The replica's engine (tests use this for the pause gate).
    pub fn engine(&self) -> &Arc<BatchEngine> {
        &self.engine
    }

    /// Whether the replica is routable (not killed).
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    fn outstanding(&self) -> usize {
        self.engine.in_flight()
    }
}

/// One immutable set of replicas serving one model version.
struct Generation {
    version: u64,
    replicas: Vec<Arc<Replica>>,
    router: Router,
}

impl Generation {
    fn build(version: u64, model: &Arc<dyn ImageModel>, config: &PoolConfig) -> Result<Self> {
        let mut replicas = Vec::with_capacity(config.replicas);
        for id in 0..config.replicas {
            let engine = BatchEngine::new(Arc::clone(model), config.engine.clone())?;
            replicas.push(Arc::new(Replica {
                id,
                engine: Arc::new(engine),
                alive: AtomicBool::new(true),
            }));
        }
        Ok(Generation {
            version,
            replicas,
            router: Router::new(config.policy, config.replicas),
        })
    }

    fn in_flight(&self) -> usize {
        self.replicas.iter().map(|r| r.outstanding()).sum()
    }
}

/// Outcome of a completed [`ReplicaPool::rollout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutReport {
    /// Generation that was serving before the swap.
    pub from_version: u64,
    /// Generation now serving.
    pub to_version: u64,
    /// Requests that were in flight on the old generation when its drain
    /// gate closed — every one of them was answered before this report
    /// was produced.
    pub drained: usize,
}

/// A routed fleet of [`BatchEngine`] replicas with hot-swap rollout.
pub struct ReplicaPool {
    config: PoolConfig,
    /// IBSC architecture fingerprint of the serving model; rollouts must
    /// match it.
    fingerprint: u64,
    /// The generation receiving traffic. Critical sections only clone or
    /// swap the `Arc` — never hold the lock across a drain or forward.
    active: Mutex<Arc<Generation>>,
    next_version: AtomicU64,
    /// Serializes rollouts (the swap itself is atomic; the build + drain
    /// around it is not).
    rollout_lock: Mutex<()>,
}

impl ReplicaPool {
    /// Builds generation 1 of the fleet around `model`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidInput`] on a bad config and propagates
    /// engine spawn failures.
    pub fn new(model: Arc<dyn ImageModel>, config: PoolConfig) -> Result<Self> {
        config.validate()?;
        let fingerprint = architecture_fingerprint(model.as_ref());
        let generation = Generation::build(1, &model, &config)?;
        let pool = ReplicaPool {
            config,
            fingerprint,
            active: Mutex::new(Arc::new(generation)),
            next_version: AtomicU64::new(1),
            rollout_lock: Mutex::new(()),
        };
        pool.publish_fleet_gauges();
        Ok(pool)
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// IBSC architecture fingerprint every served generation must match.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Version of the generation currently receiving traffic.
    pub fn version(&self) -> u64 {
        self.active.lock().version
    }

    /// The model served by the active generation.
    pub fn model(&self) -> Arc<dyn ImageModel> {
        let gen = self.active.lock();
        Arc::clone(gen.replicas[0].engine.model())
    }

    /// Replicas of the active generation (tests use the engines' pause
    /// gates through this).
    pub fn replicas(&self) -> Vec<Arc<Replica>> {
        self.active.lock().replicas.clone()
    }

    /// Live (routable) replica count in the active generation.
    pub fn alive(&self) -> usize {
        self.active
            .lock()
            .replicas
            .iter()
            .filter(|r| r.is_alive())
            .count()
    }

    /// Fleet-wide accepted-but-unanswered request count.
    pub fn in_flight(&self) -> usize {
        self.active.lock().in_flight()
    }

    /// Fleet-wide queued (not yet batched) request count.
    pub fn queue_depth(&self) -> usize {
        self.active
            .lock()
            .replicas
            .iter()
            .map(|r| r.engine.queue_depth())
            .sum()
    }

    /// Routes one `[c, h, w]` image to a replica; see
    /// [`BatchEngine::submit`] for the single-engine semantics.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the fleet cap or every live
    /// candidate rejects, [`ServeError::Shutdown`] when no live replica
    /// exists, plus the per-engine submit errors.
    pub fn submit(
        &self,
        image: ibrar_tensor::Tensor,
        budget: Option<Duration>,
    ) -> Result<PendingResponse> {
        self.submit_traced(image, budget, None)
    }

    /// [`ReplicaPool::submit`] carrying the request [`TraceId`] — also the
    /// routing key under [`DispatchPolicy::ConsistentHash`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReplicaPool::submit`].
    pub fn submit_traced(
        &self,
        image: ibrar_tensor::Tensor,
        budget: Option<Duration>,
        trace: Option<TraceId>,
    ) -> Result<PendingResponse> {
        // Snapshot the active generation once: a rollout mid-submit either
        // sees this request on the old generation (drained, answered) or
        // the request lands entirely on the new one. Never half-and-half.
        let gen = Arc::clone(&self.active.lock());

        if let Some(cap) = self.config.max_in_flight {
            if gen.in_flight() >= cap {
                tel::counter("serve.pool.shed", 1);
                return Err(ServeError::QueueFull);
            }
        }

        let loads: Vec<usize> = gen.replicas.iter().map(|r| r.outstanding()).collect();
        let order = gen.router.candidates(&loads, trace.as_ref());
        let failover = gen.router.policy() == DispatchPolicy::LeastQueueDepth;

        let live: Vec<usize> = order
            .into_iter()
            .filter(|&i| gen.replicas[i].is_alive())
            .collect();
        if live.is_empty() {
            tel::counter("serve.pool.no_replicas", 1);
            return Err(ServeError::Shutdown);
        }

        let mut image = Some(image);
        let mut last_err = ServeError::Shutdown;
        for (attempt, &idx) in live.iter().enumerate() {
            let replica = &gen.replicas[idx];
            // Failover needs the tensor back on rejection, but submit
            // consumes it — clone only when another candidate remains.
            let payload = if failover && attempt + 1 < live.len() {
                image.clone().expect("payload present until consumed")
            } else {
                image.take().expect("payload present until consumed")
            };
            match replica.engine.submit_traced(payload, budget, trace) {
                Ok(pending) => {
                    tel::counter(&format!("serve.pool.dispatch.r{}", replica.id()), 1);
                    if attempt > 0 {
                        tel::counter("serve.pool.failover", 1);
                    }
                    tel::gauge(
                        &format!("serve.replica.r{}.queue_depth", replica.id()),
                        replica.engine.queue_depth() as f64,
                    );
                    tel::gauge(
                        &format!("serve.replica.r{}.in_flight", replica.id()),
                        replica.outstanding() as f64,
                    );
                    return Ok(pending);
                }
                // Transient, replica-local: another candidate may accept.
                Err(e @ (ServeError::QueueFull | ServeError::Draining | ServeError::Shutdown)) => {
                    last_err = e;
                    if !failover {
                        break; // hash affinity: shed, don't migrate the key
                    }
                }
                // Request-shaped errors fail everywhere; return directly.
                Err(e) => return Err(e),
            }
        }
        if matches!(last_err, ServeError::QueueFull) {
            tel::counter("serve.pool.shed", 1);
        }
        Err(last_err)
    }

    /// Hot-swaps the fleet onto `model` with zero dropped in-flight
    /// requests: build the new generation, swap it in atomically, then
    /// drain and shut down the old one. Concurrent rollouts serialize.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Checkpoint`] when `model`'s architecture
    /// fingerprint does not match the serving fleet (nothing is built or
    /// swapped), and propagates engine spawn failures (the old generation
    /// keeps serving).
    pub fn rollout(&self, model: Arc<dyn ImageModel>) -> Result<RolloutReport> {
        let _serialized = self.rollout_lock.lock();
        let fp = architecture_fingerprint(model.as_ref());
        if fp != self.fingerprint {
            tel::counter("serve.pool.rollout_rejected", 1);
            return Err(ServeError::Checkpoint(format!(
                "rollout fingerprint {fp:016x} ({}) does not match serving fleet {:016x}; \
                 hot-swap requires an identical architecture",
                model.name(),
                self.fingerprint,
            )));
        }

        let version = self.next_version.fetch_add(1, Ordering::SeqCst) + 1;
        let incoming = Arc::new(Generation::build(version, &model, &self.config)?);

        // Swap first: from this instant new submissions route to the new
        // generation, so the old one's in-flight set can only shrink.
        let outgoing = {
            let mut active = self.active.lock();
            std::mem::replace(&mut *active, incoming)
        };
        tel::counter("serve.pool.swap", 1);
        tel::gauge("serve.pool.generation", version as f64);

        let mut drained = 0;
        for replica in &outgoing.replicas {
            drained += replica.engine.drain();
            replica.engine.shutdown();
        }
        tel::counter("serve.pool.rollout_drained", drained as u64);
        self.publish_fleet_gauges();

        Ok(RolloutReport {
            from_version: outgoing.version,
            to_version: version,
            drained,
        })
    }

    /// Fault injection: marks replica `id` dead and shuts its engine down.
    /// Queued requests on the victim fail with typed
    /// [`ServeError::Shutdown`]; routing skips it from now on. Returns
    /// `false` for an unknown id.
    pub fn kill_replica(&self, id: usize) -> bool {
        let gen = Arc::clone(&self.active.lock());
        let Some(replica) = gen.replicas.iter().find(|r| r.id() == id) else {
            return false;
        };
        replica.alive.store(false, Ordering::SeqCst);
        replica.engine.shutdown();
        tel::counter("serve.pool.replica_killed", 1);
        self.publish_fleet_gauges();
        true
    }

    /// Stops every replica of the active generation, failing queued
    /// requests with [`ServeError::Shutdown`]. Idempotent.
    pub fn shutdown(&self) {
        let gen = Arc::clone(&self.active.lock());
        for replica in &gen.replicas {
            replica.engine.shutdown();
        }
    }

    fn publish_fleet_gauges(&self) {
        let gen = self.active.lock();
        tel::gauge("serve.pool.generation", gen.version as f64);
        tel::gauge(
            "serve.pool.replicas_alive",
            gen.replicas.iter().filter(|r| r.is_alive()).count() as f64,
        );
        for replica in &gen.replicas {
            tel::gauge(
                &format!("serve.replica.r{}.queue_depth", replica.id()),
                replica.engine.queue_depth() as f64,
            );
            tel::gauge(
                &format!("serve.replica.r{}.in_flight", replica.id()),
                replica.outstanding() as f64,
            );
        }
    }
}

impl Drop for ReplicaPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ReplicaPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaPool")
            .field("replicas", &self.config.replicas)
            .field("policy", &self.config.policy)
            .field("version", &self.version())
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .finish()
    }
}
