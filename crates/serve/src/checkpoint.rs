//! Versioned on-disk checkpoint format.
//!
//! [`ibrar_nn::save_params`] produces a bare concatenation of encoded
//! tensors — fine for in-process round-trips, useless for a registry that
//! must refuse to load the wrong file into the wrong architecture. This
//! module wraps that payload in a self-describing header:
//!
//! ```text
//! magic   b"IBSC"                      4 bytes
//! version u32 le                       format revision (currently 1)
//! fprint  u64 le                       architecture_fingerprint(model)
//! arch    u32 le len + utf8 bytes      human-readable model name
//! params  u32 le count, then per parameter:
//!           u32 le name len + utf8 bytes
//!           u32 le rank + u64 le per extent
//! payload u64 le len + bytes           save_params(model) output
//! ```
//!
//! Everything is little-endian, mirroring the tensor wire format
//! (`IBT1`). The architecture fingerprint fails fast with a clear message
//! when a checkpoint targets a different model family or width; the param
//! manifest turns "shape mismatch somewhere in the stream" into "parameter
//! `block2.conv.weight` expected `[32, 16, 3, 3]`".

use crate::{Result, ServeError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ibrar_nn::{architecture_fingerprint, load_params, save_params, ImageModel};
use std::path::Path;

const MAGIC: &[u8; 4] = b"IBSC";

/// Current checkpoint format revision.
pub const FORMAT_VERSION: u32 = 1;

/// Sanity caps on header fields so a corrupt file cannot trigger huge
/// allocations before validation.
const MAX_NAME_LEN: usize = 4096;
const MAX_PARAMS: usize = 1 << 20;
const MAX_RANK: usize = 8;

/// One entry of the checkpoint's parameter manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter name as reported by [`ibrar_nn::Parameter::name`].
    pub name: String,
    /// Parameter shape at save time.
    pub shape: Vec<usize>,
}

/// Decoded checkpoint header (everything before the payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Format revision the file was written with.
    pub version: u32,
    /// [`architecture_fingerprint`] of the saved model.
    pub fingerprint: u64,
    /// Human-readable architecture name of the saved model.
    pub arch: String,
    /// Per-parameter manifest, in `params()` order.
    pub params: Vec<ParamSpec>,
}

impl CheckpointHeader {
    fn for_model(model: &dyn ImageModel) -> Self {
        CheckpointHeader {
            version: FORMAT_VERSION,
            fingerprint: architecture_fingerprint(model),
            arch: model.name().to_string(),
            params: model
                .params()
                .iter()
                .map(|p| ParamSpec {
                    name: p.name().to_string(),
                    shape: p.shape().to_vec(),
                })
                .collect(),
        }
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes, what: &str) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(ServeError::Checkpoint(format!("truncated {what} length")));
    }
    let len = buf.get_u32_le() as usize;
    if len > MAX_NAME_LEN {
        return Err(ServeError::Checkpoint(format!(
            "implausible {what} length {len}"
        )));
    }
    if buf.remaining() < len {
        return Err(ServeError::Checkpoint(format!("truncated {what}")));
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| ServeError::Checkpoint(format!("{what} is not utf-8")))
}

/// Serializes `model` into the versioned checkpoint format.
pub fn encode_checkpoint(model: &dyn ImageModel) -> Bytes {
    let header = CheckpointHeader::for_model(model);
    let payload = save_params(model);
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(header.version);
    buf.put_u64_le(header.fingerprint);
    put_str(&mut buf, &header.arch);
    buf.put_u32_le(header.params.len() as u32);
    for p in &header.params {
        put_str(&mut buf, &p.name);
        buf.put_u32_le(p.shape.len() as u32);
        for &d in &p.shape {
            buf.put_u64_le(d as u64);
        }
    }
    buf.put_u64_le(payload.len() as u64);
    buf.put_slice(&payload);
    buf.freeze()
}

/// Decodes the header from the front of `buf`, advancing it to the payload.
///
/// # Errors
///
/// Returns [`ServeError::Checkpoint`] on bad magic, an unsupported version,
/// or any truncated / implausible field.
pub fn decode_header(buf: &mut Bytes) -> Result<CheckpointHeader> {
    if buf.remaining() < 16 {
        return Err(ServeError::Checkpoint("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ServeError::Checkpoint(format!(
            "bad magic {magic:?} (expected IBSC; raw save_params payloads \
             have no header — re-save with save_to_path)"
        )));
    }
    let version = buf.get_u32_le();
    if version != FORMAT_VERSION {
        return Err(ServeError::Checkpoint(format!(
            "unsupported format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let fingerprint = buf.get_u64_le();
    let arch = get_str(buf, "architecture name")?;
    if buf.remaining() < 4 {
        return Err(ServeError::Checkpoint("truncated param count".into()));
    }
    let count = buf.get_u32_le() as usize;
    if count > MAX_PARAMS {
        return Err(ServeError::Checkpoint(format!(
            "implausible param count {count}"
        )));
    }
    let mut params = Vec::with_capacity(count);
    for _ in 0..count {
        let name = get_str(buf, "param name")?;
        if buf.remaining() < 4 {
            return Err(ServeError::Checkpoint(format!("truncated rank of {name}")));
        }
        let rank = buf.get_u32_le() as usize;
        if rank > MAX_RANK {
            return Err(ServeError::Checkpoint(format!(
                "implausible rank {rank} for {name}"
            )));
        }
        if buf.remaining() < rank * 8 {
            return Err(ServeError::Checkpoint(format!("truncated shape of {name}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(buf.get_u64_le() as usize);
        }
        params.push(ParamSpec { name, shape });
    }
    Ok(CheckpointHeader {
        version,
        fingerprint,
        arch,
        params,
    })
}

/// Decodes a full checkpoint into `model`, verifying the header first.
///
/// The fingerprint is checked before a single tensor is decoded, so loading
/// a VGG checkpoint into a ResNet fails with both architecture names in the
/// message rather than a mid-stream shape error. On success the model's
/// parameters are replaced atomically (see [`ibrar_nn::load_params`]).
///
/// # Errors
///
/// Returns [`ServeError::Checkpoint`] on any header, fingerprint, manifest,
/// or payload mismatch.
pub fn decode_checkpoint(model: &dyn ImageModel, mut bytes: Bytes) -> Result<CheckpointHeader> {
    let header = decode_header(&mut bytes)?;
    let expect = architecture_fingerprint(model);
    if header.fingerprint != expect {
        return Err(ServeError::Checkpoint(format!(
            "architecture mismatch: checkpoint was saved from `{}` \
             (fingerprint {:#018x}), target model is `{}` (fingerprint {:#018x})",
            header.arch,
            header.fingerprint,
            model.name(),
            expect
        )));
    }
    // The manifest is redundant with the fingerprint for well-formed files;
    // checking it anyway catches hand-edited or bit-rotted checkpoints with
    // a message naming the exact parameter.
    let params = model.params();
    if header.params.len() != params.len() {
        return Err(ServeError::Checkpoint(format!(
            "manifest lists {} params, model `{}` has {}",
            header.params.len(),
            model.name(),
            params.len()
        )));
    }
    for (spec, p) in header.params.iter().zip(&params) {
        if spec.name != p.name() || spec.shape != p.shape() {
            return Err(ServeError::Checkpoint(format!(
                "manifest mismatch: checkpoint has `{}` {:?}, model expects `{}` {:?}",
                spec.name,
                spec.shape,
                p.name(),
                p.shape()
            )));
        }
    }
    if bytes.remaining() < 8 {
        return Err(ServeError::Checkpoint("truncated payload length".into()));
    }
    let payload_len = bytes.get_u64_le() as usize;
    if bytes.remaining() != payload_len {
        return Err(ServeError::Checkpoint(format!(
            "payload length mismatch: header says {payload_len} bytes, file has {}",
            bytes.remaining()
        )));
    }
    load_params(model, bytes).map_err(|e| ServeError::Checkpoint(e.to_string()))?;
    Ok(header)
}

/// Writes `model`'s parameters to `path` in the versioned format.
///
/// # Errors
///
/// Returns [`ServeError::Io`] on filesystem failures.
pub fn save_to_path(model: &dyn ImageModel, path: &Path) -> Result<()> {
    std::fs::write(path, encode_checkpoint(model))
        .map_err(|e| ServeError::Io(format!("writing {}: {e}", path.display())))
}

/// Loads a checkpoint file from `path` into `model`.
///
/// # Errors
///
/// Returns [`ServeError::Io`] on filesystem failures and
/// [`ServeError::Checkpoint`] on any format or architecture mismatch.
pub fn load_from_path(model: &dyn ImageModel, path: &Path) -> Result<CheckpointHeader> {
    let raw = std::fs::read(path)
        .map_err(|e| ServeError::Io(format!("reading {}: {e}", path.display())))?;
    decode_checkpoint(model, Bytes::from(raw)).map_err(|e| match e {
        ServeError::Checkpoint(msg) => ServeError::Checkpoint(format!("{}: {msg}", path.display())),
        other => other,
    })
}

/// Reads only the header of a checkpoint file (for listing / inspection).
///
/// # Errors
///
/// Returns [`ServeError::Io`] or [`ServeError::Checkpoint`] as above.
pub fn read_header(path: &Path) -> Result<CheckpointHeader> {
    let raw = std::fs::read(path)
        .map_err(|e| ServeError::Io(format!("reading {}: {e}", path.display())))?;
    decode_header(&mut Bytes::from(raw))
}
