//! The adaptive white-box attack objective (paper Appendix A.2).
//!
//! An adversary with full knowledge of IB-RAR runs PGD on the *defense's own
//! loss* — Eq. 1 in its entirety — rather than plain cross-entropy:
//! `maximize L_CE + α Σ I(X, T_l) − β Σ I(Y, T_l)`.

use crate::loss::{IbLoss, IbLossConfig};
use ibrar_attacks::Objective;
use ibrar_autograd::Var;
use ibrar_nn::{ModelOutput, Session};

/// PGD objective that maximizes the full IB-RAR training loss.
///
/// Plug into [`ibrar_attacks::Pgd::with_objective`] to obtain the paper's
/// `PGD_AD` attack.
///
/// # Examples
///
/// ```no_run
/// use ibrar::{AdaptiveIbObjective, IbLossConfig};
/// use ibrar_attacks::Pgd;
/// use std::sync::Arc;
///
/// let adaptive = Pgd::paper_default()
///     .with_objective(Arc::new(AdaptiveIbObjective::new(IbLossConfig::substrate_vgg(), 10)));
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveIbObjective {
    config: IbLossConfig,
    num_classes: usize,
}

impl AdaptiveIbObjective {
    /// Creates the adaptive objective for a `num_classes`-way model using
    /// the defender's IB hyperparameters.
    pub fn new(config: IbLossConfig, num_classes: usize) -> Self {
        AdaptiveIbObjective {
            config,
            num_classes,
        }
    }
}

impl Objective for AdaptiveIbObjective {
    fn loss<'t>(
        &self,
        sess: &Session<'t>,
        x: Var<'t>,
        out: &ModelOutput<'t>,
        labels: &[usize],
    ) -> ibrar_attacks::Result<Var<'t>> {
        let ce = out.logits.cross_entropy(labels)?;
        let reg = IbLoss::regularizer(sess, x, &out.hidden, labels, self.num_classes, &self.config)
            .map_err(|e| ibrar_attacks::AttackError::Config(e.to_string()))?;
        Ok(ce.add(reg)?)
    }

    fn name(&self) -> &str {
        "adaptive-ib"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibrar_attacks::{Attack, Pgd};
    use ibrar_nn::{VggConfig, VggMini};
    use ibrar_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn adaptive_pgd_runs_and_respects_budget() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = VggMini::new(VggConfig::tiny(4), &mut rng).unwrap();
        let x = Tensor::from_fn(&[4, 3, 16, 16], |i| {
            (((i[0] + i[1]) * 3 + i[2] + i[3]) % 7) as f32 / 7.0
        });
        let labels = [0, 1, 2, 3];
        let eps = 8.0 / 255.0;
        let attack = Pgd::new(eps, 2.0 / 255.0, 3).with_objective(Arc::new(
            AdaptiveIbObjective::new(IbLossConfig::substrate_vgg(), 4),
        ));
        let adv = attack.perturb(&model, &x, &labels).unwrap();
        assert!(adv.sub(&x).unwrap().abs().max() <= eps + 1e-6);
        assert!(adv.min() >= 0.0 && adv.max() <= 1.0);
    }

    #[test]
    fn name_distinguishes_attack() {
        let obj = AdaptiveIbObjective::new(IbLossConfig::substrate_vgg(), 10);
        assert_eq!(obj.name(), "adaptive-ib");
        let attack = Pgd::paper_default().with_objective(Arc::new(obj));
        assert!(attack.name().contains("adaptive-ib"));
    }
}
