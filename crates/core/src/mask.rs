//! Unnecessary-feature masking (paper Eq. 3, §2.3).
//!
//! After IB training, the channels of the last convolutional block are
//! scored by their (binned) mutual information with the labels; the bottom
//! `fraction` (paper: 5%) are zeroed by a 0/1 mask installed into the model
//! and applied on every subsequent forward pass (`T_last = T_last ⊙ mask`).

use crate::{IbrarError, Result};
use ibrar_data::Dataset;
use ibrar_infotheory::{channel_label_mi, BinningConfig};
use ibrar_nn::{ImageModel, LayerKind, Mode, Session};
use ibrar_tensor::Tensor;

/// Masking parameters.
#[derive(Debug, Clone, Copy)]
pub struct MaskConfig {
    /// Fraction of channels to remove (paper: 0.05).
    pub fraction: f32,
    /// Histogram bins for the MI estimator.
    pub bins: usize,
    /// How many training samples to score the channels on.
    pub sample_budget: usize,
}

impl Default for MaskConfig {
    fn default() -> Self {
        MaskConfig {
            fraction: 0.05,
            bins: 30,
            sample_budget: 256,
        }
    }
}

impl MaskConfig {
    /// Overrides the masked fraction (builder style).
    pub fn with_fraction(mut self, fraction: f32) -> Self {
        self.fraction = fraction;
        self
    }
}

/// Builds a 0/1 mask from per-channel MI scores: the lowest
/// `fraction·C` channels (rounded down, at least 0, at most C−1) get 0.
///
/// # Errors
///
/// Returns an error for an out-of-range fraction or empty scores.
pub fn mask_from_scores(scores: &[f32], fraction: f32) -> Result<Tensor> {
    if scores.is_empty() {
        return Err(IbrarError::Config("no channel scores".into()));
    }
    if !(0.0..=1.0).contains(&fraction) {
        return Err(IbrarError::Config(format!(
            "mask fraction {fraction} outside [0, 1]"
        )));
    }
    let c = scores.len();
    let k = ((c as f32 * fraction) as usize).min(c.saturating_sub(1));
    let mut order: Vec<usize> = (0..c).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut mask = Tensor::ones(&[c]);
    for &idx in order.iter().take(k) {
        mask.data_mut()[idx] = 0.0;
    }
    Ok(mask)
}

/// Scores the last conv block's channels on (a subset of) `data` and
/// returns the Eq. 3 mask. Any previously installed mask is ignored during
/// scoring (the model is evaluated mask-free) and left untouched.
///
/// # Errors
///
/// Returns an error when the model exposes no conv tap or estimation fails.
pub fn compute_channel_mask(
    model: &dyn ImageModel,
    data: &Dataset,
    config: &MaskConfig,
) -> Result<Tensor> {
    let previous = model.channel_mask();
    model.set_channel_mask(None)?;
    let result = score_and_mask(model, data, config);
    model.set_channel_mask(previous)?;
    result
}

fn score_and_mask(model: &dyn ImageModel, data: &Dataset, config: &MaskConfig) -> Result<Tensor> {
    let subset = data.take(config.sample_budget.max(2))?;
    let batch = subset.as_batch();
    let tape = ibrar_autograd::Tape::new();
    let sess = Session::new(&tape);
    let x = tape.leaf(batch.images.clone());
    let out = model.forward(&sess, x, Mode::Eval)?;
    // The tap of the last conv block is the last Conv-kind hidden.
    let last_conv = out
        .hidden
        .iter()
        .rev()
        .find(|h| h.kind == LayerKind::Conv)
        .ok_or_else(|| IbrarError::Config("model exposes no conv tap".into()))?;
    let features = last_conv.var.value();
    let scores = channel_label_mi(
        &features,
        &batch.labels,
        model.num_classes(),
        BinningConfig::new(config.bins),
    )?;
    mask_from_scores(&scores, config.fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibrar_data::{SynthVision, SynthVisionConfig};
    use ibrar_nn::{VggConfig, VggMini};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mask_from_scores_zeroes_lowest() {
        let scores = [0.9, 0.1, 0.5, 0.05, 0.7, 0.3, 0.8, 0.6, 0.4, 0.2];
        let mask = mask_from_scores(&scores, 0.2).unwrap();
        // bottom 2 of 10: indices 3 (0.05) and 1 (0.1)
        assert_eq!(mask.data()[3], 0.0);
        assert_eq!(mask.data()[1], 0.0);
        assert_eq!(mask.sum(), 8.0);
    }

    #[test]
    fn zero_fraction_keeps_everything() {
        let mask = mask_from_scores(&[0.1, 0.2], 0.0).unwrap();
        assert_eq!(mask.sum(), 2.0);
    }

    #[test]
    fn full_fraction_keeps_at_least_one() {
        let mask = mask_from_scores(&[0.1, 0.2, 0.3], 1.0).unwrap();
        assert!(mask.sum() >= 1.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(mask_from_scores(&[], 0.1).is_err());
        assert!(mask_from_scores(&[0.1], -0.1).is_err());
        assert!(mask_from_scores(&[0.1], 1.5).is_err());
    }

    #[test]
    fn compute_mask_end_to_end() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
        let data = SynthVision::generate(&SynthVisionConfig::cifar10_like().with_sizes(64, 16), 1)
            .unwrap();
        let mask = compute_channel_mask(&model, &data.train, &MaskConfig::default()).unwrap();
        assert_eq!(mask.shape(), &[64]);
        // 5% of 64 = 3 channels removed.
        assert_eq!(mask.sum(), 61.0);
        // Model's own mask is untouched by scoring.
        assert!(model.channel_mask().is_none());
    }

    #[test]
    fn scoring_ignores_installed_mask_but_restores_it() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = VggMini::new(VggConfig::tiny(10), &mut rng).unwrap();
        let data = SynthVision::generate(&SynthVisionConfig::cifar10_like().with_sizes(64, 16), 1)
            .unwrap();
        let installed = Tensor::zeros(&[64]);
        model.set_channel_mask(Some(installed.clone())).unwrap();
        let mask = compute_channel_mask(&model, &data.train, &MaskConfig::default()).unwrap();
        // If the zero mask had been active during scoring, every channel
        // would have zero MI and the mask would be degenerate; instead we
        // get the normal 5% cut.
        assert_eq!(mask.sum(), 61.0);
        assert_eq!(model.channel_mask().unwrap(), installed);
    }
}
